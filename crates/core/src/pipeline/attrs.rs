//! Attribute stage (§3.3): resolves each rule's target and applies the
//! assigned attributes in order, accumulating subpage content, images,
//! and AJAX actions.

use super::dom::resolve_target;
use super::edit::{
    inject_into_head, insert_html, links_to_columns, merge_style, replace_with_html, set_attr_deep,
    standalone_object_page,
};
use super::render::partial_css_prerender;
use super::stage::{PipelineState, Stage, StageKind, StageOutcome};
use super::{AdaptError, GeneratedImage, PipelineStats};
use crate::ajax;
use crate::attributes::{Attribute, DockObject, Position, Rule, Target};
use crate::content;
use msite_html::{Document, NodeId};
use msite_render::image::{process, ImageFormat, PostProcess};
use msite_render::Rect;
use std::time::Duration;

/// Applies every rule of the spec to the parsed document.
pub(crate) struct AttributeStage;

impl Stage for AttributeStage {
    fn kind(&self) -> StageKind {
        StageKind::Attributes
    }

    fn run(&self, state: &mut PipelineState<'_>) -> Result<StageOutcome, AdaptError> {
        let affected_before = state.stats.nodes_affected;
        let PipelineState {
            spec,
            ctx,
            doc,
            fingerprints,
            content_metrics,
            subpages,
            images,
            registry,
            stats,
            wants_cookie_clear,
            searchable,
            renderer,
            obj_counter,
            ..
        } = state;
        let doc = doc.as_mut().expect("dom stage ran before attributes");

        for rule in &spec.rules {
            let nodes = resolve_target(doc, &rule.target)?;
            if let Target::Dock(dock) = &rule.target {
                apply_dock_rule(doc, *dock, rule, stats, wants_cookie_clear);
                continue;
            }
            if nodes.is_empty() {
                continue;
            }
            stats.rules_matched += 1;
            for attr in &rule.attributes {
                match attr {
                    Attribute::Subpage { id, title, .. } => {
                        let builder = subpages.get_mut(id).expect("declared in dom stage");
                        for &node in &nodes {
                            builder
                                .mix_fingerprint(fingerprints.as_ref().and_then(|fp| fp.of(node)));
                            builder.body_html.push_str(&doc.outer_html(node));
                            let link = format!(
                                "<a class=\"msite-subpage-link\" href=\"{}/s/{}.html\">{}</a>",
                                ctx.base, id, title
                            );
                            replace_with_html(doc, node, &link);
                            stats.nodes_affected += 1;
                        }
                    }
                    Attribute::CopyTo {
                        subpage,
                        position,
                        set_attr,
                    } => {
                        let builder = subpages.get_mut(subpage).expect("validated in dom stage");
                        for &node in &nodes {
                            builder
                                .mix_fingerprint(fingerprints.as_ref().and_then(|fp| fp.of(node)));
                            let copy = doc.clone_subtree(node);
                            if let Some((name, value)) = set_attr {
                                set_attr_deep(doc, copy, name, value);
                            }
                            let html = doc.outer_html(copy);
                            match position {
                                Position::Head => builder.head_html.push_str(&html),
                                Position::Top => builder.top_html.push_str(&html),
                                Position::Bottom => builder.bottom_html.push_str(&html),
                            }
                            stats.nodes_affected += 1;
                        }
                    }
                    Attribute::MoveTo { subpage, position } => {
                        let builder = subpages.get_mut(subpage).expect("validated in dom stage");
                        for &node in &nodes {
                            builder
                                .mix_fingerprint(fingerprints.as_ref().and_then(|fp| fp.of(node)));
                            let html = doc.outer_html(node);
                            match position {
                                Position::Head => builder.head_html.push_str(&html),
                                Position::Top => builder.top_html.push_str(&html),
                                Position::Bottom => builder.bottom_html.push_str(&html),
                            }
                            doc.detach(node);
                            stats.nodes_affected += 1;
                        }
                    }
                    Attribute::Remove => {
                        for &node in &nodes {
                            doc.detach(node);
                            stats.nodes_affected += 1;
                        }
                    }
                    Attribute::Hide => {
                        for &node in &nodes {
                            merge_style(doc, node, "display", "none");
                            stats.nodes_affected += 1;
                        }
                    }
                    Attribute::ReplaceWith { html } => {
                        for &node in &nodes {
                            replace_with_html(doc, node, html);
                            stats.nodes_affected += 1;
                        }
                    }
                    Attribute::InsertBefore { html } => {
                        for &node in &nodes {
                            insert_html(doc, node, html, true);
                            stats.nodes_affected += 1;
                        }
                    }
                    Attribute::InsertAfter { html } => {
                        for &node in &nodes {
                            insert_html(doc, node, html, false);
                            stats.nodes_affected += 1;
                        }
                    }
                    Attribute::SetAttr { name, value } => {
                        for &node in &nodes {
                            doc.set_attr(node, name, value);
                            stats.nodes_affected += 1;
                        }
                    }
                    Attribute::LinksToColumns { columns } => {
                        for &node in &nodes {
                            links_to_columns(doc, node, *columns);
                            stats.nodes_affected += 1;
                        }
                    }
                    Attribute::InjectClientScript { code } => {
                        for &node in &nodes {
                            insert_html(doc, node, &format!("<script>{code}</script>"), false);
                            stats.nodes_affected += 1;
                        }
                    }
                    Attribute::PrerenderImage {
                        scale,
                        quality,
                        cache_ttl_secs,
                    } => {
                        for &node in &nodes {
                            *obj_counter += 1;
                            let name = format!("obj{obj_counter}.png");
                            let object_html = standalone_object_page(doc, node);
                            let rendered = renderer.render(&object_html);
                            let processed = process(
                                &rendered.canvas,
                                &PostProcess {
                                    scale: Some(*scale),
                                    format: ImageFormat::JpegClass { quality: *quality },
                                    ..Default::default()
                                },
                            );
                            let img_tag = format!(
                                "<img class=\"msite-prerendered\" src=\"{}/img/{}\" width=\"{}\" height=\"{}\" alt=\"pre-rendered object\">",
                                ctx.base,
                                name,
                                processed.canvas.width(),
                                processed.canvas.height()
                            );
                            images.push(GeneratedImage {
                                name,
                                wire_size: processed.wire_bytes(),
                                width: processed.canvas.width(),
                                height: processed.canvas.height(),
                                bytes: processed.encoded,
                                cache_ttl: cache_ttl_secs.map(Duration::from_secs),
                            });
                            replace_with_html(doc, node, &img_tag);
                            stats.nodes_affected += 1;
                            stats.images_rendered += 1;
                        }
                    }
                    Attribute::PartialCssPrerender { scale } => {
                        for &node in &nodes {
                            *obj_counter += 1;
                            let name = format!("partial{obj_counter}.png");
                            let artifact = partial_css_prerender(
                                doc, node, renderer, *scale, &ctx.base, &name,
                            );
                            images.push(artifact.image);
                            replace_with_html(doc, node, &artifact.html);
                            stats.nodes_affected += 1;
                            stats.images_rendered += 1;
                        }
                    }
                    Attribute::Searchable => {
                        *searchable = true;
                    }
                    Attribute::RichMediaThumbnail { scale } => {
                        for &node in &nodes {
                            let media: Vec<NodeId> =
                                ["object", "embed", "video", "iframe", "applet"]
                                    .iter()
                                    .flat_map(|tag| doc.elements_by_tag(node, tag))
                                    .collect();
                            for media_node in media {
                                *obj_counter += 1;
                                let name = format!("media{obj_counter}.png");
                                let width: u32 = doc
                                    .attr(media_node, "width")
                                    .and_then(|w| w.parse().ok())
                                    .unwrap_or(320);
                                let height: u32 = doc
                                    .attr(media_node, "height")
                                    .and_then(|h| h.parse().ok())
                                    .unwrap_or(240);
                                let label = doc
                                    .attr(media_node, "src")
                                    .or_else(|| doc.attr(media_node, "data"))
                                    .unwrap_or("rich media")
                                    .to_string();
                                // Render a framed placeholder carrying the
                                // media label — what a constrained device
                                // shows instead of the plugin.
                                let page = format!(
                                    "<!DOCTYPE html><html><body style=\"margin:0\">\
                                     <div style=\"width:{width}px;height:{height}px;\
                                     background:#202028;color:#ffffff;border:2px solid #667\">\
                                     <p style=\"color:#ffffff\">&#9654; {label}</p></div></body></html>"
                                );
                                let rendered = renderer.render(&page);
                                let processed = process(
                                    &rendered.canvas,
                                    &PostProcess {
                                        // The canvas spans the viewport; cut
                                        // out the media box before scaling.
                                        crop: Some(Rect::new(
                                            0.0,
                                            0.0,
                                            width as f32,
                                            height as f32,
                                        )),
                                        scale: Some(*scale),
                                        format: ImageFormat::JpegClass { quality: 50 },
                                    },
                                );
                                let img_tag = format!(
                                    "<img class=\"msite-media-thumb\" src=\"{}/img/{}\" \
                                     width=\"{}\" height=\"{}\" alt=\"{}\">",
                                    ctx.base,
                                    name,
                                    processed.canvas.width(),
                                    processed.canvas.height(),
                                    msite_html::entities::encode_attr(&label)
                                );
                                images.push(GeneratedImage {
                                    name,
                                    wire_size: processed.wire_bytes(),
                                    width: processed.canvas.width(),
                                    height: processed.canvas.height(),
                                    bytes: processed.encoded,
                                    cache_ttl: Some(Duration::from_secs(3_600)),
                                });
                                replace_with_html(doc, media_node, &img_tag);
                                stats.nodes_affected += 1;
                                stats.images_rendered += 1;
                            }
                        }
                    }
                    Attribute::ImageFidelity { quality } => {
                        for &node in &nodes {
                            for img in doc.elements_by_tag(node, "img") {
                                if let Some(src) = doc.attr(img, "src").map(str::to_string) {
                                    let sep = if src.contains('?') { '&' } else { '?' };
                                    doc.set_attr(
                                        img,
                                        "src",
                                        &format!("{src}{sep}msite_q={quality}"),
                                    );
                                    stats.nodes_affected += 1;
                                }
                            }
                        }
                    }
                    Attribute::AjaxRewrite => {
                        for &node in &nodes {
                            let rewrite_stats = ajax::rewrite_handlers(
                                doc,
                                node,
                                registry,
                                &format!("{}/proxy", ctx.base),
                            );
                            stats.nodes_affected += rewrite_stats.handlers_rewritten;
                        }
                    }
                    Attribute::LinksToAjax { target } => {
                        for &node in &nodes {
                            let rewrite_stats = ajax::linkify_to_ajax(
                                doc,
                                node,
                                registry,
                                &format!("{}/proxy", ctx.base),
                                target,
                            );
                            stats.nodes_affected += rewrite_stats.handlers_rewritten;
                        }
                    }
                    Attribute::Dependency { selector } => {
                        // Copy matching objects into every subpage this rule
                        // declares.
                        let dep_nodes = resolve_target(doc, &Target::Css(selector.clone()))?;
                        let subpage_ids: Vec<String> = rule
                            .attributes
                            .iter()
                            .filter_map(|a| match a {
                                Attribute::Subpage { id, .. } => Some(id.clone()),
                                _ => None,
                            })
                            .collect();
                        for id in subpage_ids {
                            let builder = subpages.get_mut(&id).expect("declared in dom stage");
                            for &dep in &dep_nodes {
                                builder.mix_fingerprint(
                                    fingerprints.as_ref().and_then(|fp| fp.of(dep)),
                                );
                                builder.head_html.push_str(&doc.outer_html(dep));
                            }
                        }
                    }
                    Attribute::HttpAuth => {
                        let subpage_ids: Vec<String> = rule
                            .attributes
                            .iter()
                            .filter_map(|a| match a {
                                Attribute::Subpage { id, .. } => Some(id.clone()),
                                _ => None,
                            })
                            .collect();
                        for id in subpage_ids {
                            subpages
                                .get_mut(&id)
                                .expect("declared in dom stage")
                                .http_auth = true;
                        }
                    }
                    Attribute::ExtractMainContent => {
                        let metrics = content_metrics
                            .as_ref()
                            .expect("dom stage measures content-aware specs");
                        for &node in &nodes {
                            if !doc.is_attached(node) {
                                continue;
                            }
                            if let Some(outcome) = content::extract_main_content(doc, node, metrics)
                            {
                                stats.nodes_affected += outcome.removed as usize;
                            }
                        }
                    }
                    Attribute::StripBoilerplate { aggressiveness } => {
                        let metrics = content_metrics
                            .as_ref()
                            .expect("dom stage measures content-aware specs");
                        for &node in &nodes {
                            if !doc.is_attached(node) {
                                continue;
                            }
                            for action in content::strip_plan(doc, node, metrics, *aggressiveness) {
                                doc.detach(action.node);
                                stats.nodes_affected += 1;
                                if let Some(registry) = &ctx.metrics {
                                    registry
                                        .counter(
                                            "msite_blocks_stripped_total",
                                            &[("kind", action.kind.name())],
                                        )
                                        .inc();
                                }
                            }
                        }
                    }
                    Attribute::FidelityTier { tier } => {
                        // A pinned tier wins; auto uses the class the
                        // proxy resolved for this request; standalone
                        // auto runs keep full (WiFi) fidelity.
                        let class = tier
                            .or(ctx.fidelity)
                            .unwrap_or(msite_net::BandwidthClass::Wifi);
                        let caps = content::tier_caps(class);
                        for &node in &nodes {
                            for img in doc.elements_by_tag(node, "img") {
                                *obj_counter += 1;
                                let name = format!("fid{obj_counter}_{class}.png");
                                let width: u32 = doc
                                    .attr(img, "width")
                                    .and_then(|w| w.parse().ok())
                                    .unwrap_or(320);
                                let height: u32 = doc
                                    .attr(img, "height")
                                    .and_then(|h| h.parse().ok())
                                    .unwrap_or(240);
                                let label = doc.attr(img, "alt").unwrap_or("image").to_string();
                                // Re-encode at the declared size through
                                // the tier caps: crop the render to the
                                // image box, then apply the cap's scale
                                // and quality.
                                let page = format!(
                                    "<!DOCTYPE html><html><body style=\"margin:0\">\
                                     <div style=\"width:{width}px;height:{height}px;\
                                     background:#48586a;color:#ffffff\">\
                                     <p style=\"color:#ffffff\">{label}</p></div></body></html>"
                                );
                                let rendered = renderer.render(&page);
                                let processed = process(
                                    &rendered.canvas,
                                    &PostProcess {
                                        crop: Some(Rect::new(
                                            0.0,
                                            0.0,
                                            width as f32,
                                            height as f32,
                                        )),
                                        ..caps.post_process(width)
                                    },
                                );
                                let img_tag = format!(
                                    "<img class=\"msite-tiered\" src=\"{}/img/{}\" \
                                     width=\"{}\" height=\"{}\" alt=\"{}\">",
                                    ctx.base,
                                    name,
                                    processed.canvas.width(),
                                    processed.canvas.height(),
                                    msite_html::entities::encode_attr(&label)
                                );
                                images.push(GeneratedImage {
                                    name,
                                    wire_size: processed.wire_bytes(),
                                    width: processed.canvas.width(),
                                    height: processed.canvas.height(),
                                    bytes: processed.encoded,
                                    cache_ttl: Some(Duration::from_secs(3_600)),
                                });
                                replace_with_html(doc, img, &img_tag);
                                stats.nodes_affected += 1;
                                stats.images_rendered += 1;
                            }
                        }
                    }
                }
            }
        }
        Ok(StageOutcome::serial(stats.nodes_affected - affected_before))
    }
}

fn apply_dock_rule(
    doc: &mut Document,
    dock: DockObject,
    rule: &Rule,
    stats: &mut PipelineStats,
    wants_cookie_clear: &mut bool,
) {
    stats.rules_matched += 1;
    for attr in &rule.attributes {
        match (dock, attr) {
            (DockObject::Title, Attribute::SetAttr { value, .. }) => {
                let titles = doc.elements_by_tag(doc.root(), "title");
                match titles.first() {
                    Some(&title) => doc.set_text_content(title, value),
                    None => {
                        if let Some(&head) = doc.elements_by_tag(doc.root(), "head").first() {
                            let t = doc.create_element("title");
                            doc.set_text_content(t, value);
                            doc.append_child(head, t);
                        }
                    }
                }
                stats.nodes_affected += 1;
            }
            (DockObject::Scripts, Attribute::Remove) => {
                for script in doc.elements_by_tag(doc.root(), "script") {
                    doc.detach(script);
                    stats.nodes_affected += 1;
                }
            }
            (DockObject::Stylesheets, Attribute::Remove) => {
                for style in doc.elements_by_tag(doc.root(), "style") {
                    doc.detach(style);
                    stats.nodes_affected += 1;
                }
                for link in doc.elements_by_tag(doc.root(), "link") {
                    let is_css = doc
                        .attr(link, "rel")
                        .map(|r| r.eq_ignore_ascii_case("stylesheet"))
                        .unwrap_or(false);
                    if is_css {
                        doc.detach(link);
                        stats.nodes_affected += 1;
                    }
                }
            }
            (DockObject::Cookies, Attribute::Remove) => {
                *wants_cookie_clear = true;
            }
            (DockObject::Head, Attribute::InjectClientScript { code }) => {
                inject_into_head(doc, &format!("<script>{code}</script>"));
                stats.nodes_affected += 1;
            }
            _ => {} // unsupported dock/attribute combination: no-op
        }
    }
}
