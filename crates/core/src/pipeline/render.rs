//! Render support: the lazily launched server-side browser and the
//! partial-CSS pre-render recipe. The [`Renderer`] accumulates the time
//! spent inside the browser so the driver can attribute it to the
//! dedicated render stage instead of whichever phase triggered it.

use super::edit::standalone_object_page;
use super::GeneratedImage;
use msite_html::{Document, NodeId};
use msite_render::browser::{Browser, BrowserConfig};
use msite_render::image::{process, ImageFormat, PostProcess};
use msite_render::RenderResult;
use msite_support::sync::Mutex;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Shared browser handle for snapshot and pre-render work. Launching is
/// deferred until the first render — the scalability win of the paper
/// comes from most requests never reaching this point.
///
/// All accounting is interior-mutable so the emit stage can fan
/// pre-renders out across threads against one `&Renderer`: the browser
/// launches exactly once (concurrent first renders rendezvous on the
/// launch), and [`Browser::render_page`] itself takes `&self`.
pub(crate) struct Renderer {
    config: Mutex<BrowserConfig>,
    browser: OnceLock<Browser>,
    /// Busy nanoseconds: per-render durations summed, so overlapping
    /// parallel renders each contribute their full time. The driver
    /// reports this as the render stage's line item.
    spent_nanos: AtomicU64,
    renders: AtomicUsize,
    degradations: Mutex<Vec<String>>,
}

impl Renderer {
    pub(crate) fn new(config: BrowserConfig) -> Renderer {
        Renderer {
            config: Mutex::new(config),
            browser: OnceLock::new(),
            spent_nanos: AtomicU64::new(0),
            renders: AtomicUsize::new(0),
            degradations: Mutex::new(Vec::new()),
        }
    }

    /// True once a browser has been launched.
    pub(crate) fn used(&self) -> bool {
        self.browser.get().is_some()
    }

    /// Individual browser render invocations so far (snapshot plus
    /// pre-render passes) — the unit the render cache's single-flight
    /// layer deduplicates across concurrent users.
    pub(crate) fn renders(&self) -> usize {
        self.renders.load(Ordering::Relaxed)
    }

    /// Total browser-busy time so far: launch plus the sum of
    /// individual render durations (under parallel pre-rendering this
    /// exceeds the wall-clock time the renders occupied).
    pub(crate) fn total(&self) -> Duration {
        Duration::from_nanos(self.spent_nanos.load(Ordering::Relaxed))
    }

    /// Renders that had to fall back to a placeholder page because the
    /// browser failed on the real input. Reported in the pipeline report
    /// so degraded snapshots are visible, not silent. Order follows
    /// failure-completion order, which under parallel pre-rendering is
    /// not deterministic.
    pub(crate) fn degradations(&self) -> Vec<String> {
        self.degradations.lock().clone()
    }

    /// Renders a page, launching the browser on first use. A browser
    /// failure (panic) on the page degrades to rendering an empty
    /// placeholder document — a blank snapshot beats a lost request —
    /// and is recorded in [`Self::degradations`].
    pub(crate) fn render(&self, html: &str) -> RenderResult {
        let start = Instant::now();
        self.renders.fetch_add(1, Ordering::Relaxed);
        let browser = self
            .browser
            .get_or_init(|| Browser::launch(self.config.lock().clone()));
        let result = match catch_unwind(AssertUnwindSafe(|| browser.render_page(html, &[]))) {
            Ok(result) => result,
            Err(panic) => {
                let message = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "browser panicked".to_string());
                self.degradations
                    .lock()
                    .push(format!("browser render degraded to blank page: {message}"));
                // The placeholder must render; if even that panics the
                // browser itself is broken and the failure propagates.
                match catch_unwind(AssertUnwindSafe(|| {
                    browser.render_page("<html><body></body></html>", &[])
                })) {
                    Ok(result) => result,
                    Err(panic) => resume_unwind(panic),
                }
            }
        };
        self.spent_nanos
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        result
    }

    /// Renders a page; when this launches the browser, the launch uses
    /// the given viewport width (the snapshot render leads, so the
    /// shared browser inherits the snapshot viewport).
    pub(crate) fn render_with_viewport(&self, html: &str, viewport_width: u32) -> RenderResult {
        if self.browser.get().is_none() {
            self.config.lock().viewport_width = viewport_width;
        }
        self.render(html)
    }
}

pub(crate) struct PartialArtifact {
    pub(crate) image: GeneratedImage,
    pub(crate) html: String,
}

/// Partial CSS pre-rendering (§3.3): render the object with its text
/// replaced by stretched placeholders, ship the raster as a background,
/// and emit absolutely positioned client-side text at the recorded
/// coordinates.
pub(crate) fn partial_css_prerender(
    doc: &Document,
    node: NodeId,
    renderer: &Renderer,
    scale: f32,
    base: &str,
    image_name: &str,
) -> PartialArtifact {
    // Build a blanked copy: text nodes replaced by 1px-high placeholders
    // that preserve width (here: non-breaking figure space runs).
    let mut scratch = Document::new();
    let root = scratch.root();
    let copy = scratch.import_subtree(doc, node);
    scratch.append_child(root, copy);
    let text_nodes: Vec<NodeId> = scratch
        .descendants(root)
        .filter(|&n| scratch.data(n).as_text().is_some())
        .collect();
    let mut original_texts = Vec::new();
    for t in text_nodes {
        if let Some(text) = scratch.data(t).as_text() {
            if !text.trim().is_empty() {
                original_texts.push(text.to_string());
                let blank: String = text
                    .chars()
                    .map(|c| if c.is_whitespace() { c } else { '\u{2007}' })
                    .collect();
                if let msite_html::NodeData::Text(slot) = scratch.data_mut(t) {
                    *slot = blank;
                }
            }
        }
    }
    let blanked_html = standalone_object_page(&scratch, copy);
    let rendered = renderer.render(&blanked_html);
    let processed = process(
        &rendered.canvas,
        &PostProcess {
            scale: Some(scale),
            format: ImageFormat::Png,
            ..Default::default()
        },
    );

    // Text positions come from rendering the *original* object.
    let original_html = standalone_object_page(doc, node);
    let with_text = renderer.render(&original_html);
    let mut spans = String::new();
    for (word, rect) in with_text.layout.word_positions() {
        let r = rect.scaled(scale);
        spans.push_str(&format!(
            "<span style=\"position:absolute;left:{}px;top:{}px;font-size:{}px\">{}</span>",
            r.x.round(),
            r.y.round(),
            (r.h.round() as i64).max(6),
            msite_html::entities::encode_text(&word)
        ));
    }
    let html = format!(
        "<div class=\"msite-partial\" style=\"position:relative;width:{}px;height:{}px;\
         background-image:url('{}/img/{}')\">{}</div>",
        processed.canvas.width(),
        processed.canvas.height(),
        base,
        image_name,
        spans
    );
    PartialArtifact {
        image: GeneratedImage {
            name: image_name.to_string(),
            wire_size: processed.wire_bytes(),
            width: processed.canvas.width(),
            height: processed.canvas.height(),
            bytes: processed.encoded,
            cache_ttl: None,
        },
        html,
    }
}
