//! The adaptation pipeline: fetch → filters → tidy/DOM → attributes →
//! emission → rendering (§3.2, Figure 3).
//!
//! Given an [`AdaptationSpec`] and a fetched page, [`adapt`] produces an
//! [`AdaptedBundle`]: the entry page, the generated subpages, every
//! rendered image, and the AJAX action registry. The proxy writes these
//! into per-user session directories and shared caches.
//! [`adapt_with_report`] additionally returns a [`PipelineReport`] with
//! per-stage wall-clock timings and artifact counts.
//!
//! The phases honor the paper's cost structure: if a spec contains only
//! source filters (and no snapshot), the page is adapted *without any
//! DOM parse*; the heavyweight browser is instantiated only when a
//! snapshot or pre-render attribute demands graphical output. Browser
//! time is accounted to a dedicated render stage, not to the phase that
//! happened to trigger it.

mod attrs;
mod dom;
mod edit;
mod emit;
mod fetch;
mod filter;
mod render;
mod stage;
#[cfg(test)]
mod tests;

pub use stage::{PipelineReport, StageKind, StageReport};

use crate::ajax::AjaxRegistry;
use crate::attributes::AdaptationSpec;
use crate::search::SearchIndex;
use attrs::AttributeStage;
use dom::DomStage;
use emit::EmitStage;
use fetch::FetchStage;
use filter::FilterStage;
use msite_render::browser::BrowserConfig;
use msite_support::telemetry::Trace;
use stage::{PipelineState, Stage};
use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

/// Pipeline failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdaptError {
    /// A rule's selector or XPath failed to parse.
    InvalidTarget {
        /// The offending target text.
        target: String,
        /// Parser message.
        message: String,
    },
    /// A `copy-to`/`move-to` referenced a subpage never declared.
    UnknownSubpage {
        /// The missing subpage id.
        id: String,
    },
}

impl fmt::Display for AdaptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdaptError::InvalidTarget { target, message } => {
                write!(f, "invalid target `{target}`: {message}")
            }
            AdaptError::UnknownSubpage { id } => write!(f, "unknown subpage `{id}`"),
        }
    }
}

impl Error for AdaptError {}

/// A generated HTML artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedFile {
    /// File name (e.g. `login.html`).
    pub name: String,
    /// Contents.
    pub html: String,
}

/// A generated image artifact.
#[derive(Debug, Clone)]
pub struct GeneratedImage {
    /// File name (e.g. `snapshot.png`).
    pub name: String,
    /// Encoded bytes (PNG).
    pub bytes: Vec<u8>,
    /// Bytes this artifact occupies on the wire (JPEG-class artifacts
    /// model their size; see `msite-render::image`).
    pub wire_size: usize,
    /// Pixel width.
    pub width: u32,
    /// Pixel height.
    pub height: u32,
    /// Shared-cache TTL; `None` = per-user artifact.
    pub cache_ttl: Option<Duration>,
}

/// Counters from one pipeline run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Source filters applied.
    pub filters_applied: usize,
    /// Whether a DOM parse was needed at all.
    pub dom_parsed: bool,
    /// Rules whose target matched at least one node.
    pub rules_matched: usize,
    /// Total nodes affected by attributes.
    pub nodes_affected: usize,
    /// Images produced by pre-rendering.
    pub images_rendered: usize,
    /// Whether a browser instance was used.
    pub browser_used: bool,
    /// Individual browser render invocations (snapshot plus pre-render
    /// passes) — the work the shared render cache amortizes.
    pub browser_renders: usize,
    /// Browser renders that degraded to a placeholder after a failure.
    pub renders_degraded: usize,
}

/// Everything one adaptation run produces.
#[derive(Debug, Clone)]
pub struct AdaptedBundle {
    /// The entry page served to the mobile client.
    pub entry_html: String,
    /// Generated subpages.
    pub subpages: Vec<GeneratedFile>,
    /// Generated images (snapshot + pre-rendered objects).
    pub images: Vec<GeneratedImage>,
    /// AJAX actions the proxy must satisfy.
    pub ajax: AjaxRegistry,
    /// Search index when the `searchable` attribute was present.
    pub search: Option<SearchIndex>,
    /// Run statistics.
    pub stats: PipelineStats,
    /// True when a dock-cookies rule asked for a clear-cookies entry
    /// point (the logout-button replacement).
    pub wants_cookie_clear: bool,
}

/// Deterministic schedule-exploration hook for the fan-out stages: a
/// per-task pseudo-random start delay in `[0, max)` derived from
/// `seed` and the task index. Sweeping the seed drives different
/// thread interleavings through the parallel emit/render paths; the
/// determinism suite uses it to assert the output stays byte-identical
/// under 24 distinct schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleStagger {
    /// Seed the per-task delays derive from.
    pub seed: u64,
    /// Upper bound on the injected delay.
    pub max: Duration,
}

/// Pipeline context: where artifacts will be served from and how wide
/// the intra-request fan-out runs.
#[derive(Debug, Clone)]
pub struct PipelineContext {
    /// URL prefix the proxy serves this page under, e.g. `/m/forum`.
    pub base: String,
    /// Browser configuration for renders.
    pub browser_config: BrowserConfig,
    /// Worker-crew width for the fan-out stages (subpage assembly,
    /// image pre-renders, imagemap geometry). `1` runs everything
    /// serially; the output is byte-identical either way. Defaults to
    /// [`msite_support::thread::default_parallelism`].
    pub parallelism: usize,
    /// Schedule-exploration test hook; `None` (the default) injects no
    /// delays.
    pub schedule_stagger: Option<ScheduleStagger>,
    /// The request trace this run belongs to. When set, every executed
    /// stage (and the render pseudo-stage) records a timed
    /// `stage.<name>` span with artifact counts into the trace's log.
    pub trace: Option<Trace>,
}

impl Default for PipelineContext {
    fn default() -> Self {
        PipelineContext {
            base: "/m/page".to_string(),
            browser_config: BrowserConfig::default(),
            parallelism: msite_support::thread::default_parallelism(),
            schedule_stagger: None,
            trace: None,
        }
    }
}

/// Runs the full pipeline.
///
/// # Errors
///
/// Returns [`AdaptError`] for malformed targets or dangling subpage
/// references. Origin-level failures are the proxy's concern, not the
/// pipeline's.
pub fn adapt(
    spec: &AdaptationSpec,
    page_html: &str,
    ctx: &PipelineContext,
) -> Result<AdaptedBundle, AdaptError> {
    adapt_with_report(spec, page_html, ctx).map(|(bundle, _)| bundle)
}

/// Runs the full pipeline and reports per-stage timings and artifact
/// counts alongside the bundle.
///
/// # Errors
///
/// Same failure modes as [`adapt`].
pub fn adapt_with_report(
    spec: &AdaptationSpec,
    page_html: &str,
    ctx: &PipelineContext,
) -> Result<(AdaptedBundle, PipelineReport), AdaptError> {
    let mut state = PipelineState::new(spec, page_html, ctx);
    let mut report = PipelineReport::default();
    let stages: [&dyn Stage; 5] = [
        &FetchStage,
        &FilterStage,
        &DomStage,
        &AttributeStage,
        &EmitStage,
    ];
    for stage in stages {
        if state.filter_only() && matches!(stage.kind(), StageKind::Dom | StageKind::Attributes) {
            continue;
        }
        let render_before = state.renderer.total();
        let start = Instant::now();
        let outcome = stage.run(&mut state)?;
        let elapsed = start.elapsed();
        // Browser time triggered inside the stage is the render stage's
        // line item; clamp so every executed stage keeps a nonzero entry
        // even at coarse clock granularity.
        let render_delta = state.renderer.total().saturating_sub(render_before);
        let stage_report = StageReport {
            kind: stage.kind(),
            elapsed: elapsed
                .saturating_sub(render_delta)
                .max(Duration::from_nanos(1)),
            artifacts: outcome.artifacts,
            parallel_tasks: outcome.parallel_tasks,
            parallel_busy: outcome.parallel_busy,
        };
        record_stage_span(ctx, &stage_report, start);
        report.stages.push(stage_report);
    }
    if state.renderer.used() {
        let stage_report = StageReport {
            kind: StageKind::Render,
            elapsed: state.renderer.total().max(Duration::from_nanos(1)),
            artifacts: state.stats.images_rendered,
            parallel_tasks: 0,
            parallel_busy: Duration::ZERO,
        };
        record_stage_span(ctx, &stage_report, Instant::now());
        report.stages.push(stage_report);
    }
    report.parallelism = ctx.parallelism.max(1);
    report.degradations = state.renderer.degradations();
    Ok((state.into_bundle(), report))
}

/// Record one `stage.<name>` span on the context's trace (no-op when
/// the run is untraced). `started` anchors the span on the trace-log
/// timeline; the duration is the stage report's browser-adjusted
/// elapsed time.
fn record_stage_span(ctx: &PipelineContext, stage: &StageReport, started: Instant) {
    let Some(trace) = &ctx.trace else {
        return;
    };
    let mut fields = vec![("artifacts".to_string(), stage.artifacts.to_string())];
    if stage.parallel_tasks > 0 {
        fields.push((
            "parallel_tasks".to_string(),
            stage.parallel_tasks.to_string(),
        ));
    }
    trace.log().record_raw(
        trace.id(),
        &format!("stage.{}", stage.kind.name()),
        started,
        stage.elapsed,
        fields,
    );
}
