//! The adaptation pipeline: fetch → filters → tidy/DOM → attributes →
//! emission → rendering (§3.2, Figure 3).
//!
//! Given an [`AdaptationSpec`] and a fetched page, [`adapt`] produces an
//! [`AdaptedBundle`]: the entry page, the generated subpages, every
//! rendered image, and the AJAX action registry. The proxy writes these
//! into per-user session directories and shared caches.
//! [`adapt_with_report`] additionally returns a [`PipelineReport`] with
//! per-stage wall-clock timings and artifact counts.
//!
//! The phases honor the paper's cost structure: if a spec contains only
//! source filters (and no snapshot), the page is adapted *without any
//! DOM parse*; the heavyweight browser is instantiated only when a
//! snapshot or pre-render attribute demands graphical output. Browser
//! time is accounted to a dedicated render stage, not to the phase that
//! happened to trigger it.

mod attrs;
mod dom;
mod edit;
mod emit;
mod fetch;
mod filter;
mod render;
#[doc(hidden)]
pub mod soa;
mod stage;
#[cfg(test)]
mod tests;

pub use stage::{PipelineReport, StageKind, StageReport};

use crate::ajax::AjaxRegistry;
use crate::attributes::AdaptationSpec;
use crate::search::SearchIndex;
use attrs::AttributeStage;
use dom::DomStage;
use emit::EmitStage;
use fetch::FetchStage;
use filter::FilterStage;
use msite_render::browser::BrowserConfig;
use msite_support::telemetry::Trace;
use stage::{PipelineState, Stage};
use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

/// Pipeline failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdaptError {
    /// A rule's selector or XPath failed to parse.
    InvalidTarget {
        /// The offending target text.
        target: String,
        /// Parser message.
        message: String,
    },
    /// A `copy-to`/`move-to` referenced a subpage never declared.
    UnknownSubpage {
        /// The missing subpage id.
        id: String,
    },
}

impl fmt::Display for AdaptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdaptError::InvalidTarget { target, message } => {
                write!(f, "invalid target `{target}`: {message}")
            }
            AdaptError::UnknownSubpage { id } => write!(f, "unknown subpage `{id}`"),
        }
    }
}

impl Error for AdaptError {}

/// A generated HTML artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedFile {
    /// File name (e.g. `login.html`).
    pub name: String,
    /// Contents.
    pub html: String,
}

/// A generated image artifact.
#[derive(Debug, Clone)]
pub struct GeneratedImage {
    /// File name (e.g. `snapshot.png`).
    pub name: String,
    /// Encoded bytes (PNG).
    pub bytes: Vec<u8>,
    /// Bytes this artifact occupies on the wire (JPEG-class artifacts
    /// model their size; see `msite-render::image`).
    pub wire_size: usize,
    /// Pixel width.
    pub width: u32,
    /// Pixel height.
    pub height: u32,
    /// Shared-cache TTL; `None` = per-user artifact.
    pub cache_ttl: Option<Duration>,
}

/// Counters from one pipeline run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Source filters applied.
    pub filters_applied: usize,
    /// Whether a DOM parse was needed at all.
    pub dom_parsed: bool,
    /// Rules whose target matched at least one node.
    pub rules_matched: usize,
    /// Total nodes affected by attributes.
    pub nodes_affected: usize,
    /// Images produced by pre-rendering.
    pub images_rendered: usize,
    /// Whether a browser instance was used.
    pub browser_used: bool,
    /// Individual browser render invocations (snapshot plus pre-render
    /// passes) — the work the shared render cache amortizes.
    pub browser_renders: usize,
    /// Browser renders that degraded to a placeholder after a failure.
    pub renders_degraded: usize,
}

/// Everything one adaptation run produces.
#[derive(Debug, Clone)]
pub struct AdaptedBundle {
    /// The entry page served to the mobile client.
    pub entry_html: String,
    /// Generated subpages.
    pub subpages: Vec<GeneratedFile>,
    /// Generated images (snapshot + pre-rendered objects).
    pub images: Vec<GeneratedImage>,
    /// AJAX actions the proxy must satisfy.
    pub ajax: AjaxRegistry,
    /// Search index when the `searchable` attribute was present.
    pub search: Option<SearchIndex>,
    /// Run statistics.
    pub stats: PipelineStats,
    /// True when a dock-cookies rule asked for a clear-cookies entry
    /// point (the logout-button replacement).
    pub wants_cookie_clear: bool,
}

/// Deterministic schedule-exploration hook for the fan-out stages: a
/// per-task pseudo-random start delay in `[0, max)` derived from
/// `seed` and the task index. Sweeping the seed drives different
/// thread interleavings through the parallel emit/render paths; the
/// determinism suite uses it to assert the output stays byte-identical
/// under 24 distinct schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleStagger {
    /// Seed the per-task delays derive from.
    pub seed: u64,
    /// Upper bound on the injected delay.
    pub max: Duration,
}

/// Pipeline context: where artifacts will be served from and how wide
/// the intra-request fan-out runs.
#[derive(Debug, Clone)]
pub struct PipelineContext {
    /// URL prefix the proxy serves this page under, e.g. `/m/forum`.
    pub base: String,
    /// Browser configuration for renders.
    pub browser_config: BrowserConfig,
    /// Worker-crew width for the fan-out stages (subpage assembly,
    /// image pre-renders, imagemap geometry). `1` runs everything
    /// serially; the output is byte-identical either way. Defaults to
    /// [`msite_support::thread::default_parallelism`].
    pub parallelism: usize,
    /// Schedule-exploration test hook; `None` (the default) injects no
    /// delays.
    pub schedule_stagger: Option<ScheduleStagger>,
    /// The request trace this run belongs to. When set, every executed
    /// stage (and the render pseudo-stage) records a timed
    /// `stage.<name>` span with artifact counts into the trace's log.
    pub trace: Option<Trace>,
    /// The fingerprint-keyed subtree tier backing incremental
    /// re-adaptation. When set, the emit stage looks every subpage's
    /// content fingerprint up here before assembling (and, for
    /// pre-rendered subpages, re-rendering) it, and stores what it
    /// builds for the next run. `None` (the default) recomputes
    /// everything — the behavior standalone pipeline runs keep.
    pub subtree_cache: Option<std::sync::Arc<crate::cache::SubtreeCache>>,
    /// Registry the emit stage bumps its incremental counters into
    /// (`msite_subtrees_reused_total` / `msite_subtrees_recomputed_total`).
    /// `None` skips the bumps.
    pub metrics: Option<std::sync::Arc<msite_support::telemetry::MetricsRegistry>>,
    /// Resolved bandwidth class for `fidelity-tier auto` attributes
    /// (the proxy resolves it per request from the client's header or
    /// User-Agent). `None` falls back to the attribute's pinned tier,
    /// or WiFi caps when the attribute is auto too.
    pub fidelity: Option<msite_net::BandwidthClass>,
}

impl Default for PipelineContext {
    fn default() -> Self {
        PipelineContext {
            base: "/m/page".to_string(),
            browser_config: BrowserConfig::default(),
            parallelism: msite_support::thread::default_parallelism(),
            schedule_stagger: None,
            trace: None,
            subtree_cache: None,
            metrics: None,
            fidelity: None,
        }
    }
}

/// Runs the full pipeline.
///
/// # Errors
///
/// Returns [`AdaptError`] for malformed targets or dangling subpage
/// references. Origin-level failures are the proxy's concern, not the
/// pipeline's.
pub fn adapt(
    spec: &AdaptationSpec,
    page_html: &str,
    ctx: &PipelineContext,
) -> Result<AdaptedBundle, AdaptError> {
    adapt_with_report(spec, page_html, ctx).map(|(bundle, _)| bundle)
}

/// Runs the full pipeline and reports per-stage timings and artifact
/// counts alongside the bundle.
///
/// # Errors
///
/// Same failure modes as [`adapt`].
pub fn adapt_with_report(
    spec: &AdaptationSpec,
    page_html: &str,
    ctx: &PipelineContext,
) -> Result<(AdaptedBundle, PipelineReport), AdaptError> {
    drive(spec, page_html, ctx, |state| EmitStage.run(state))
}

/// One unit of finished work from a streaming adaptation run
/// ([`adapt_streaming`]), delivered the moment it is complete.
#[derive(Debug, Clone)]
pub enum EmitUnit {
    /// The entry page HTML — always the *first* unit, emitted before
    /// any subpage is assembled, so a progressive transport can flush
    /// it while subpage workers are still running.
    Entry(String),
    /// One finished subpage file, in worker-completion order.
    Subpage(GeneratedFile),
    /// One finished image (the snapshot right after the entry; subpage
    /// pre-renders in completion order).
    Image(GeneratedImage),
}

/// Runs the full pipeline in streaming mode: identical stages and
/// artifacts to [`adapt_with_report`], but the emit phase is reordered
/// entry-first and every finished artifact is handed to `on_unit` as a
/// unit of work the moment it completes (entry page first, then
/// subpages/images as the parallel emit workers finish them).
///
/// The returned bundle's `entry_html` and per-name artifacts are
/// byte-identical to a batch run; only the `images` vec order differs
/// (snapshot first instead of last).
///
/// # Errors
///
/// Same failure modes as [`adapt`].
pub fn adapt_streaming(
    spec: &AdaptationSpec,
    page_html: &str,
    ctx: &PipelineContext,
    on_unit: &mut (dyn FnMut(EmitUnit) + Send),
) -> Result<(AdaptedBundle, PipelineReport), AdaptError> {
    drive(spec, page_html, ctx, |state| {
        emit::run_streaming(state, on_unit)
    })
}

/// The stage driver shared by the batch and streaming entry points:
/// runs fetch → filter → dom → attributes, then the supplied emit
/// body (timed as the emit stage), then accounts the render
/// pseudo-stage.
fn drive(
    spec: &AdaptationSpec,
    page_html: &str,
    ctx: &PipelineContext,
    emit_body: impl FnOnce(&mut PipelineState<'_>) -> Result<stage::StageOutcome, AdaptError>,
) -> Result<(AdaptedBundle, PipelineReport), AdaptError> {
    let mut state = PipelineState::new(spec, page_html, ctx);
    let mut report = PipelineReport::default();
    let stages: [&dyn Stage; 4] = [&FetchStage, &FilterStage, &DomStage, &AttributeStage];
    for stage in stages {
        if state.filter_only() && matches!(stage.kind(), StageKind::Dom | StageKind::Attributes) {
            continue;
        }
        run_timed(&mut state, &mut report, ctx, stage.kind(), |s| stage.run(s))?;
    }
    run_timed(&mut state, &mut report, ctx, StageKind::Emit, emit_body)?;
    if state.renderer.used() {
        let stage_report = StageReport {
            kind: StageKind::Render,
            elapsed: state.renderer.total().max(Duration::from_nanos(1)),
            artifacts: state.stats.images_rendered,
            parallel_tasks: 0,
            parallel_busy: Duration::ZERO,
        };
        record_stage_span(ctx, &stage_report, Instant::now());
        report.stages.push(stage_report);
    }
    report.parallelism = ctx.parallelism.max(1);
    report.degradations = state.renderer.degradations();
    let bundle = state.into_bundle();
    if let Some(metrics) = &ctx.metrics {
        metrics
            .counter("msite_browser_renders_total", &[])
            .add(bundle.stats.browser_renders as u64);
    }
    Ok((bundle, report))
}

/// Times one stage body and records its report entry and trace span.
fn run_timed(
    state: &mut PipelineState<'_>,
    report: &mut PipelineReport,
    ctx: &PipelineContext,
    kind: StageKind,
    body: impl FnOnce(&mut PipelineState<'_>) -> Result<stage::StageOutcome, AdaptError>,
) -> Result<(), AdaptError> {
    let render_before = state.renderer.total();
    let start = Instant::now();
    let outcome = body(state)?;
    let elapsed = start.elapsed();
    // Browser time triggered inside the stage is the render stage's
    // line item; clamp so every executed stage keeps a nonzero entry
    // even at coarse clock granularity.
    let render_delta = state.renderer.total().saturating_sub(render_before);
    let stage_report = StageReport {
        kind,
        elapsed: elapsed
            .saturating_sub(render_delta)
            .max(Duration::from_nanos(1)),
        artifacts: outcome.artifacts,
        parallel_tasks: outcome.parallel_tasks,
        parallel_busy: outcome.parallel_busy,
    };
    record_stage_span(ctx, &stage_report, start);
    report.stages.push(stage_report);
    Ok(())
}

/// Record one `stage.<name>` span on the context's trace (no-op when
/// the run is untraced). `started` anchors the span on the trace-log
/// timeline; the duration is the stage report's browser-adjusted
/// elapsed time.
fn record_stage_span(ctx: &PipelineContext, stage: &StageReport, started: Instant) {
    let Some(trace) = &ctx.trace else {
        return;
    };
    let mut fields = vec![("artifacts".to_string(), stage.artifacts.to_string())];
    if stage.parallel_tasks > 0 {
        fields.push((
            "parallel_tasks".to_string(),
            stage.parallel_tasks.to_string(),
        ));
    }
    trace.log().record_raw(
        trace.id(),
        &format!("stage.{}", stage.kind.name()),
        started,
        stage.elapsed,
        fields,
    );
}
