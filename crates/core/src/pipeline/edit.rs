//! DOM edit helpers shared by the attribute and emission stages:
//! fragment splicing, style merging, and the structural rewrites the
//! attribute menu builds on.

use msite_html::{parse_fragment_into, Document, NodeId};

pub(crate) fn replace_with_html(doc: &mut Document, node: NodeId, html: &str) {
    if let Some(parent) = doc.node(node).parent() {
        let added = parse_fragment_into(doc, parent, html);
        let mut reference = node;
        for new in added {
            doc.detach(new);
            doc.insert_after(new, reference);
            reference = new;
        }
    }
    doc.detach(node);
}

pub(crate) fn insert_html(doc: &mut Document, node: NodeId, html: &str, before: bool) {
    if let Some(parent) = doc.node(node).parent() {
        let added = parse_fragment_into(doc, parent, html);
        let mut reference = node;
        for new in added {
            doc.detach(new);
            if before {
                doc.insert_before(new, node);
            } else {
                doc.insert_after(new, reference);
                reference = new;
            }
        }
    }
}

pub(crate) fn inject_into_head(doc: &mut Document, html: &str) {
    let head = doc.elements_by_tag(doc.root(), "head").first().copied();
    if let Some(head) = head {
        parse_fragment_into(doc, head, html);
    }
}

pub(crate) fn set_attr_deep(doc: &mut Document, root: NodeId, name: &str, value: &str) {
    // Set on the root if it is an element carrying the attribute or any
    // element; also on the first descendant that already has it (the
    // logo-copy use case: swap the img's src inside the copied table).
    doc.set_attr(root, name, value);
    let carriers: Vec<NodeId> = doc
        .descendants(root)
        .filter(|&d| doc.attr(d, name).is_some())
        .collect();
    for c in carriers {
        doc.set_attr(c, name, value);
    }
}

pub(crate) fn merge_style(doc: &mut Document, node: NodeId, property: &str, value: &str) {
    let existing = doc.attr(node, "style").unwrap_or("").trim().to_string();
    let mut style = existing
        .split(';')
        .filter(|d| {
            d.split(':')
                .next()
                .map(|k| !k.trim().eq_ignore_ascii_case(property))
                .unwrap_or(false)
        })
        .collect::<Vec<_>>()
        .join(";");
    if !style.is_empty() && !style.ends_with(';') {
        style.push(';');
    }
    style.push_str(&format!("{property}:{value}"));
    doc.set_attr(node, "style", &style);
}

/// Rewrites a region's links as a vertical multi-column table — the
/// paper's fix for the horizontally scrolling nav row.
pub(crate) fn links_to_columns(doc: &mut Document, node: NodeId, columns: u32) {
    let columns = columns.max(1) as usize;
    let links = doc.elements_by_tag(node, "a");
    if links.is_empty() {
        return;
    }
    let mut cells: Vec<String> = Vec::with_capacity(links.len());
    for link in &links {
        cells.push(doc.outer_html(*link));
    }
    let rows = cells.len().div_ceil(columns);
    let mut html = String::from("<table class=\"msite-columns\">");
    for r in 0..rows {
        html.push_str("<tr>");
        for c in 0..columns {
            // Column-major fill: reading order goes down then across.
            match cells.get(c * rows + r) {
                Some(cell) => {
                    html.push_str("<td>");
                    html.push_str(cell);
                    html.push_str("</td>");
                }
                None => html.push_str("<td></td>"),
            }
        }
        html.push_str("</tr>");
    }
    html.push_str("</table>");
    // Replace the node's children with the rebuilt table.
    let children: Vec<NodeId> = doc.children(node).collect();
    for child in children {
        doc.detach(child);
    }
    parse_fragment_into(doc, node, &html);
}

/// Wraps one object (plus the document's stylesheets) as a standalone
/// page for object-level pre-rendering.
pub(crate) fn standalone_object_page(doc: &Document, node: NodeId) -> String {
    let mut styles = String::new();
    for style in doc.elements_by_tag(doc.root(), "style") {
        styles.push_str(&doc.outer_html(style));
    }
    format!(
        "<!DOCTYPE html><html><head>{}</head><body style=\"margin:0\">{}</body></html>",
        styles,
        doc.outer_html(node)
    )
}

pub(crate) fn page_title(doc: &Document) -> Option<String> {
    doc.elements_by_tag(doc.root(), "title")
        .first()
        .map(|&t| doc.text_content(t))
        .filter(|t| !t.trim().is_empty())
}

/// Extracts the first `id="..."` attribute value from an HTML fragment.
pub(crate) fn first_id_in_html(html: &str) -> Option<String> {
    let at = html.find("id=\"")?;
    let rest = &html[at + 4..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}
