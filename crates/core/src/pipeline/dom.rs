//! DOM stage: tidy + parse, subpage declaration and validation, and the
//! snapshot capture of the filtered original page. Also home of target
//! resolution (§3.2 "Object identification").

use super::stage::{PipelineState, Stage, StageKind, StageOutcome, SubpageBuilder};
use super::AdaptError;
use crate::attributes::{Attribute, Target};
use msite_html::{tidy, Document, NodeId};
use msite_selectors::{SelectorList, XPath};

/// Parses the filtered source into a tidied DOM and prepares the
/// structures later stages mutate.
pub(crate) struct DomStage;

impl Stage for DomStage {
    fn kind(&self) -> StageKind {
        StageKind::Dom
    }

    fn run(&self, state: &mut PipelineState<'_>) -> Result<StageOutcome, AdaptError> {
        state.stats.dom_parsed = true;
        let doc = tidy::tidy(&state.source);
        // Fingerprint and/or measure every subtree of the clean parse
        // *before* the attribute stage mutates the tree: fingerprints
        // are the stable content identities the emit stage's subtree
        // cache keys mix in; metrics feed the content-aware attributes.
        // Both ride one serialization walk; specs that need neither pay
        // nothing.
        let want_fingerprints = state.ctx.subtree_cache.is_some();
        let want_metrics = state.spec.wants_content_metrics();
        match (want_fingerprints, want_metrics) {
            (true, true) => {
                let (fingerprints, metrics) = msite_html::fingerprint_and_measure(&doc);
                state.fingerprints = Some(fingerprints);
                state.content_metrics = Some(metrics);
            }
            (true, false) => {
                state.fingerprints = Some(msite_html::fingerprint::fingerprint_map(&doc));
            }
            (false, true) => state.content_metrics = Some(msite_html::measure(&doc)),
            (false, false) => {}
        }
        state.doc = Some(doc);

        // Subpage declarations first, so copy-to/move-to can validate.
        for rule in &state.spec.rules {
            for attr in &rule.attributes {
                if let Attribute::Subpage {
                    id,
                    title,
                    ajax,
                    prerender,
                } = attr
                {
                    state
                        .subpages
                        .entry(id.clone())
                        .or_insert_with(|| SubpageBuilder::new(id, title, *ajax, *prerender));
                }
            }
        }
        for rule in &state.spec.rules {
            for attr in &rule.attributes {
                let referenced = match attr {
                    Attribute::CopyTo { subpage, .. } | Attribute::MoveTo { subpage, .. } => {
                        Some(subpage)
                    }
                    _ => None,
                };
                if let Some(id) = referenced {
                    if !state.subpages.contains_key(id) {
                        return Err(AdaptError::UnknownSubpage { id: id.clone() });
                    }
                }
            }
        }

        // Snapshot render happens against the *filtered original* page so
        // the user sees the familiar screen, with geometry captured per
        // target. It leads all renders, so the shared browser inherits
        // the snapshot viewport.
        if let Some(snap) = &state.spec.snapshot {
            let source = &state.source;
            state.snapshot_render = Some(
                state
                    .renderer
                    .render_with_viewport(source, snap.viewport_width),
            );
        }
        Ok(StageOutcome::serial(1))
    }
}

pub(crate) fn resolve_target(doc: &Document, target: &Target) -> Result<Vec<NodeId>, AdaptError> {
    match target {
        Target::Css(selector) => {
            let list = SelectorList::parse(selector).map_err(|e| AdaptError::InvalidTarget {
                target: selector.clone(),
                message: e.to_string(),
            })?;
            Ok(list.select(doc, doc.root()))
        }
        Target::XPath(expr) => {
            let path = XPath::parse(expr).map_err(|e| AdaptError::InvalidTarget {
                target: expr.clone(),
                message: e.to_string(),
            })?;
            Ok(path.evaluate(doc, doc.root()))
        }
        Target::Dock(_) => Ok(Vec::new()),
    }
}
