//! Emission stage: assemble subpage files, pre-render image subpages,
//! and build the entry page (snapshot image map or adapted document).
//!
//! Subpage work is embarrassingly parallel — each subpage's assembly,
//! optional image pre-render, and imagemap geometry depend only on its
//! own builder plus shared read-only state — so this stage fans it out
//! across the context's worker crew ([`PipelineContext::parallelism`]).
//! Results are merged back in subpage-key order (the `BTreeMap`
//! iteration order the serial loop used), so the emitted bundle is
//! byte-identical to a serial run regardless of thread scheduling.
//!
//! # Incremental re-adaptation
//!
//! When the context carries a [`SubtreeCache`](crate::cache::SubtreeCache),
//! each subpage's finished artifact is cached under a fingerprint of
//! everything that determines its bytes: the source subtrees that
//! contributed content (their `msite_html::fingerprint` hashes, mixed
//! in by the attribute stage), the assembled fragments, the flags, and
//! the serving base. On a re-run, subpages whose fingerprints match are
//! handed back without re-assembly or re-render — only changed subtrees
//! pay the pipeline cost again.
//!
//! # Streaming emission
//!
//! [`run_streaming`] reorders the stage entry-first: the snapshot is
//! processed, imagemap geometry fanned out, and the entry page emitted
//! *before* any subpage is assembled, so a progressive transport can
//! flush the entry to the client while subpage workers are still
//! running. Subpage and image units are emitted from inside the fan-out
//! as each worker finishes. The produced bundle carries the same
//! artifacts as a batch run (entry bytes identical; per-name files and
//! images identical), with only `images` vec order differing (snapshot
//! first instead of last).

use super::edit::{first_id_in_html, inject_into_head, page_title};
use super::render::Renderer;
use super::stage::{fan, PipelineState, Stage, StageKind, StageOutcome, SubpageBuilder};
use super::{AdaptError, EmitUnit, GeneratedFile, GeneratedImage, PipelineContext};
use crate::ajax;
use crate::search::SearchIndex;
use msite_html::fingerprint::{fnv1a_continue, FNV_OFFSET};
use msite_render::image::{process, ImageFormat, PostProcess};
use msite_render::Rect;
use msite_support::sync::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Produces the bundle's files from the accumulated state.
pub(crate) struct EmitStage;

/// One subpage's finished artifacts, produced by a fan-out task (and
/// cached by the subtree tier).
#[derive(Clone)]
struct SubpageArtifact {
    file: GeneratedFile,
    image: Option<GeneratedImage>,
}

impl Stage for EmitStage {
    fn kind(&self) -> StageKind {
        StageKind::Emit
    }

    fn run(&self, state: &mut PipelineState<'_>) -> Result<StageOutcome, AdaptError> {
        // Pure filter adaptation: the filtered source *is* the entry page.
        if state.filter_only() {
            state.entry_html = std::mem::take(&mut state.source);
            return Ok(StageOutcome::serial(1));
        }

        let fanned = state.ctx.parallelism.max(1) > 1;
        let mut parallel_tasks = 0usize;
        let mut parallel_busy = Duration::ZERO;

        // ---- Subpage files --------------------------------------------
        // One task per subpage: assemble the HTML and, for pre-rendered
        // subpages, render + post-process the image (or reuse a cached
        // artifact whose content fingerprint matches). Merged in key
        // order.
        let artifacts: Vec<(Arc<SubpageArtifact>, bool)> = {
            let ctx = state.ctx;
            let renderer = &state.renderer;
            let builders: Vec<&SubpageBuilder> = state.subpages.values().collect();
            fan(ctx, builders.len(), |index| {
                build_subpage_cached(builders[index], ctx, renderer)
            })
            .into_iter()
            .map(|(artifact, busy)| {
                parallel_busy += busy;
                artifact
            })
            .collect()
        };
        if fanned {
            parallel_tasks += artifacts.len();
        }
        merge_artifacts(state, artifacts);

        // ---- Entry page -----------------------------------------------
        let (entry, snapshot_image, entry_fan) = build_entry(state);
        if let Some(image) = snapshot_image {
            state.images.push(image);
            state.stats.images_rendered += 1;
        }
        if fanned {
            parallel_tasks += entry_fan.tasks;
        }
        parallel_busy += entry_fan.busy;
        state.entry_html = entry;
        Ok(StageOutcome {
            artifacts: state.subpage_files.len() + 1,
            parallel_tasks,
            parallel_busy,
        })
    }
}

/// Streaming variant of the emit stage: emits the entry page (and
/// snapshot image) through `on_unit` *before* subpage assembly starts,
/// then emits each subpage's units from inside the fan-out as its
/// worker finishes. Fills the same [`PipelineState`] fields as the
/// batch stage.
pub(crate) fn run_streaming(
    state: &mut PipelineState<'_>,
    on_unit: &mut (dyn FnMut(EmitUnit) + Send),
) -> Result<StageOutcome, AdaptError> {
    if state.filter_only() {
        state.entry_html = std::mem::take(&mut state.source);
        on_unit(EmitUnit::Entry(state.entry_html.clone()));
        return Ok(StageOutcome::serial(1));
    }

    let fanned = state.ctx.parallelism.max(1) > 1;
    let mut parallel_tasks = 0usize;
    let mut parallel_busy = Duration::ZERO;

    // ---- Entry page FIRST -----------------------------------------
    let (entry, snapshot_image, entry_fan) = build_entry(state);
    if fanned {
        parallel_tasks += entry_fan.tasks;
    }
    parallel_busy += entry_fan.busy;
    state.entry_html = entry;
    on_unit(EmitUnit::Entry(state.entry_html.clone()));
    if let Some(image) = &snapshot_image {
        on_unit(EmitUnit::Image(image.clone()));
    }

    // ---- Subpages, emitted as their workers finish ----------------
    let artifacts: Vec<(Arc<SubpageArtifact>, bool)> = {
        let ctx = state.ctx;
        let renderer = &state.renderer;
        let builders: Vec<&SubpageBuilder> = state.subpages.values().collect();
        let sink = Mutex::new(&mut *on_unit);
        fan(ctx, builders.len(), |index| {
            let result = build_subpage_cached(builders[index], ctx, renderer);
            {
                let mut emit = sink.lock();
                (*emit)(EmitUnit::Subpage(result.0.file.clone()));
                if let Some(image) = &result.0.image {
                    (*emit)(EmitUnit::Image(image.clone()));
                }
            }
            result
        })
        .into_iter()
        .map(|(artifact, busy)| {
            parallel_busy += busy;
            artifact
        })
        .collect()
    };
    if fanned {
        parallel_tasks += artifacts.len();
    }
    merge_artifacts(state, artifacts);
    // The snapshot joins the bundle *after* the subpage images so the
    // artifact vectors keep the batch stage's ordering exactly.
    if let Some(image) = snapshot_image {
        state.images.push(image);
        state.stats.images_rendered += 1;
    }
    Ok(StageOutcome {
        artifacts: state.subpage_files.len() + 1,
        parallel_tasks,
        parallel_busy,
    })
}

/// Result of the entry-page fan-out bookkeeping.
struct EntryFan {
    tasks: usize,
    busy: Duration,
}

/// Builds the entry page (snapshot image map or adapted document),
/// returning the HTML, the processed snapshot image when in snapshot
/// mode, and the fan-out bookkeeping for the imagemap geometry tasks.
fn build_entry(state: &mut PipelineState<'_>) -> (String, Option<GeneratedImage>, EntryFan) {
    let mut entry_fan = EntryFan {
        tasks: 0,
        busy: Duration::ZERO,
    };
    let doc = state.doc.as_mut().expect("dom stage ran before emit");
    if let (Some(snap), Some(render)) = (&state.spec.snapshot, &state.snapshot_render) {
        let processed = process(
            &render.canvas,
            &PostProcess {
                scale: Some(snap.scale),
                format: ImageFormat::JpegClass {
                    quality: snap.quality,
                },
                ..Default::default()
            },
        );
        if state.searchable {
            state.search_index = Some(SearchIndex::build(&render.layout, snap.scale));
        }
        // Imagemap geometry: one task per subpage, merged in key order.
        let areas: Vec<crate::snapshot::MapArea> = {
            let ctx = state.ctx;
            let builders: Vec<&SubpageBuilder> = state.subpages.values().collect();
            fan(ctx, builders.len(), |index| {
                subpage_area(builders[index], render, snap.scale, &ctx.base)
            })
            .into_iter()
            .map(|(area, busy)| {
                entry_fan.busy += busy;
                area
            })
            .collect()
        };
        entry_fan.tasks += areas.len();
        let entry = crate::snapshot::build_entry_page(&crate::snapshot::EntryPageInput {
            base: state.ctx.base.clone(),
            title: page_title(doc).unwrap_or_else(|| state.spec.page_id.clone()),
            snapshot_name: "snapshot.png".to_string(),
            snapshot_width: processed.canvas.width(),
            snapshot_height: processed.canvas.height(),
            scale: snap.scale,
            areas,
            has_ajax: !state.registry.actions.is_empty() || state.subpages.values().any(|s| s.ajax),
            search_js: state.search_index.as_ref().map(|s| s.to_javascript()),
        });
        let image = GeneratedImage {
            name: "snapshot.png".to_string(),
            wire_size: processed.wire_bytes(),
            width: processed.canvas.width(),
            height: processed.canvas.height(),
            bytes: processed.encoded,
            cache_ttl: Some(Duration::from_secs(snap.cache_ttl_secs)),
        };
        (entry, Some(image), entry_fan)
    } else {
        // Non-snapshot mode: the adapted document itself, with the AJAX
        // helper injected when needed.
        if !state.registry.actions.is_empty() {
            inject_into_head(
                doc,
                &format!("<script>{}</script>", ajax::client_helper_script()),
            );
        }
        (doc.to_html(), None, entry_fan)
    }
}

/// Merges finished subpage artifacts into the state (key order) and
/// settles the incremental counters/span for the run.
fn merge_artifacts(state: &mut PipelineState<'_>, artifacts: Vec<(Arc<SubpageArtifact>, bool)>) {
    let mut reused = 0u64;
    let mut recomputed = 0u64;
    let merge_started = Instant::now();
    for (artifact, was_reused) in artifacts {
        if was_reused {
            reused += 1;
        } else {
            recomputed += 1;
        }
        if let Some(image) = &artifact.image {
            state.images.push(image.clone());
            state.stats.images_rendered += 1;
        }
        state.subpage_files.push(artifact.file.clone());
    }
    if state.ctx.subtree_cache.is_none() {
        return;
    }
    if let Some(metrics) = &state.ctx.metrics {
        metrics
            .counter("msite_subtrees_reused_total", &[])
            .add(reused);
        metrics
            .counter("msite_subtrees_recomputed_total", &[])
            .add(recomputed);
    }
    if reused > 0 {
        if let Some(trace) = &state.ctx.trace {
            trace.log().record_raw(
                trace.id(),
                "incremental.reuse",
                merge_started,
                merge_started.elapsed(),
                vec![
                    ("reused".to_string(), reused.to_string()),
                    ("recomputed".to_string(), recomputed.to_string()),
                ],
            );
        }
    }
}

/// The subtree-cache key for one subpage: an FNV-1a mix of every input
/// that determines the artifact's bytes. A hit therefore guarantees a
/// byte-identical artifact; the source-subtree fingerprints mixed in by
/// the attribute stage make the key change whenever contributing
/// content changes, even across re-fetches of the origin page.
fn subpage_cache_key(builder: &SubpageBuilder, ctx: &PipelineContext) -> u64 {
    let mut hash = FNV_OFFSET;
    let mut part = |bytes: &[u8]| {
        hash = fnv1a_continue(hash, bytes);
        // NUL separator: unambiguous field boundaries.
        hash = fnv1a_continue(hash, &[0]);
    };
    part(&builder.fingerprint.to_le_bytes());
    part(builder.id.as_bytes());
    part(builder.title.as_bytes());
    part(&[u8::from(builder.ajax), u8::from(builder.prerender)]);
    part(builder.head_html.as_bytes());
    part(builder.top_html.as_bytes());
    part(builder.body_html.as_bytes());
    part(builder.bottom_html.as_bytes());
    for script in &builder.scripts {
        part(script.as_bytes());
    }
    part(ctx.base.as_bytes());
    hash
}

/// Builds one subpage through the subtree cache: a fingerprint hit
/// returns the cached artifact without re-assembly or re-render; a miss
/// builds and stores it. The boolean is `true` when the artifact was
/// reused. Without a cache on the context this is a plain build.
fn build_subpage_cached(
    builder: &SubpageBuilder,
    ctx: &PipelineContext,
    renderer: &Renderer,
) -> (Arc<SubpageArtifact>, bool) {
    let Some(cache) = &ctx.subtree_cache else {
        return (Arc::new(build_subpage(builder, ctx, renderer)), false);
    };
    let key = subpage_cache_key(builder, ctx);
    if let Some(hit) = cache.get(key) {
        if let Ok(artifact) = hit.downcast::<SubpageArtifact>() {
            return (artifact, true);
        }
    }
    let artifact = Arc::new(build_subpage(builder, ctx, renderer));
    cache.put(
        key,
        Arc::clone(&artifact) as Arc<dyn std::any::Any + Send + Sync>,
    );
    (artifact, false)
}

/// Builds one subpage's artifacts: the assembled HTML file and, for
/// pre-rendered subpages, the rendered + post-processed image the file
/// embeds. Pure function of the builder plus shared read-only state, so
/// it can run on any worker.
fn build_subpage(
    builder: &SubpageBuilder,
    ctx: &PipelineContext,
    renderer: &Renderer,
) -> SubpageArtifact {
    let html = assemble_subpage(builder, ctx);
    if !builder.prerender {
        return SubpageArtifact {
            file: GeneratedFile {
                name: format!("{}.html", builder.id),
                html,
            },
            image: None,
        };
    }
    let rendered = renderer.render(&html);
    let processed = process(
        &rendered.canvas,
        &PostProcess {
            format: ImageFormat::JpegClass { quality: 50 },
            ..Default::default()
        },
    );
    let img_name = format!("sub_{}.png", builder.id);
    let page = format!(
        "<!DOCTYPE html><html><head><title>{}</title></head><body style=\"margin:0\">\
         <img src=\"{}/img/{}\" width=\"{}\" height=\"{}\" alt=\"{}\"></body></html>",
        builder.title,
        ctx.base,
        img_name,
        processed.canvas.width(),
        processed.canvas.height(),
        builder.title
    );
    SubpageArtifact {
        file: GeneratedFile {
            name: format!("{}.html", builder.id),
            html: page,
        },
        image: Some(GeneratedImage {
            name: img_name,
            wire_size: processed.wire_bytes(),
            width: processed.canvas.width(),
            height: processed.canvas.height(),
            bytes: processed.encoded,
            cache_ttl: None,
        }),
    }
}

fn assemble_subpage(builder: &SubpageBuilder, ctx: &PipelineContext) -> String {
    let mut html = String::from("<!DOCTYPE html>\n<html><head>");
    html.push_str(&format!(
        "<title>{}</title><meta name=\"viewport\" content=\"width=device-width\">",
        msite_html::entities::encode_text(&builder.title)
    ));
    html.push_str(&builder.head_html);
    html.push_str("</head><body>");
    html.push_str(&builder.top_html);
    html.push_str(&builder.body_html);
    html.push_str(&builder.bottom_html);
    html.push_str(&format!(
        "<div class=\"msite-breadcrumb\"><a href=\"{}/\">&laquo; back to overview</a></div>",
        ctx.base
    ));
    for script in &builder.scripts {
        html.push_str(&format!("<script>{script}</script>"));
    }
    html.push_str("</body></html>");
    html
}

/// Computes the clickable image-map area for one subpage target by
/// finding the same selector in the snapshot render and translating its
/// coordinates by the snapshot scale.
fn subpage_area(
    builder: &SubpageBuilder,
    render: &msite_render::RenderResult,
    scale: f32,
    base: &str,
) -> crate::snapshot::MapArea {
    // Geometry is recovered per subpage body: the subpage body html was
    // captured before removal; match by the subpage link class is not
    // possible in the snapshot (it shows the original page), so the
    // *source* rects were resolved by the caller storing them during the
    // attribute phase. Simpler and robust: look the subpage's first id
    // attribute up in the render.
    let rect = first_id_in_html(&builder.body_html)
        .and_then(|id| render.doc.element_by_id(&id))
        .and_then(|node| render.layout.rect_of(node));
    let rect = match rect {
        Some(rect) => rect.scaled(scale),
        // No geometry: still expose the subpage via the fallback menu
        // (rect of zero size is skipped in the <map> but kept in the
        // menu list).
        None => Rect::new(0.0, 0.0, 0.0, 0.0),
    };
    crate::snapshot::MapArea {
        rect,
        href: format!("{base}/s/{}.html", builder.id),
        title: builder.title.clone(),
        ajax: builder.ajax,
    }
}
