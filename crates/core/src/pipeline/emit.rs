//! Emission stage: assemble subpage files, pre-render image subpages,
//! and build the entry page (snapshot image map or adapted document).
//!
//! Subpage work is embarrassingly parallel — each subpage's assembly,
//! optional image pre-render, and imagemap geometry depend only on its
//! own builder plus shared read-only state — so this stage fans it out
//! across the context's worker crew ([`PipelineContext::parallelism`]).
//! Results are merged back in subpage-key order (the `BTreeMap`
//! iteration order the serial loop used), so the emitted bundle is
//! byte-identical to a serial run regardless of thread scheduling.

use super::edit::{first_id_in_html, inject_into_head, page_title};
use super::render::Renderer;
use super::stage::{fan, PipelineState, Stage, StageKind, StageOutcome, SubpageBuilder};
use super::{AdaptError, GeneratedFile, GeneratedImage, PipelineContext};
use crate::ajax;
use crate::search::SearchIndex;
use msite_render::image::{process, ImageFormat, PostProcess};
use msite_render::Rect;
use std::time::Duration;

/// Produces the bundle's files from the accumulated state.
pub(crate) struct EmitStage;

/// One subpage's finished artifacts, produced by a fan-out task.
struct SubpageArtifact {
    file: GeneratedFile,
    image: Option<GeneratedImage>,
}

impl Stage for EmitStage {
    fn kind(&self) -> StageKind {
        StageKind::Emit
    }

    fn run(&self, state: &mut PipelineState<'_>) -> Result<StageOutcome, AdaptError> {
        // Pure filter adaptation: the filtered source *is* the entry page.
        if state.filter_only() {
            state.entry_html = std::mem::take(&mut state.source);
            return Ok(StageOutcome::serial(1));
        }

        let fanned = state.ctx.parallelism.max(1) > 1;
        let mut parallel_tasks = 0usize;
        let mut parallel_busy = Duration::ZERO;

        // ---- Subpage files --------------------------------------------
        // One task per subpage: assemble the HTML and, for pre-rendered
        // subpages, render + post-process the image. Merged in key order.
        let artifacts: Vec<SubpageArtifact> = {
            let ctx = state.ctx;
            let renderer = &state.renderer;
            let builders: Vec<&SubpageBuilder> = state.subpages.values().collect();
            fan(ctx, builders.len(), |index| {
                build_subpage(builders[index], ctx, renderer)
            })
            .into_iter()
            .map(|(artifact, busy)| {
                parallel_busy += busy;
                artifact
            })
            .collect()
        };
        if fanned {
            parallel_tasks += artifacts.len();
        }
        for artifact in artifacts {
            if let Some(image) = artifact.image {
                state.images.push(image);
                state.stats.images_rendered += 1;
            }
            state.subpage_files.push(artifact.file);
        }

        // ---- Entry page -----------------------------------------------
        let doc = state.doc.as_mut().expect("dom stage ran before emit");
        state.entry_html =
            if let (Some(snap), Some(render)) = (&state.spec.snapshot, &state.snapshot_render) {
                let processed = process(
                    &render.canvas,
                    &PostProcess {
                        scale: Some(snap.scale),
                        format: ImageFormat::JpegClass {
                            quality: snap.quality,
                        },
                        ..Default::default()
                    },
                );
                if state.searchable {
                    state.search_index = Some(SearchIndex::build(&render.layout, snap.scale));
                }
                // Imagemap geometry: one task per subpage, merged in key
                // order.
                let areas: Vec<crate::snapshot::MapArea> = {
                    let ctx = state.ctx;
                    let builders: Vec<&SubpageBuilder> = state.subpages.values().collect();
                    fan(ctx, builders.len(), |index| {
                        subpage_area(builders[index], render, snap.scale, &ctx.base)
                    })
                    .into_iter()
                    .map(|(area, busy)| {
                        parallel_busy += busy;
                        area
                    })
                    .collect()
                };
                if fanned {
                    parallel_tasks += areas.len();
                }
                let entry = crate::snapshot::build_entry_page(&crate::snapshot::EntryPageInput {
                    base: state.ctx.base.clone(),
                    title: page_title(doc).unwrap_or_else(|| state.spec.page_id.clone()),
                    snapshot_name: "snapshot.png".to_string(),
                    snapshot_width: processed.canvas.width(),
                    snapshot_height: processed.canvas.height(),
                    scale: snap.scale,
                    areas,
                    has_ajax: !state.registry.actions.is_empty()
                        || state.subpages.values().any(|s| s.ajax),
                    search_js: state.search_index.as_ref().map(|s| s.to_javascript()),
                });
                state.images.push(GeneratedImage {
                    name: "snapshot.png".to_string(),
                    wire_size: processed.wire_bytes(),
                    width: processed.canvas.width(),
                    height: processed.canvas.height(),
                    bytes: processed.encoded,
                    cache_ttl: Some(Duration::from_secs(snap.cache_ttl_secs)),
                });
                state.stats.images_rendered += 1;
                entry
            } else {
                // Non-snapshot mode: the adapted document itself, with the AJAX
                // helper injected when needed.
                if !state.registry.actions.is_empty() {
                    inject_into_head(
                        doc,
                        &format!("<script>{}</script>", ajax::client_helper_script()),
                    );
                }
                doc.to_html()
            };
        Ok(StageOutcome {
            artifacts: state.subpage_files.len() + 1,
            parallel_tasks,
            parallel_busy,
        })
    }
}

/// Builds one subpage's artifacts: the assembled HTML file and, for
/// pre-rendered subpages, the rendered + post-processed image the file
/// embeds. Pure function of the builder plus shared read-only state, so
/// it can run on any worker.
fn build_subpage(
    builder: &SubpageBuilder,
    ctx: &PipelineContext,
    renderer: &Renderer,
) -> SubpageArtifact {
    let html = assemble_subpage(builder, ctx);
    if !builder.prerender {
        return SubpageArtifact {
            file: GeneratedFile {
                name: format!("{}.html", builder.id),
                html,
            },
            image: None,
        };
    }
    let rendered = renderer.render(&html);
    let processed = process(
        &rendered.canvas,
        &PostProcess {
            format: ImageFormat::JpegClass { quality: 50 },
            ..Default::default()
        },
    );
    let img_name = format!("sub_{}.png", builder.id);
    let page = format!(
        "<!DOCTYPE html><html><head><title>{}</title></head><body style=\"margin:0\">\
         <img src=\"{}/img/{}\" width=\"{}\" height=\"{}\" alt=\"{}\"></body></html>",
        builder.title,
        ctx.base,
        img_name,
        processed.canvas.width(),
        processed.canvas.height(),
        builder.title
    );
    SubpageArtifact {
        file: GeneratedFile {
            name: format!("{}.html", builder.id),
            html: page,
        },
        image: Some(GeneratedImage {
            name: img_name,
            wire_size: processed.wire_bytes(),
            width: processed.canvas.width(),
            height: processed.canvas.height(),
            bytes: processed.encoded,
            cache_ttl: None,
        }),
    }
}

fn assemble_subpage(builder: &SubpageBuilder, ctx: &PipelineContext) -> String {
    let mut html = String::from("<!DOCTYPE html>\n<html><head>");
    html.push_str(&format!(
        "<title>{}</title><meta name=\"viewport\" content=\"width=device-width\">",
        msite_html::entities::encode_text(&builder.title)
    ));
    html.push_str(&builder.head_html);
    html.push_str("</head><body>");
    html.push_str(&builder.top_html);
    html.push_str(&builder.body_html);
    html.push_str(&builder.bottom_html);
    html.push_str(&format!(
        "<div class=\"msite-breadcrumb\"><a href=\"{}/\">&laquo; back to overview</a></div>",
        ctx.base
    ));
    for script in &builder.scripts {
        html.push_str(&format!("<script>{script}</script>"));
    }
    html.push_str("</body></html>");
    html
}

/// Computes the clickable image-map area for one subpage target by
/// finding the same selector in the snapshot render and translating its
/// coordinates by the snapshot scale.
fn subpage_area(
    builder: &SubpageBuilder,
    render: &msite_render::RenderResult,
    scale: f32,
    base: &str,
) -> crate::snapshot::MapArea {
    // Geometry is recovered per subpage body: the subpage body html was
    // captured before removal; match by the subpage link class is not
    // possible in the snapshot (it shows the original page), so the
    // *source* rects were resolved by the caller storing them during the
    // attribute phase. Simpler and robust: look the subpage's first id
    // attribute up in the render.
    let rect = first_id_in_html(&builder.body_html)
        .and_then(|id| render.doc.element_by_id(&id))
        .and_then(|node| render.layout.rect_of(node));
    let rect = match rect {
        Some(rect) => rect.scaled(scale),
        // No geometry: still expose the subpage via the fallback menu
        // (rect of zero size is skipped in the <map> but kept in the
        // menu list).
        None => Rect::new(0.0, 0.0, 0.0, 0.0),
    };
    crate::snapshot::MapArea {
        rect,
        href: format!("{base}/s/{}.html", builder.id),
        title: builder.title.clone(),
        ajax: builder.ajax,
    }
}
