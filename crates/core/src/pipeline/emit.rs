//! Emission stage: assemble subpage files, pre-render image subpages,
//! and build the entry page (snapshot image map or adapted document).

use super::edit::{first_id_in_html, inject_into_head, page_title};
use super::stage::{PipelineState, Stage, StageKind, StageOutcome, SubpageBuilder};
use super::{AdaptError, GeneratedFile, GeneratedImage, PipelineContext};
use crate::ajax;
use crate::search::SearchIndex;
use msite_render::image::{process, ImageFormat, PostProcess};
use msite_render::Rect;
use std::collections::BTreeMap;
use std::time::Duration;

/// Produces the bundle's files from the accumulated state.
pub(crate) struct EmitStage;

impl Stage for EmitStage {
    fn kind(&self) -> StageKind {
        StageKind::Emit
    }

    fn run(&self, state: &mut PipelineState<'_>) -> Result<StageOutcome, AdaptError> {
        // Pure filter adaptation: the filtered source *is* the entry page.
        if state.filter_only() {
            state.entry_html = std::mem::take(&mut state.source);
            return Ok(StageOutcome { artifacts: 1 });
        }

        // ---- Subpage files --------------------------------------------
        for builder in state.subpages.values() {
            let html = assemble_subpage(builder, state.ctx);
            if builder.prerender {
                let rendered = state.renderer.render(&html);
                let processed = process(
                    &rendered.canvas,
                    &PostProcess {
                        format: ImageFormat::JpegClass { quality: 50 },
                        ..Default::default()
                    },
                );
                let img_name = format!("sub_{}.png", builder.id);
                let page = format!(
                    "<!DOCTYPE html><html><head><title>{}</title></head><body style=\"margin:0\">\
                     <img src=\"{}/img/{}\" width=\"{}\" height=\"{}\" alt=\"{}\"></body></html>",
                    builder.title,
                    state.ctx.base,
                    img_name,
                    processed.canvas.width(),
                    processed.canvas.height(),
                    builder.title
                );
                state.images.push(GeneratedImage {
                    name: img_name,
                    wire_size: processed.wire_bytes(),
                    width: processed.canvas.width(),
                    height: processed.canvas.height(),
                    bytes: processed.encoded,
                    cache_ttl: None,
                });
                state.stats.images_rendered += 1;
                state.subpage_files.push(GeneratedFile {
                    name: format!("{}.html", builder.id),
                    html: page,
                });
            } else {
                state.subpage_files.push(GeneratedFile {
                    name: format!("{}.html", builder.id),
                    html,
                });
            }
        }

        // ---- Entry page -----------------------------------------------
        let doc = state.doc.as_mut().expect("dom stage ran before emit");
        state.entry_html =
            if let (Some(snap), Some(render)) = (&state.spec.snapshot, &state.snapshot_render) {
                let processed = process(
                    &render.canvas,
                    &PostProcess {
                        scale: Some(snap.scale),
                        format: ImageFormat::JpegClass {
                            quality: snap.quality,
                        },
                        ..Default::default()
                    },
                );
                if state.searchable {
                    state.search_index = Some(SearchIndex::build(&render.layout, snap.scale));
                }
                let entry = crate::snapshot::build_entry_page(&crate::snapshot::EntryPageInput {
                    base: state.ctx.base.clone(),
                    title: page_title(doc).unwrap_or_else(|| state.spec.page_id.clone()),
                    snapshot_name: "snapshot.png".to_string(),
                    snapshot_width: processed.canvas.width(),
                    snapshot_height: processed.canvas.height(),
                    scale: snap.scale,
                    areas: subpage_areas(&state.subpages, render, snap.scale, &state.ctx.base),
                    has_ajax: !state.registry.actions.is_empty()
                        || state.subpages.values().any(|s| s.ajax),
                    search_js: state.search_index.as_ref().map(|s| s.to_javascript()),
                });
                state.images.push(GeneratedImage {
                    name: "snapshot.png".to_string(),
                    wire_size: processed.wire_bytes(),
                    width: processed.canvas.width(),
                    height: processed.canvas.height(),
                    bytes: processed.encoded,
                    cache_ttl: Some(Duration::from_secs(snap.cache_ttl_secs)),
                });
                state.stats.images_rendered += 1;
                entry
            } else {
                // Non-snapshot mode: the adapted document itself, with the AJAX
                // helper injected when needed.
                if !state.registry.actions.is_empty() {
                    inject_into_head(
                        doc,
                        &format!("<script>{}</script>", ajax::client_helper_script()),
                    );
                }
                doc.to_html()
            };
        Ok(StageOutcome {
            artifacts: state.subpage_files.len() + 1,
        })
    }
}

fn assemble_subpage(builder: &SubpageBuilder, ctx: &PipelineContext) -> String {
    let mut html = String::from("<!DOCTYPE html>\n<html><head>");
    html.push_str(&format!(
        "<title>{}</title><meta name=\"viewport\" content=\"width=device-width\">",
        msite_html::entities::encode_text(&builder.title)
    ));
    html.push_str(&builder.head_html);
    html.push_str("</head><body>");
    html.push_str(&builder.top_html);
    html.push_str(&builder.body_html);
    html.push_str(&builder.bottom_html);
    html.push_str(&format!(
        "<div class=\"msite-breadcrumb\"><a href=\"{}/\">&laquo; back to overview</a></div>",
        ctx.base
    ));
    for script in &builder.scripts {
        html.push_str(&format!("<script>{script}</script>"));
    }
    html.push_str("</body></html>");
    html
}

/// Computes the clickable image-map areas for every subpage target by
/// finding the same selector in the snapshot render and translating its
/// coordinates by the snapshot scale.
fn subpage_areas(
    subpages: &BTreeMap<String, SubpageBuilder>,
    render: &msite_render::RenderResult,
    scale: f32,
    base: &str,
) -> Vec<crate::snapshot::MapArea> {
    let mut areas = Vec::new();
    // Geometry is recovered per subpage body: the subpage body html was
    // captured before removal; match by the subpage link class is not
    // possible in the snapshot (it shows the original page), so the
    // *source* rects were resolved by the caller storing them during the
    // attribute phase. Simpler and robust: look the subpage's first id
    // attribute up in the render.
    for builder in subpages.values() {
        let rect = first_id_in_html(&builder.body_html)
            .and_then(|id| render.doc.element_by_id(&id))
            .and_then(|node| render.layout.rect_of(node));
        if let Some(rect) = rect {
            let r = rect.scaled(scale);
            areas.push(crate::snapshot::MapArea {
                rect: r,
                href: format!("{base}/s/{}.html", builder.id),
                title: builder.title.clone(),
                ajax: builder.ajax,
            });
        } else {
            // No geometry: still expose the subpage via the fallback menu
            // (rect of zero size is skipped in the <map> but kept in the
            // menu list).
            areas.push(crate::snapshot::MapArea {
                rect: Rect::new(0.0, 0.0, 0.0, 0.0),
                href: format!("{base}/s/{}.html", builder.id),
                title: builder.title.clone(),
                ajax: builder.ajax,
            });
        }
    }
    areas
}
