//! Unit tests for the staged pipeline.

use super::*;
use crate::attributes::{
    AdaptationSpec, Attribute, DockObject, Position, Rule, SnapshotSpec, SourceFilter, Target,
};
use msite_render::browser::BrowserConfig;
use std::time::Duration;

fn ctx() -> PipelineContext {
    PipelineContext {
        base: "/m/test".to_string(),
        browser_config: BrowserConfig::default(),
        ..Default::default()
    }
}

fn spec_no_snapshot(page: &str) -> AdaptationSpec {
    let mut s = AdaptationSpec::new("test", page);
    s.snapshot = None;
    s
}

const PAGE: &str = r##"<!DOCTYPE html><html><head><title>Site</title>
<style>.x { color: red }</style></head><body>
<div id="header"><img id="logo" src="/images/logo.gif" width="100" height="40"></div>
<div id="nav"><a href="/a">Alpha</a> <a href="/b">Beta</a> <a href="/c">Gamma</a> <a href="/d">Delta</a></div>
<form id="login"><input type="text" name="u"></form>
<div id="content"><p>Hello world content</p>
<a href="#" onclick="$('#pane').load('site.php?do=showpic&amp;id=3')">pic</a></div>
<div id="pane"></div>
</body></html>"##;

#[test]
fn filter_only_spec_skips_dom_parse() {
    let spec = spec_no_snapshot("http://h/")
        .filter(SourceFilter::SetTitle {
            title: "Mobile".into(),
        })
        .filter(SourceFilter::Replace {
            find: "Hello".into(),
            replace: "Hi".into(),
        });
    let bundle = adapt(&spec, PAGE, &ctx()).unwrap();
    assert!(!bundle.stats.dom_parsed);
    assert!(!bundle.stats.browser_used);
    assert!(bundle.entry_html.contains("<title>Mobile</title>"));
    assert!(bundle.entry_html.contains("Hi world content"));
    assert_eq!(bundle.stats.filters_applied, 2);
}

#[test]
fn strip_tag_filter() {
    let spec = spec_no_snapshot("http://h/").filter(SourceFilter::StripTag {
        tag: "style".into(),
    });
    let bundle = adapt(&spec, PAGE, &ctx()).unwrap();
    assert!(!bundle.entry_html.contains("color: red"));
    // `<strong>` must not be eaten by `<s` prefix matching.
    let spec2 = spec_no_snapshot("http://h/").filter(SourceFilter::StripTag { tag: "s".into() });
    let bundle2 = adapt(&spec2, "<p><strong>keep</strong><s>gone</s></p>", &ctx()).unwrap();
    assert!(bundle2.entry_html.contains("keep"));
    assert!(!bundle2.entry_html.contains("gone"));
}

#[test]
fn doctype_filter_replaces_or_prepends() {
    let spec = spec_no_snapshot("http://h/").filter(SourceFilter::SetDoctype {
        doctype: "<!DOCTYPE html>".into(),
    });
    let bundle = adapt(&spec, PAGE, &ctx()).unwrap();
    assert!(bundle.entry_html.starts_with("<!DOCTYPE html>"));
    let bundle2 = adapt(&spec, "<p>no doctype</p>", &ctx()).unwrap();
    assert!(bundle2.entry_html.starts_with("<!DOCTYPE html>"));
}

#[test]
fn remove_and_hide() {
    let spec = spec_no_snapshot("http://h/")
        .rule(Target::Css("#header".into()), vec![Attribute::Remove])
        .rule(Target::Css("#nav".into()), vec![Attribute::Hide]);
    let bundle = adapt(&spec, PAGE, &ctx()).unwrap();
    assert!(!bundle.entry_html.contains("id=\"header\""));
    assert!(bundle.entry_html.contains("display:none"));
    assert_eq!(bundle.stats.rules_matched, 2);
}

#[test]
fn replace_and_inserts() {
    let spec = spec_no_snapshot("http://h/")
        .rule(
            Target::Css("#header".into()),
            vec![Attribute::ReplaceWith {
                html: "<p id=\"mobile-header\">M</p>".into(),
            }],
        )
        .rule(
            Target::Css("#content".into()),
            vec![
                Attribute::InsertBefore {
                    html: "<hr class=\"before\">".into(),
                },
                Attribute::InsertAfter {
                    html: "<div class=\"ad\">mobile ad</div>".into(),
                },
            ],
        );
    let bundle = adapt(&spec, PAGE, &ctx()).unwrap();
    assert!(bundle.entry_html.contains("mobile-header"));
    assert!(!bundle.entry_html.contains("logo.gif"));
    let before = bundle.entry_html.find("class=\"before\"").unwrap();
    let content = bundle.entry_html.find("id=\"content\"").unwrap();
    let ad = bundle.entry_html.find("class=\"ad\"").unwrap();
    assert!(before < content && content < ad);
}

#[test]
fn subpage_split_replaces_with_link() {
    let spec = spec_no_snapshot("http://h/").rule(
        Target::Css("#login".into()),
        vec![Attribute::Subpage {
            id: "login".into(),
            title: "Log in".into(),
            ajax: false,
            prerender: false,
        }],
    );
    let bundle = adapt(&spec, PAGE, &ctx()).unwrap();
    assert_eq!(bundle.subpages.len(), 1);
    let sub = &bundle.subpages[0];
    assert_eq!(sub.name, "login.html");
    assert!(sub.html.contains("<form id=\"login\""));
    assert!(sub.html.contains("back to overview"));
    // Entry page now links instead of embedding the form.
    assert!(!bundle.entry_html.contains("<form"));
    assert!(bundle.entry_html.contains("/m/test/s/login.html"));
}

#[test]
fn copy_to_with_attr_override_and_dependency() {
    let spec = spec_no_snapshot("http://h/")
        .rule(
            Target::Css("#login".into()),
            vec![
                Attribute::Subpage {
                    id: "login".into(),
                    title: "Log in".into(),
                    ajax: false,
                    prerender: false,
                },
                Attribute::Dependency {
                    selector: "head style".into(),
                },
            ],
        )
        .rule(
            Target::Css("#header".into()),
            vec![Attribute::CopyTo {
                subpage: "login".into(),
                position: Position::Top,
                set_attr: Some(("src".into(), "/images/mobile_logo.gif".into())),
            }],
        );
    let bundle = adapt(&spec, PAGE, &ctx()).unwrap();
    let sub = &bundle.subpages[0];
    // Dependency style present in head.
    assert!(sub.html.contains("color: red"));
    // Copied header with swapped src; original header still on entry.
    assert!(sub.html.contains("mobile_logo.gif"));
    assert!(bundle.entry_html.contains("/images/logo.gif"));
}

#[test]
fn move_to_detaches_from_entry() {
    let spec = spec_no_snapshot("http://h/")
        .rule(
            Target::Css("#content".into()),
            vec![Attribute::Subpage {
                id: "main".into(),
                title: "Content".into(),
                ajax: false,
                prerender: false,
            }],
        )
        .rule(
            Target::Css("#nav".into()),
            vec![Attribute::MoveTo {
                subpage: "main".into(),
                position: Position::Bottom,
            }],
        );
    let bundle = adapt(&spec, PAGE, &ctx()).unwrap();
    assert!(!bundle.entry_html.contains("Alpha"));
    assert!(bundle.subpages[0].html.contains("Alpha"));
}

#[test]
fn unknown_subpage_reference_errors() {
    let spec = spec_no_snapshot("http://h/").rule(
        Target::Css("#nav".into()),
        vec![Attribute::MoveTo {
            subpage: "ghost".into(),
            position: Position::Bottom,
        }],
    );
    let err = adapt(&spec, PAGE, &ctx()).unwrap_err();
    assert_eq!(err, AdaptError::UnknownSubpage { id: "ghost".into() });
}

#[test]
fn invalid_selector_errors() {
    let spec =
        spec_no_snapshot("http://h/").rule(Target::Css("..bad".into()), vec![Attribute::Remove]);
    assert!(matches!(
        adapt(&spec, PAGE, &ctx()),
        Err(AdaptError::InvalidTarget { .. })
    ));
}

#[test]
fn xpath_targets_work() {
    let spec = spec_no_snapshot("http://h/").rule(
        Target::XPath("//div[@id='header']".into()),
        vec![Attribute::Remove],
    );
    let bundle = adapt(&spec, PAGE, &ctx()).unwrap();
    assert!(!bundle.entry_html.contains("id=\"header\""));
}

#[test]
fn links_to_columns_rebuilds_nav() {
    let spec = spec_no_snapshot("http://h/").rule(
        Target::Css("#nav".into()),
        vec![Attribute::LinksToColumns { columns: 2 }],
    );
    let bundle = adapt(&spec, PAGE, &ctx()).unwrap();
    assert!(bundle.entry_html.contains("msite-columns"));
    // 4 links in 2 columns -> 2 rows.
    assert_eq!(bundle.entry_html.matches("<tr>").count(), 2);
    assert!(bundle.entry_html.contains("Alpha"));
    assert!(bundle.entry_html.contains("Delta"));
}

#[test]
fn ajax_rewrite_registers_action_and_injects_helper() {
    let spec = spec_no_snapshot("http://h/")
        .rule(Target::Css("#content".into()), vec![Attribute::AjaxRewrite]);
    let bundle = adapt(&spec, PAGE, &ctx()).unwrap();
    assert_eq!(bundle.ajax.actions.len(), 1);
    assert_eq!(
        bundle.ajax.actions[0].origin_url_template,
        "site.php?do=showpic&id={p}"
    );
    assert!(bundle
        .entry_html
        .contains("msiteLoad('/m/test/proxy', 1, '3', '#pane')"));
    assert!(bundle.entry_html.contains("function msiteLoad"));
}

#[test]
fn image_fidelity_rewrites_srcs() {
    let spec = spec_no_snapshot("http://h/").rule(
        Target::Css("#header".into()),
        vec![Attribute::ImageFidelity { quality: 35 }],
    );
    let bundle = adapt(&spec, PAGE, &ctx()).unwrap();
    assert!(bundle.entry_html.contains("/images/logo.gif?msite_q=35"));
}

#[test]
fn dock_rules() {
    let spec = spec_no_snapshot("http://h/")
        .rule(
            Target::Dock(DockObject::Title),
            vec![Attribute::SetAttr {
                name: "text".into(),
                value: "m.Site".into(),
            }],
        )
        .rule(
            Target::Dock(DockObject::Stylesheets),
            vec![Attribute::Remove],
        )
        .rule(Target::Dock(DockObject::Cookies), vec![Attribute::Remove]);
    let bundle = adapt(&spec, PAGE, &ctx()).unwrap();
    assert!(bundle.entry_html.contains("<title>m.Site</title>"));
    assert!(!bundle.entry_html.contains("color: red"));
    assert!(bundle.wants_cookie_clear);
}

#[test]
fn prerender_object_produces_image() {
    let spec = spec_no_snapshot("http://h/").rule(
        Target::Css("#nav".into()),
        vec![Attribute::PrerenderImage {
            scale: 1.0,
            quality: 50,
            cache_ttl_secs: Some(600),
        }],
    );
    let bundle = adapt(&spec, PAGE, &ctx()).unwrap();
    assert_eq!(bundle.images.len(), 1);
    let img = &bundle.images[0];
    assert!(img.bytes.starts_with(&[0x89, b'P', b'N', b'G']));
    assert_eq!(img.cache_ttl, Some(Duration::from_secs(600)));
    assert!(bundle
        .entry_html
        .contains(&format!("/m/test/img/{}", img.name)));
    assert!(bundle.stats.browser_used);
    assert!(!bundle.entry_html.contains(">Alpha<")); // nav replaced by image
}

#[test]
fn snapshot_mode_builds_entry_with_map() {
    let mut spec = AdaptationSpec::new("test", "http://h/");
    spec.snapshot = Some(SnapshotSpec {
        scale: 0.5,
        quality: 40,
        cache_ttl_secs: 3600,
        viewport_width: 640,
    });
    spec.rules.push(Rule {
        target: Target::Css("#login".into()),
        attributes: vec![Attribute::Subpage {
            id: "login".into(),
            title: "Log in".into(),
            ajax: false,
            prerender: false,
        }],
    });
    let bundle = adapt(&spec, PAGE, &ctx()).unwrap();
    assert!(bundle.entry_html.contains("usemap=\"#msitemap\""));
    assert!(bundle.entry_html.contains("snapshot.png"));
    assert!(bundle.entry_html.contains("/m/test/s/login.html"));
    let snap = bundle
        .images
        .iter()
        .find(|i| i.name == "snapshot.png")
        .unwrap();
    assert_eq!(snap.cache_ttl, Some(Duration::from_secs(3600)));
    assert_eq!(snap.width, 320); // 640 * 0.5
    assert!(bundle.stats.browser_used);
}

#[test]
fn searchable_snapshot_gets_index() {
    let mut spec = AdaptationSpec::new("test", "http://h/");
    spec.snapshot = Some(SnapshotSpec::default());
    spec.rules.push(Rule {
        target: Target::Css("body".into()),
        attributes: vec![Attribute::Searchable],
    });
    let bundle = adapt(&spec, PAGE, &ctx()).unwrap();
    let index = bundle.search.as_ref().unwrap();
    assert!(!index.is_empty());
    assert!(!index.find("hello").is_empty());
    assert!(bundle.entry_html.contains("msiteIndex"));
    assert!(bundle.entry_html.contains("function msiteSearch"));
}

#[test]
fn prerendered_subpage_is_image_page() {
    let spec = spec_no_snapshot("http://h/").rule(
        Target::Css("#content".into()),
        vec![Attribute::Subpage {
            id: "content".into(),
            title: "Content".into(),
            ajax: false,
            prerender: true,
        }],
    );
    let bundle = adapt(&spec, PAGE, &ctx()).unwrap();
    let sub = &bundle.subpages[0];
    assert!(sub.html.contains("sub_content.png"));
    assert!(!sub.html.contains("Hello world"));
    assert!(bundle.images.iter().any(|i| i.name == "sub_content.png"));
}

#[test]
fn partial_css_prerender_emits_background_plus_text() {
    let spec = spec_no_snapshot("http://h/").rule(
        Target::Css("#content".into()),
        vec![Attribute::PartialCssPrerender { scale: 1.0 }],
    );
    let bundle = adapt(&spec, PAGE, &ctx()).unwrap();
    assert_eq!(bundle.images.len(), 1);
    assert!(bundle.entry_html.contains("msite-partial"));
    assert!(bundle.entry_html.contains("position:absolute"));
    // Text is drawn by the client, so it is present as spans.
    assert!(bundle.entry_html.contains(">hello<") || bundle.entry_html.contains(">Hello<"));
}

#[test]
fn rich_media_replaced_with_thumbnails() {
    let page = r#"<body><div id="media">
        <object data="movie.swf" width="400" height="300"></object>
        <embed src="clip.mov" width="200" height="150">
        <p>caption</p></div></body>"#;
    let spec = spec_no_snapshot("http://h/").rule(
        Target::Css("#media".into()),
        vec![Attribute::RichMediaThumbnail { scale: 0.5 }],
    );
    let bundle = adapt(&spec, page, &ctx()).unwrap();
    assert_eq!(bundle.images.len(), 2);
    assert!(!bundle.entry_html.contains("<object"));
    assert!(!bundle.entry_html.contains("<embed"));
    assert_eq!(bundle.entry_html.matches("msite-media-thumb").count(), 2);
    // Thumbnails scaled to half the declared media size.
    let first = &bundle.images[0];
    assert_eq!(first.width, 200);
    assert!(bundle.entry_html.contains("movie.swf"));
    assert!(bundle.entry_html.contains("caption"));
    assert!(bundle.stats.browser_used);
}

#[test]
fn stats_track_work() {
    let spec = spec_no_snapshot("http://h/")
        .filter(SourceFilter::Replace {
            find: "x".into(),
            replace: "y".into(),
        })
        .rule(
            Target::Css("#nav a".into()),
            vec![Attribute::SetAttr {
                name: "rel".into(),
                value: "nofollow".into(),
            }],
        );
    let bundle = adapt(&spec, PAGE, &ctx()).unwrap();
    assert_eq!(bundle.stats.filters_applied, 1);
    assert_eq!(bundle.stats.rules_matched, 1);
    assert_eq!(bundle.stats.nodes_affected, 4);
}

// ---- Stage report ------------------------------------------------------

#[test]
fn report_covers_all_stages_for_dom_spec() {
    let spec = spec_no_snapshot("http://h/")
        .filter(SourceFilter::SetTitle {
            title: "Mobile".into(),
        })
        .rule(Target::Css("#header".into()), vec![Attribute::Remove]);
    let (_, report) = adapt_with_report(&spec, PAGE, &ctx()).unwrap();
    for kind in [
        StageKind::Fetch,
        StageKind::Filter,
        StageKind::Dom,
        StageKind::Attributes,
        StageKind::Emit,
    ] {
        let stage = report
            .stage(kind)
            .unwrap_or_else(|| panic!("{kind} missing"));
        assert!(stage.elapsed > Duration::ZERO, "{kind} has zero timing");
    }
    // No browser work: no render entry.
    assert!(!report.executed(StageKind::Render));
    assert_eq!(report.stage(StageKind::Filter).unwrap().artifacts, 1);
    assert_eq!(report.stage(StageKind::Attributes).unwrap().artifacts, 1);
    assert!(report.total() > Duration::ZERO);
}

#[test]
fn report_skips_dom_stages_on_filter_only_spec() {
    let spec = spec_no_snapshot("http://h/").filter(SourceFilter::Replace {
        find: "Hello".into(),
        replace: "Hi".into(),
    });
    let (bundle, report) = adapt_with_report(&spec, PAGE, &ctx()).unwrap();
    assert!(bundle.entry_html.contains("Hi world content"));
    assert!(report.executed(StageKind::Fetch));
    assert!(report.executed(StageKind::Filter));
    assert!(report.executed(StageKind::Emit));
    assert!(!report.executed(StageKind::Dom));
    assert!(!report.executed(StageKind::Attributes));
    assert!(!report.executed(StageKind::Render));
}

#[test]
fn report_attributes_render_time_to_render_stage() {
    let spec = spec_no_snapshot("http://h/").rule(
        Target::Css("#nav".into()),
        vec![Attribute::PrerenderImage {
            scale: 1.0,
            quality: 50,
            cache_ttl_secs: None,
        }],
    );
    let (bundle, report) = adapt_with_report(&spec, PAGE, &ctx()).unwrap();
    assert!(bundle.stats.browser_used);
    let render = report.stage(StageKind::Render).unwrap();
    assert!(render.elapsed > Duration::ZERO);
    assert_eq!(render.artifacts, 1);
    // Render comes last in stage order.
    assert_eq!(report.stages.last().unwrap().kind, StageKind::Render);
}

#[test]
fn stage_kind_names_are_stable() {
    assert_eq!(StageKind::Fetch.name(), "fetch");
    assert_eq!(StageKind::Render.to_string(), "render");
}
