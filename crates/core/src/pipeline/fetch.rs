//! Fetch stage: source intake.

use super::stage::{PipelineState, Stage, StageKind, StageOutcome};
use super::AdaptError;

/// Moves the fetched page into the pipeline's working buffer. The proxy
/// has already performed the origin request; intake normalizes the body
/// (a UTF-8 BOM would otherwise survive into the first text node).
pub(crate) struct FetchStage;

impl Stage for FetchStage {
    fn kind(&self) -> StageKind {
        StageKind::Fetch
    }

    fn run(&self, state: &mut PipelineState<'_>) -> Result<StageOutcome, AdaptError> {
        state.source = state
            .raw
            .strip_prefix('\u{feff}')
            .unwrap_or(state.raw)
            .to_string();
        Ok(StageOutcome::serial(1))
    }
}
