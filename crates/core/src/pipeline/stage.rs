//! The [`Stage`] abstraction: the pipeline as an ordered list of
//! instrumented phases, each reporting wall-clock time and artifact
//! counts into a [`PipelineReport`].

use super::render::Renderer;
use super::{
    AdaptError, AdaptedBundle, GeneratedFile, GeneratedImage, PipelineContext, PipelineStats,
};
use crate::ajax::AjaxRegistry;
use crate::attributes::AdaptationSpec;
use crate::search::SearchIndex;
use msite_html::Document;
use msite_render::RenderResult;
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// Identifies one pipeline phase (§3.2, Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageKind {
    /// Source intake: the fetched page enters the pipeline.
    Fetch,
    /// Source-level filters, applied without a DOM.
    Filter,
    /// Tidy + DOM parse, subpage declaration, snapshot capture.
    Dom,
    /// Attribute application over resolved targets.
    Attributes,
    /// Artifact assembly: subpages and the entry page.
    Emit,
    /// Server-side browser work (snapshot and pre-renders), accumulated
    /// across the whole run rather than tied to one phase.
    Render,
}

impl StageKind {
    /// Stable lower-case name, used in logs and serialized reports.
    pub fn name(&self) -> &'static str {
        match self {
            StageKind::Fetch => "fetch",
            StageKind::Filter => "filter",
            StageKind::Dom => "dom",
            StageKind::Attributes => "attributes",
            StageKind::Emit => "emit",
            StageKind::Render => "render",
        }
    }
}

impl fmt::Display for StageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Timing and artifact record for one executed stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageReport {
    /// Which phase this entry describes.
    pub kind: StageKind,
    /// Wall-clock time attributed to the phase. Browser time triggered
    /// by a phase is subtracted and shows up under [`StageKind::Render`]
    /// instead; always nonzero for an executed stage.
    pub elapsed: Duration,
    /// Artifacts the phase produced (documents, filters applied, nodes
    /// affected, files emitted, images rendered).
    pub artifacts: usize,
    /// Tasks the phase fanned out across the worker crew; `0` for a
    /// fully serial phase.
    pub parallel_tasks: usize,
    /// Sum of per-task wall-clock times across the fan-out —
    /// the work the phase would have run back-to-back on one thread.
    /// [`Duration::ZERO`] for a fully serial phase.
    pub parallel_busy: Duration,
}

impl StageReport {
    /// Observed parallel speedup for the phase: per-task busy time
    /// divided by the wall-clock time the fan-out actually took
    /// (`> 1.0` means the crew overlapped work). `None` for a serial
    /// phase or when the clock read zero.
    pub fn parallel_speedup(&self) -> Option<f64> {
        if self.parallel_tasks == 0 || self.elapsed.is_zero() {
            return None;
        }
        Some(self.parallel_busy.as_secs_f64() / self.elapsed.as_secs_f64())
    }
}

/// Per-stage wall-clock timings and artifact counts for one
/// [`adapt_with_report`](super::adapt_with_report) run. Stages that did
/// not execute (the DOM phases on a filter-only spec, the render stage
/// when no browser was needed) have no entry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineReport {
    /// Executed stages in pipeline order.
    pub stages: Vec<StageReport>,
    /// Human-readable notes about renders that degraded (e.g. a browser
    /// failure replaced by a blank placeholder). Empty on clean runs.
    pub degradations: Vec<String>,
    /// Concurrent proxy requests that were answered by this run's
    /// output through the render cache's single-flight layer. Filled in
    /// by the proxy when it leads a shared render; zero for standalone
    /// pipeline runs.
    pub coalesced_waiters: u64,
    /// Worker-crew width the run's fan-out stages used
    /// ([`PipelineContext::parallelism`](super::PipelineContext),
    /// clamped to at least 1). `1` means every stage ran serially.
    pub parallelism: usize,
}

impl PipelineReport {
    /// The report entry for a phase, when it executed.
    pub fn stage(&self, kind: StageKind) -> Option<&StageReport> {
        self.stages.iter().find(|s| s.kind == kind)
    }

    /// True when the phase executed in this run.
    pub fn executed(&self, kind: StageKind) -> bool {
        self.stage(kind).is_some()
    }

    /// Total wall-clock time across all stages.
    pub fn total(&self) -> Duration {
        self.stages.iter().map(|s| s.elapsed).sum()
    }

    /// Observed parallel speedup for a phase, when it executed a
    /// fan-out (see [`StageReport::parallel_speedup`]).
    pub fn parallel_speedup(&self, kind: StageKind) -> Option<f64> {
        self.stage(kind).and_then(StageReport::parallel_speedup)
    }
}

/// What a stage tells the driver it produced.
pub(crate) struct StageOutcome {
    pub(crate) artifacts: usize,
    /// Fan-out width actually used (tasks dispatched); 0 = serial.
    pub(crate) parallel_tasks: usize,
    /// Summed per-task durations of the fan-out.
    pub(crate) parallel_busy: Duration,
}

impl StageOutcome {
    /// Outcome of a stage that ran entirely on the driver thread.
    pub(crate) fn serial(artifacts: usize) -> StageOutcome {
        StageOutcome {
            artifacts,
            parallel_tasks: 0,
            parallel_busy: Duration::ZERO,
        }
    }
}

/// One instrumented pipeline phase. The driver times each `run` call
/// and records the outcome; stages communicate through
/// [`PipelineState`].
pub(crate) trait Stage {
    /// The phase this stage implements.
    fn kind(&self) -> StageKind;

    /// Executes the phase against the accumulated state.
    fn run(&self, state: &mut PipelineState<'_>) -> Result<StageOutcome, AdaptError>;
}

/// Runs `tasks` indexed tasks across the context's worker-crew width
/// with deterministic result ordering, returning each task's result
/// and its wall-clock duration. `parallelism <= 1` is a serial loop —
/// the reference the parallel path must match byte-for-byte. A panic
/// inside a task is re-raised here after all tasks finish, matching
/// the serial path's propagation.
pub(crate) fn fan<T, F>(ctx: &PipelineContext, tasks: usize, work: F) -> Vec<(T, Duration)>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let stagger = ctx.schedule_stagger.unwrap_or(super::ScheduleStagger {
        seed: 0,
        max: Duration::ZERO,
    });
    let results = msite_support::thread::scope_fan_out_staggered(
        ctx.parallelism,
        tasks,
        stagger.seed,
        stagger.max,
        |index| {
            let start = std::time::Instant::now();
            let value = work(index);
            (value, start.elapsed())
        },
    );
    results
        .into_iter()
        .map(|result| match result {
            Ok(timed) => timed,
            Err(panic) => panic!("{panic}"),
        })
        .collect()
}

/// A subpage being accumulated across the attribute phase.
pub(crate) struct SubpageBuilder {
    pub(crate) id: String,
    pub(crate) title: String,
    pub(crate) ajax: bool,
    pub(crate) prerender: bool,
    pub(crate) head_html: String,
    pub(crate) top_html: String,
    pub(crate) body_html: String,
    pub(crate) bottom_html: String,
    pub(crate) scripts: Vec<String>,
    pub(crate) http_auth: bool,
    /// Running FNV-1a mix of the *source* subtree fingerprints that
    /// contributed content to this subpage (see
    /// `msite_html::fingerprint`). Part of the emit stage's subtree
    /// cache key, so a change anywhere in a contributing source subtree
    /// invalidates the cached artifact even before the assembled
    /// fragments are compared.
    pub(crate) fingerprint: u64,
}

impl SubpageBuilder {
    pub(crate) fn new(id: &str, title: &str, ajax: bool, prerender: bool) -> SubpageBuilder {
        SubpageBuilder {
            id: id.to_string(),
            title: title.to_string(),
            ajax,
            prerender,
            head_html: String::new(),
            top_html: String::new(),
            body_html: String::new(),
            bottom_html: String::new(),
            scripts: Vec::new(),
            http_auth: false,
            fingerprint: msite_html::fingerprint::FNV_OFFSET,
        }
    }

    /// Mixes a contributing source subtree's fingerprint into this
    /// builder's running fingerprint.
    pub(crate) fn mix_fingerprint(&mut self, subtree: Option<u64>) {
        if let Some(fp) = subtree {
            self.fingerprint =
                msite_html::fingerprint::fnv1a_continue(self.fingerprint, &fp.to_le_bytes());
        }
    }
}

/// Accumulating state threaded through the stages in order.
pub(crate) struct PipelineState<'a> {
    pub(crate) spec: &'a AdaptationSpec,
    pub(crate) ctx: &'a PipelineContext,
    /// The fetched page as handed to the pipeline.
    pub(crate) raw: &'a str,
    /// The working source text (fetch output, then filter output).
    pub(crate) source: String,
    /// The parsed document; `None` until the DOM stage runs.
    pub(crate) doc: Option<Document>,
    /// FNV-1a of the filtered source text, recorded by the filter stage
    /// (the whole-page fast path for incremental re-adaptation: equal
    /// source fingerprints mean every downstream artifact is reusable).
    pub(crate) source_fingerprint: u64,
    /// Per-subtree fingerprints of the tidied parse, computed by the
    /// DOM stage before any attribute mutates the tree.
    pub(crate) fingerprints: Option<msite_html::fingerprint::FingerprintMap>,
    /// Per-subtree content metrics of the tidied parse (same walk as
    /// the fingerprints), computed only when the spec carries a
    /// content-aware attribute.
    pub(crate) content_metrics: Option<msite_html::MetricsMap>,
    pub(crate) subpages: BTreeMap<String, SubpageBuilder>,
    pub(crate) images: Vec<GeneratedImage>,
    pub(crate) registry: AjaxRegistry,
    pub(crate) stats: PipelineStats,
    pub(crate) wants_cookie_clear: bool,
    pub(crate) searchable: bool,
    pub(crate) renderer: Renderer,
    pub(crate) snapshot_render: Option<RenderResult>,
    pub(crate) subpage_files: Vec<GeneratedFile>,
    pub(crate) entry_html: String,
    pub(crate) search_index: Option<SearchIndex>,
    pub(crate) obj_counter: usize,
}

impl<'a> PipelineState<'a> {
    pub(crate) fn new(
        spec: &'a AdaptationSpec,
        page_html: &'a str,
        ctx: &'a PipelineContext,
    ) -> PipelineState<'a> {
        PipelineState {
            spec,
            ctx,
            raw: page_html,
            source: String::new(),
            doc: None,
            source_fingerprint: msite_html::fingerprint::FNV_OFFSET,
            fingerprints: None,
            content_metrics: None,
            subpages: BTreeMap::new(),
            images: Vec::new(),
            registry: AjaxRegistry::new(),
            stats: PipelineStats::default(),
            wants_cookie_clear: false,
            searchable: false,
            renderer: Renderer::new(ctx.browser_config.clone()),
            snapshot_render: None,
            subpage_files: Vec::new(),
            entry_html: String::new(),
            search_index: None,
            obj_counter: 0,
        }
    }

    /// The paper's cheap path: a spec with only source filters (no rules,
    /// no snapshot) is adapted without any DOM parse, so the DOM and
    /// attribute stages are skipped entirely.
    pub(crate) fn filter_only(&self) -> bool {
        self.spec.rules.is_empty() && self.spec.snapshot.is_none()
    }

    pub(crate) fn into_bundle(mut self) -> AdaptedBundle {
        self.stats.browser_used = self.renderer.used();
        self.stats.browser_renders = self.renderer.renders();
        self.stats.renders_degraded = self.renderer.degradations().len();
        AdaptedBundle {
            entry_html: self.entry_html,
            subpages: self.subpage_files,
            images: self.images,
            ajax: self.registry,
            search: self.search_index,
            stats: self.stats,
            wants_cookie_clear: self.wants_cookie_clear,
        }
    }
}
