//! Struct-of-arrays batch classifier for the filter stage's tag
//! stripping.
//!
//! `strip_tag` is the hottest source filter: the scalar form lowercases
//! the whole page, then re-runs a substring search from scratch after
//! every hit. The batch form makes exactly one word-at-a-time sweep
//! (pass 1) that records every viable `<` candidate into parallel arrays —
//! position, open-prefix flag, open-boundary flag, close flag — with
//! the classification computed as branchless word compares against the
//! packed tag name. Pass 2 then replays the scalar control flow over
//! those arrays, so the output is byte-identical to
//! [`strip_tag_scalar`] (a property gate pins this).
//!
//! Tags longer than eight bytes or containing non-alphanumeric ASCII
//! fall back to the scalar path: the packed-word compare only covers
//! one u64 lane.

use msite_support::swar::{self, ByteSet};

/// Bytes that may legally follow `<tag` for the match to count as an
/// open tag. End-of-input is *not* a boundary — a page ending in
/// `<script` leaves the prefix in place, mirroring the scalar filter.
const OPEN_BOUNDARY: ByteSet = ByteSet::new(b"> \t\n\r/");

/// Classification of every `<` in the source, one entry per candidate,
/// in struct-of-arrays form so pass 2 walks flat flag arrays instead of
/// re-deriving anything from the text.
struct Candidates {
    /// Byte offset of each `<`, strictly increasing.
    pos: Vec<usize>,
    /// The case-folded tag name immediately follows the `<`.
    open_prefix: Vec<bool>,
    /// [`Candidates::open_prefix`] plus a legal boundary byte: a real
    /// open tag, not a prefix of a longer name.
    open_ok: Vec<bool>,
    /// The candidate is a literal `</tag>` closer.
    close_ok: Vec<bool>,
}

/// Reads up to eight bytes starting at `at` into a little-endian word,
/// zero-padded past end-of-input (zero never matches an alphanumeric
/// tag byte, so padding cannot create a false prefix).
fn read_word(html: &[u8], at: usize) -> u64 {
    let mut w = [0u8; 8];
    let end = html.len().min(at.saturating_add(8));
    if at < end {
        w[..end - at].copy_from_slice(&html[at..end]);
    }
    u64::from_le_bytes(w)
}

/// Pass 1: sweep the source once (hopping `<` to `<` a word at a time)
/// and classify every candidate branchlessly — two masked word
/// compares and a boundary-set probe per `<`, combined with `&` so the
/// flags are pure data, not control flow.
fn classify(html: &[u8], tag: &[u8]) -> Candidates {
    let taglen = tag.len();
    let mut packed = [0u8; 8];
    packed[..taglen].copy_from_slice(tag);
    let tag_word = u64::from_le_bytes(packed);
    let mask = if taglen == 8 {
        u64::MAX
    } else {
        (1u64 << (8 * taglen)) - 1
    };

    let mut c = Candidates {
        pos: Vec::new(),
        open_prefix: Vec::new(),
        open_ok: Vec::new(),
        close_ok: Vec::new(),
    };
    let first = tag[0];
    let mut at = 0usize;
    while let Some(rel) = swar::find_byte(&html[at..], b'<') {
        let p = at + rel;
        // First-byte screen: a candidate can only be an open prefix if
        // the tag's first letter follows, and only a closer if `/`
        // does. Everything else skips the word loads entirely — on
        // real pages this rejects almost every `<` for one byte read.
        let next = html.get(p + 1).copied().unwrap_or(0);
        if swar::lower(next) != first && next != b'/' {
            at = p + 1;
            continue;
        }
        let open_prefix = (swar::lower_word(read_word(html, p + 1)) & mask) == tag_word;
        let boundary = html
            .get(p + 1 + taglen)
            .is_some_and(|&b| OPEN_BOUNDARY.contains(b));
        let close_ok = (html.get(p + 1) == Some(&b'/'))
            & ((swar::lower_word(read_word(html, p + 2)) & mask) == tag_word)
            & (html.get(p + 2 + taglen) == Some(&b'>'));
        // Only candidates the replay can act on are recorded; a `<`
        // that is neither an open prefix nor a closer is dead weight,
        // and dropping it here keeps the arrays tiny on real pages.
        if open_prefix | close_ok {
            c.pos.push(p);
            c.open_prefix.push(open_prefix);
            c.open_ok.push(open_prefix & boundary);
            c.close_ok.push(close_ok);
        }
        at = p + 1;
    }
    c
}

/// Removes every `<tag ...>...</tag>` span (and bare `<tag ...>` when
/// unclosed) at source level — the batch classifier fast path.
/// Byte-identical to [`strip_tag_scalar`].
pub fn strip_tag(html: &str, tag: &str) -> String {
    let tag_l = tag.to_ascii_lowercase();
    if tag_l.is_empty() || tag_l.len() > 8 || !tag_l.bytes().all(|b| b.is_ascii_alphanumeric()) {
        return strip_tag_scalar(html, tag);
    }
    let bytes = html.as_bytes();
    let c = classify(bytes, tag_l.as_bytes());
    let open_len = 1 + tag_l.len(); // "<tag"
    let close_len = 3 + tag_l.len(); // "</tag>"

    // Pass 2: replay the scalar control flow over the flag arrays. All
    // slice offsets land on char boundaries: candidate positions are
    // ASCII `<`, and a true prefix flag means the following bytes are
    // ASCII alphanumerics.
    let mut out = String::with_capacity(html.len());
    let mut pos = 0usize;
    let mut idx = 0usize;
    while idx < c.pos.len() {
        let start = c.pos[idx];
        if start < pos || !c.open_prefix[idx] {
            idx += 1;
            continue;
        }
        if !c.open_ok[idx] {
            // Prefix of a longer name (`<s` inside `<script>`): keep it
            // and resume the search right after the prefix.
            out.push_str(&html[pos..start + open_len]);
            pos = start + open_len;
            idx += 1;
            continue;
        }
        out.push_str(&html[pos..start]);
        // First `</tag>` at or after the open; candidates are in
        // increasing position order so the scan starts at `idx`.
        match (idx..c.pos.len()).find(|&j| c.close_ok[j]) {
            Some(j) => pos = c.pos[j] + close_len,
            None => {
                pos = match swar::find_byte(&bytes[start..], b'>') {
                    Some(rel) => start + rel + 1,
                    None => html.len(),
                };
            }
        }
        idx += 1;
    }
    out.push_str(&html[pos..]);
    out
}

/// The original scalar strip: lowercase the whole page, then repeated
/// substring searches. Kept as the identity-gate reference and the
/// fallback for tags the packed-word compare cannot represent.
pub fn strip_tag_scalar(html: &str, tag: &str) -> String {
    let lower = html.to_ascii_lowercase();
    let open_pat = format!("<{}", tag.to_ascii_lowercase());
    let close_pat = format!("</{}>", tag.to_ascii_lowercase());
    let mut out = String::with_capacity(html.len());
    let mut pos = 0;
    while let Some(rel) = lower[pos..].find(&open_pat) {
        let start = pos + rel;
        // Guard against matching a prefix (e.g. `<s` matching `<script>`).
        let after = lower.as_bytes().get(start + open_pat.len());
        let boundary = matches!(
            after,
            Some(b'>') | Some(b' ') | Some(b'\t') | Some(b'\n') | Some(b'\r') | Some(b'/')
        );
        if !boundary {
            out.push_str(&html[pos..start + open_pat.len()]);
            pos = start + open_pat.len();
            continue;
        }
        out.push_str(&html[pos..start]);
        match lower[start..].find(&close_pat) {
            Some(rel_close) => pos = start + rel_close + close_pat.len(),
            None => match lower[start..].find('>') {
                Some(rel_gt) => pos = start + rel_gt + 1,
                None => {
                    pos = html.len();
                }
            },
        }
    }
    out.push_str(&html[pos..]);
    out
}
