//! The unified proxy failure taxonomy.
//!
//! Every way a proxy request can fail is a [`ProxyError`] variant that
//! maps to exactly one HTTP status and one stable machine-readable
//! reason token (emitted in the [`ERROR_HEADER`] response header), so
//! failures are countable, greppable, and testable instead of ad-hoc
//! `Response::error` strings scattered through the request paths.

use crate::pipeline::AdaptError;
use msite_net::{Response, Status};
use std::fmt;

/// Response header carrying the machine-readable failure reason.
pub const ERROR_HEADER: &str = "x-msite-error";

/// Response header flagging a degraded (stale or fallback) answer.
pub const DEGRADED_HEADER: &str = "x-msite-degraded";

/// Everything that can go wrong while the proxy handles a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProxyError {
    /// The spec's origin URL (or a URL derived from it) failed to parse.
    BadOriginUrl {
        /// Parser message.
        detail: String,
    },
    /// The origin answered with a failure status after the retry budget
    /// was spent.
    OriginUnavailable {
        /// The origin's final status.
        status: Status,
    },
    /// The per-host circuit breaker is open; the origin was not
    /// contacted at all.
    BreakerOpen,
    /// The per-request deadline budget ran out.
    DeadlineExceeded,
    /// The adaptation pipeline rejected the page.
    Adaptation {
        /// Pipeline failure description.
        detail: String,
    },
    /// `/render/<name>` named an unregistered engine.
    UnknownEngine {
        /// The requested engine name.
        name: String,
    },
    /// Every engine in the fallback chain failed.
    RenderFailed {
        /// Accumulated engine failure descriptions.
        detail: String,
    },
    /// An AJAX request named an action id the registry does not know.
    UnknownAction {
        /// The requested action id.
        id: String,
    },
    /// A required request parameter was absent or unparsable.
    MissingParameter {
        /// Parameter name.
        name: &'static str,
    },
    /// The requested artifact does not exist.
    NotFound {
        /// What was looked up (image, subpage, path...).
        what: &'static str,
    },
    /// The method is not supported on this endpoint.
    UnsupportedMethod,
    /// The serving tier's bounded executor queue was full; the
    /// connection was shed before any proxy work started. Clients
    /// should honor `Retry-After` and back off.
    Overloaded,
}

impl ProxyError {
    /// Classifies an upstream failure response from the resilient fetch
    /// layer: breaker rejections and deadline exhaustion are their own
    /// failure classes; everything else is origin unavailability.
    pub fn from_origin_failure(response: &Response) -> ProxyError {
        if msite_net::resilience::is_breaker_rejection(response) {
            ProxyError::BreakerOpen
        } else if response
            .headers
            .get(msite_net::resilience::DEADLINE_HEADER)
            .is_some()
        {
            ProxyError::DeadlineExceeded
        } else {
            ProxyError::OriginUnavailable {
                status: response.status,
            }
        }
    }

    /// The HTTP status this failure maps to.
    pub fn status(&self) -> Status {
        match self {
            ProxyError::BadOriginUrl { .. }
            | ProxyError::OriginUnavailable { .. }
            | ProxyError::RenderFailed { .. } => Status::BAD_GATEWAY,
            ProxyError::BreakerOpen | ProxyError::Overloaded => Status::SERVICE_UNAVAILABLE,
            ProxyError::DeadlineExceeded => Status::GATEWAY_TIMEOUT,
            ProxyError::Adaptation { .. } => Status::INTERNAL_SERVER_ERROR,
            ProxyError::UnknownEngine { .. }
            | ProxyError::UnknownAction { .. }
            | ProxyError::NotFound { .. } => Status::NOT_FOUND,
            ProxyError::MissingParameter { .. } | ProxyError::UnsupportedMethod => {
                Status::BAD_REQUEST
            }
        }
    }

    /// Stable machine-readable reason token (the [`ERROR_HEADER`]
    /// value).
    pub fn reason(&self) -> &'static str {
        match self {
            ProxyError::BadOriginUrl { .. } => "bad-origin-url",
            ProxyError::OriginUnavailable { .. } => "origin-unavailable",
            ProxyError::BreakerOpen => "breaker-open",
            ProxyError::DeadlineExceeded => "deadline-exceeded",
            ProxyError::Adaptation { .. } => "adaptation-failed",
            ProxyError::UnknownEngine { .. } => "unknown-engine",
            ProxyError::RenderFailed { .. } => "render-failed",
            ProxyError::UnknownAction { .. } => "unknown-action",
            ProxyError::MissingParameter { .. } => "missing-parameter",
            ProxyError::NotFound { .. } => "not-found",
            ProxyError::UnsupportedMethod => "unsupported-method",
            ProxyError::Overloaded => "overloaded",
        }
    }

    /// True for failures caused by the origin (or its guard rails)
    /// being unavailable — the cases where serving a stale snapshot is
    /// the right degradation.
    pub fn is_unavailability(&self) -> bool {
        matches!(
            self,
            ProxyError::OriginUnavailable { .. }
                | ProxyError::BreakerOpen
                | ProxyError::DeadlineExceeded
        )
    }

    /// Renders the failure as an HTTP response carrying the reason
    /// token in [`ERROR_HEADER`].
    pub fn into_response(self) -> Response {
        let mut response = Response::error(self.status(), &self.to_string());
        response.headers.set(ERROR_HEADER, self.reason());
        if matches!(self, ProxyError::Overloaded) {
            response.headers.set("retry-after", "1");
        }
        response
    }
}

impl fmt::Display for ProxyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProxyError::BadOriginUrl { detail } => write!(f, "bad origin url: {detail}"),
            ProxyError::OriginUnavailable { status } => write!(f, "origin returned {status}"),
            ProxyError::BreakerOpen => write!(f, "origin circuit breaker is open"),
            ProxyError::DeadlineExceeded => write!(f, "request deadline exceeded"),
            ProxyError::Adaptation { detail } => write!(f, "adaptation failed: {detail}"),
            ProxyError::UnknownEngine { name } => write!(f, "no engine named `{name}`"),
            ProxyError::RenderFailed { detail } => {
                write!(f, "all rendering engines failed: {detail}")
            }
            ProxyError::UnknownAction { id } => write!(f, "unknown action `{id}`"),
            ProxyError::MissingParameter { name } => write!(f, "missing parameter `{name}`"),
            ProxyError::NotFound { what } => write!(f, "no such {what}"),
            ProxyError::UnsupportedMethod => write!(f, "unsupported method"),
            ProxyError::Overloaded => write!(f, "server overloaded, retry later"),
        }
    }
}

impl std::error::Error for ProxyError {}

impl From<AdaptError> for ProxyError {
    fn from(err: AdaptError) -> ProxyError {
        ProxyError::Adaptation {
            detail: err.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_maps_to_status_and_reason() {
        let variants = [
            ProxyError::BadOriginUrl { detail: "x".into() },
            ProxyError::OriginUnavailable {
                status: Status::SERVICE_UNAVAILABLE,
            },
            ProxyError::BreakerOpen,
            ProxyError::DeadlineExceeded,
            ProxyError::Adaptation { detail: "y".into() },
            ProxyError::UnknownEngine { name: "f".into() },
            ProxyError::RenderFailed { detail: "z".into() },
            ProxyError::UnknownAction { id: "9".into() },
            ProxyError::MissingParameter { name: "action" },
            ProxyError::NotFound { what: "image" },
            ProxyError::UnsupportedMethod,
            ProxyError::Overloaded,
        ];
        let mut reasons = std::collections::HashSet::new();
        for err in variants {
            assert!(!err.status().is_success());
            assert!(reasons.insert(err.reason()), "duplicate {}", err.reason());
            let display = err.to_string();
            let response = err.clone().into_response();
            assert_eq!(response.status, err.status());
            assert_eq!(response.headers.get(ERROR_HEADER), Some(err.reason()));
            assert!(response.body_text().contains(&display));
        }
    }

    #[test]
    fn overload_carries_retry_hint() {
        let response = ProxyError::Overloaded.into_response();
        assert_eq!(response.status, Status::SERVICE_UNAVAILABLE);
        assert_eq!(response.headers.get(ERROR_HEADER), Some("overloaded"));
        assert_eq!(response.headers.get("retry-after"), Some("1"));
        // Only shedding advertises a retry delay; other 503s do not.
        let breaker = ProxyError::BreakerOpen.into_response();
        assert_eq!(breaker.headers.get("retry-after"), None);
    }

    #[test]
    fn unavailability_classification() {
        assert!(ProxyError::BreakerOpen.is_unavailability());
        assert!(ProxyError::OriginUnavailable {
            status: Status::INTERNAL_SERVER_ERROR
        }
        .is_unavailability());
        assert!(ProxyError::DeadlineExceeded.is_unavailability());
        assert!(!ProxyError::NotFound { what: "image" }.is_unavailability());
        assert!(!ProxyError::UnknownEngine { name: "x".into() }.is_unavailability());
    }

    #[test]
    fn origin_failure_classification() {
        let plain = Response::error(Status::SERVICE_UNAVAILABLE, "down");
        assert_eq!(
            ProxyError::from_origin_failure(&plain),
            ProxyError::OriginUnavailable {
                status: Status::SERVICE_UNAVAILABLE
            }
        );
        let mut breaker = Response::error(Status::SERVICE_UNAVAILABLE, "open");
        breaker
            .headers
            .set(msite_net::resilience::BREAKER_HEADER, "open");
        assert_eq!(
            ProxyError::from_origin_failure(&breaker),
            ProxyError::BreakerOpen
        );
        let mut late = Response::error(Status::GATEWAY_TIMEOUT, "late");
        late.headers
            .set(msite_net::resilience::DEADLINE_HEADER, "exhausted");
        assert_eq!(
            ProxyError::from_origin_failure(&late),
            ProxyError::DeadlineExceeded
        );
    }

    #[test]
    fn adapt_error_converts() {
        let err: ProxyError = AdaptError::UnknownSubpage { id: "x".into() }.into();
        assert_eq!(err.reason(), "adaptation-failed");
        assert!(err.to_string().contains("unknown subpage"));
    }
}
