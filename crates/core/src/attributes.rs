//! The attribute model: what a site administrator can express.
//!
//! The paper's central abstraction is the *attribute paradigm*: "page
//! objects are identified in a visual tool, and attributes are selected
//! and applied from a menu." An [`AdaptationSpec`] is the serialized
//! output of that tool — targets plus attributes plus source-level
//! filters — and is what the code generator turns into a proxy program.

use msite_net::BandwidthClass;
use msite_support::json::{obj, FromJson, JsonError, ToJson, Value};

/// How a page object is identified (§3.2 "Object identification":
/// source-level rules, XPath, and CSS 3 selectors are all supported).
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// CSS selector (server-side jQuery style).
    Css(String),
    /// XPath expression (PageTailor style).
    XPath(String),
    /// A non-visual object from the admin tool's dock.
    Dock(DockObject),
}

impl Target {
    /// Human-readable form for code generation.
    pub fn describe(&self) -> String {
        match self {
            Target::Css(s) => format!("css {s:?}"),
            Target::XPath(s) => format!("xpath {s:?}"),
            Target::Dock(d) => format!("dock {}", d.keyword()),
        }
    }
}

/// Non-visual page objects ("a separate dock exists for non-visual
/// objects, such as CSS, Javascript functions, head-section content,
/// doctype tags, and cookies").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DockObject {
    /// The doctype declaration.
    Doctype,
    /// The document title.
    Title,
    /// All scripts in the document.
    Scripts,
    /// All stylesheets (`link[rel=stylesheet]` + `<style>`).
    Stylesheets,
    /// The head section.
    Head,
    /// Session cookies (targeted by cookie-management attributes).
    Cookies,
}

impl DockObject {
    /// The DSL keyword for this dock object.
    pub fn keyword(&self) -> &'static str {
        match self {
            DockObject::Doctype => "doctype",
            DockObject::Title => "title",
            DockObject::Scripts => "scripts",
            DockObject::Stylesheets => "stylesheets",
            DockObject::Head => "head",
            DockObject::Cookies => "cookies",
        }
    }

    /// Parses a DSL keyword.
    pub fn from_keyword(kw: &str) -> Option<DockObject> {
        Some(match kw {
            "doctype" => DockObject::Doctype,
            "title" => DockObject::Title,
            "scripts" => DockObject::Scripts,
            "stylesheets" => DockObject::Stylesheets,
            "head" => DockObject::Head,
            "cookies" => DockObject::Cookies,
            _ => return None,
        })
    }
}

/// Where copied/inserted content lands in a subpage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Position {
    /// Under `<head>` (for CSS/JS dependencies).
    Head,
    /// Start of `<body>`.
    Top,
    /// End of `<body>`.
    #[default]
    Bottom,
}

/// One attribute from the menu (§3.3). Attributes compose: a rule can
/// carry any number of them and they apply in the listed order within
/// the pipeline's phases.
#[derive(Debug, Clone, PartialEq)]
pub enum Attribute {
    /// Split the object into its own subpage (page splitting /
    /// sub-subpages). When `ajax` is set the subpage is additionally
    /// exposed as an asynchronously loadable fragment targeted at a
    /// hidden `div` in the entry page.
    Subpage {
        /// Subpage file stem, e.g. `login`.
        id: String,
        /// Link title shown in menus.
        title: String,
        /// Also expose as an AJAX-loadable fragment.
        ajax: bool,
        /// Pre-render the subpage into an image instead of serving HTML.
        prerender: bool,
    },
    /// Copy this object into the named subpage too (object duplication —
    /// "any object can be duplicated on any subpage").
    CopyTo {
        /// Target subpage id.
        subpage: String,
        /// Placement inside the subpage.
        position: Position,
        /// Optionally override one attribute on the copied root (the
        /// paper's logo copy swaps `src` to a mobile version).
        set_attr: Option<(String, String)>,
    },
    /// Move this object into the named subpage (relocation).
    MoveTo {
        /// Target subpage id.
        subpage: String,
        /// Placement inside the subpage.
        position: Position,
    },
    /// Strip the object from the output entirely.
    Remove,
    /// Keep the object but hide it via CSS (`display:none`).
    Hide,
    /// Replace the object with literal HTML (e.g. a mobile-specific ad).
    ReplaceWith {
        /// Replacement markup.
        html: String,
    },
    /// Insert literal HTML before the object.
    InsertBefore {
        /// Markup to insert.
        html: String,
    },
    /// Insert literal HTML after the object.
    InsertAfter {
        /// Markup to insert.
        html: String,
    },
    /// Set an attribute on the object (e.g. swap an image `src`).
    SetAttr {
        /// Attribute name.
        name: String,
        /// Attribute value.
        value: String,
    },
    /// Rewrite a table/list of links into `columns` vertical columns —
    /// the paper's nav-row adaptation ("stripping the links from the
    /// segment and rewriting the HTML to list the links vertically,
    /// into two columns").
    LinksToColumns {
        /// Number of columns.
        columns: u32,
    },
    /// Inject a client-side script next to the object (JS insertion).
    InjectClientScript {
        /// Script source.
        code: String,
    },
    /// Pre-render the object into an image at the given fidelity
    /// (partial pre-rendering of a page region).
    PrerenderImage {
        /// Uniform scale factor.
        scale: f32,
        /// JPEG-class quality 1–100.
        quality: u8,
        /// Cache TTL in seconds; `None` = per-user, uncached.
        cache_ttl_secs: Option<u64>,
    },
    /// Partial CSS pre-rendering: render the object with text replaced
    /// by stretched placeholders, ship the raster as a background, and
    /// draw the text client-side at recorded positions.
    PartialCssPrerender {
        /// Uniform scale factor.
        scale: f32,
    },
    /// Build a word index over the object so its pre-rendered image is
    /// searchable client-side.
    Searchable,
    /// Replace rich media (`object`, `embed`, `video`, `iframe`,
    /// `applet`) inside the object with rendered thumbnail snapshots —
    /// the paper's "support for producing thumbnail snapshots of rich
    /// media content for resource-constrained devices".
    RichMediaThumbnail {
        /// Uniform scale of the thumbnail relative to the declared size.
        scale: f32,
    },
    /// Reduce fidelity of all images inside the object.
    ImageFidelity {
        /// JPEG-class quality 1–100.
        quality: u8,
    },
    /// Rewrite the object's AJAX handlers (`$(sel).load(url)` patterns)
    /// to be satisfied by the proxy.
    AjaxRewrite,
    /// Convert the object's plain navigation links into asynchronous
    /// loads into `target` (a CSS selector), satisfied by the proxy —
    /// the CraigsList two-pane adaptation of §4.5.
    LinksToAjax {
        /// Selector of the container that receives loaded fragments.
        target: String,
    },
    /// Declare that this object depends on objects matching `selector`
    /// (CSS/JS), which must be copied into any subpage carrying it.
    Dependency {
        /// Selector of the dependency objects.
        selector: String,
    },
    /// Protect this object's subpage behind the proxy's lightweight
    /// HTTP-auth flow.
    HttpAuth,
    /// Keep only the object's top-scored content candidate
    /// (readability-style extraction over the tidy walk's per-subtree
    /// metrics), absorbing qualifying siblings and detaching everything
    /// else on the path up to the object.
    ExtractMainContent,
    /// Strip ad/nav/footer/sidebar/social/comment-classified blocks
    /// inside the object. The top-scored content candidate and its
    /// ancestors are always protected.
    StripBoilerplate {
        /// How much chrome goes: 0 = nothing (identity), 1 = ads,
        /// 2 = + nav/footer/sidebar/social, 3 = + comment threads.
        aggressiveness: u8,
    },
    /// Re-encode images inside the object under per-bandwidth-tier
    /// quality and dimension caps (see `content::fidelity`).
    FidelityTier {
        /// Pinned bandwidth class; `None` = auto (resolved per request
        /// from the `x-msite-bandwidth` header or the User-Agent's
        /// device class).
        tier: Option<BandwidthClass>,
    },
}

/// A source-level filter (§3.2 "filter phase"): applied to the raw HTML
/// before any DOM parse, "avoiding a DOM parse altogether" when the
/// filters suffice.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceFilter {
    /// Replace every occurrence of a literal string.
    Replace {
        /// Text to find.
        find: String,
        /// Replacement.
        replace: String,
    },
    /// Replace the doctype ("extremely simple filters such as changing
    /// the doctype").
    SetDoctype {
        /// New doctype line.
        doctype: String,
    },
    /// Replace the `<title>`.
    SetTitle {
        /// New title text.
        title: String,
    },
    /// Blanket-remove a tag and its content at source level ("blanketly
    /// removing css and script tags").
    StripTag {
        /// Tag name, e.g. `script`.
        tag: String,
    },
    /// Rewrite image URL prefixes to a low-fidelity cache or different
    /// server.
    RewriteImagePrefix {
        /// Prefix to match.
        from: String,
        /// Replacement prefix.
        to: String,
    },
}

/// One rule: a target plus the attributes assigned to it.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// The object this rule applies to.
    pub target: Target,
    /// Attributes in application order.
    pub attributes: Vec<Attribute>,
}

/// Snapshot configuration for the entry page.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotSpec {
    /// Uniform scale applied to the rendered page ("the image itself is
    /// also scaled down to prevent the user from having to zoom").
    pub scale: f32,
    /// JPEG-class quality for the low-fidelity save.
    pub quality: u8,
    /// Shared-cache TTL in seconds ("set to expire after an hour").
    pub cache_ttl_secs: u64,
    /// Server-side viewport width for the render.
    pub viewport_width: u32,
}

impl Default for SnapshotSpec {
    fn default() -> Self {
        SnapshotSpec {
            scale: 0.5,
            quality: 40,
            cache_ttl_secs: 3_600,
            viewport_width: 1_024,
        }
    }
}

/// The complete output of the admin tool for one page.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptationSpec {
    /// Short identifier for the adapted page (used in proxy URLs).
    pub page_id: String,
    /// Origin URL being adapted.
    pub page_url: String,
    /// Whether m.Site sessions are required (cookie jar per user).
    pub session_required: bool,
    /// Entry-page snapshot settings; `None` disables pre-rendering.
    pub snapshot: Option<SnapshotSpec>,
    /// Source-level filters, applied in order.
    pub filters: Vec<SourceFilter>,
    /// Object rules, applied in order.
    pub rules: Vec<Rule>,
}

impl AdaptationSpec {
    /// Creates an empty spec for a page.
    pub fn new(page_id: &str, page_url: &str) -> AdaptationSpec {
        AdaptationSpec {
            page_id: page_id.to_string(),
            page_url: page_url.to_string(),
            session_required: true,
            snapshot: Some(SnapshotSpec::default()),
            filters: Vec::new(),
            rules: Vec::new(),
        }
    }

    /// Adds a rule (builder style).
    pub fn rule(mut self, target: Target, attributes: Vec<Attribute>) -> AdaptationSpec {
        self.rules.push(Rule { target, attributes });
        self
    }

    /// Adds a source filter (builder style).
    pub fn filter(mut self, filter: SourceFilter) -> AdaptationSpec {
        self.filters.push(filter);
        self
    }

    /// All subpage declarations in order of appearance.
    pub fn subpages(&self) -> Vec<(&str, &str)> {
        self.rules
            .iter()
            .flat_map(|r| &r.attributes)
            .filter_map(|a| match a {
                Attribute::Subpage { id, title, .. } => Some((id.as_str(), title.as_str())),
                _ => None,
            })
            .collect()
    }

    /// True when some attribute requires the server-side browser
    /// (pre-rendering of any kind, or a snapshot). The scalability win of
    /// the paper comes from this being false for most requests.
    pub fn needs_browser(&self) -> bool {
        self.snapshot.is_some()
            || self.rules.iter().flat_map(|r| &r.attributes).any(|a| {
                matches!(
                    a,
                    Attribute::PrerenderImage { .. }
                        | Attribute::PartialCssPrerender { .. }
                        | Attribute::Searchable
                        | Attribute::FidelityTier { .. }
                        | Attribute::Subpage {
                            prerender: true,
                            ..
                        }
                )
            })
    }

    /// True when some attribute needs the per-subtree content metrics
    /// of the tidy parse (extraction or boilerplate stripping) — the
    /// DOM stage measures the clean tree only for such specs.
    pub fn wants_content_metrics(&self) -> bool {
        self.rules.iter().flat_map(|r| &r.attributes).any(|a| {
            matches!(
                a,
                Attribute::ExtractMainContent | Attribute::StripBoilerplate { .. }
            )
        })
    }

    /// The spec's fidelity-tier request, when any rule carries one:
    /// `Some(Some(class))` for a pinned tier, `Some(None)` for auto
    /// (resolve per request), `None` when the spec is tier-less.
    pub fn fidelity_request(&self) -> Option<Option<BandwidthClass>> {
        self.rules
            .iter()
            .flat_map(|r| &r.attributes)
            .find_map(|a| match a {
                Attribute::FidelityTier { tier } => Some(*tier),
                _ => None,
            })
    }

    /// Serializes to the admin tool's JSON format.
    pub fn to_json(&self) -> String {
        self.to_json_pretty()
    }

    /// Parses the admin tool's JSON format.
    ///
    /// # Errors
    ///
    /// Returns the underlying JSON parse or shape error.
    pub fn from_json(json: &str) -> Result<AdaptationSpec, JsonError> {
        AdaptationSpec::from_json_str(json)
    }
}

// ---- JSON encoding -----------------------------------------------------
//
// The admin tool's format is externally tagged: unit variants are bare
// strings (`"remove"`), payload variants are single-member objects
// (`{"subpage": {...}}`). `FromJson` is the exact inverse of `ToJson`.

fn tagged(value: &Value) -> Result<(&str, &Value), JsonError> {
    let members = value
        .as_object()
        .ok_or_else(|| JsonError::new("expected tagged object"))?;
    match members {
        [(tag, payload)] => Ok((tag, payload)),
        _ => Err(JsonError::new("expected single-member tagged object")),
    }
}

impl ToJson for Target {
    fn to_json_value(&self) -> Value {
        match self {
            Target::Css(s) => obj([("css", s.to_json_value())]),
            Target::XPath(s) => obj([("xpath", s.to_json_value())]),
            Target::Dock(d) => obj([("dock", Value::Str(d.keyword().to_string()))]),
        }
    }
}

impl FromJson for Target {
    fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        let (tag, payload) = tagged(value)?;
        match tag {
            "css" => Ok(Target::Css(String::from_json_value(payload)?)),
            "xpath" => Ok(Target::XPath(String::from_json_value(payload)?)),
            "dock" => {
                let kw = payload
                    .as_str()
                    .ok_or_else(|| JsonError::new("dock: expected keyword string"))?;
                DockObject::from_keyword(kw)
                    .map(Target::Dock)
                    .ok_or_else(|| JsonError::new(format!("unknown dock object `{kw}`")))
            }
            other => Err(JsonError::new(format!("unknown target kind `{other}`"))),
        }
    }
}

impl ToJson for Position {
    fn to_json_value(&self) -> Value {
        Value::Str(
            match self {
                Position::Head => "head",
                Position::Top => "top",
                Position::Bottom => "bottom",
            }
            .to_string(),
        )
    }
}

impl FromJson for Position {
    fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        match value.as_str() {
            Some("head") => Ok(Position::Head),
            Some("top") => Ok(Position::Top),
            Some("bottom") => Ok(Position::Bottom),
            _ => Err(JsonError::new("expected position `head`/`top`/`bottom`")),
        }
    }
}

impl ToJson for Attribute {
    fn to_json_value(&self) -> Value {
        match self {
            Attribute::Subpage {
                id,
                title,
                ajax,
                prerender,
            } => obj([(
                "subpage",
                obj([
                    ("id", id.to_json_value()),
                    ("title", title.to_json_value()),
                    ("ajax", ajax.to_json_value()),
                    ("prerender", prerender.to_json_value()),
                ]),
            )]),
            Attribute::CopyTo {
                subpage,
                position,
                set_attr,
            } => obj([(
                "copy_to",
                obj([
                    ("subpage", subpage.to_json_value()),
                    ("position", position.to_json_value()),
                    (
                        "set_attr",
                        match set_attr {
                            Some((name, val)) => {
                                Value::Array(vec![name.to_json_value(), val.to_json_value()])
                            }
                            None => Value::Null,
                        },
                    ),
                ]),
            )]),
            Attribute::MoveTo { subpage, position } => obj([(
                "move_to",
                obj([
                    ("subpage", subpage.to_json_value()),
                    ("position", position.to_json_value()),
                ]),
            )]),
            Attribute::Remove => Value::Str("remove".to_string()),
            Attribute::Hide => Value::Str("hide".to_string()),
            Attribute::ReplaceWith { html } => {
                obj([("replace_with", obj([("html", html.to_json_value())]))])
            }
            Attribute::InsertBefore { html } => {
                obj([("insert_before", obj([("html", html.to_json_value())]))])
            }
            Attribute::InsertAfter { html } => {
                obj([("insert_after", obj([("html", html.to_json_value())]))])
            }
            Attribute::SetAttr { name, value } => obj([(
                "set_attr",
                obj([
                    ("name", name.to_json_value()),
                    ("value", value.to_json_value()),
                ]),
            )]),
            Attribute::LinksToColumns { columns } => obj([(
                "links_to_columns",
                obj([("columns", columns.to_json_value())]),
            )]),
            Attribute::InjectClientScript { code } => obj([(
                "inject_client_script",
                obj([("code", code.to_json_value())]),
            )]),
            Attribute::PrerenderImage {
                scale,
                quality,
                cache_ttl_secs,
            } => obj([(
                "prerender_image",
                obj([
                    ("scale", scale.to_json_value()),
                    ("quality", quality.to_json_value()),
                    ("cache_ttl_secs", cache_ttl_secs.to_json_value()),
                ]),
            )]),
            Attribute::PartialCssPrerender { scale } => obj([(
                "partial_css_prerender",
                obj([("scale", scale.to_json_value())]),
            )]),
            Attribute::Searchable => Value::Str("searchable".to_string()),
            Attribute::RichMediaThumbnail { scale } => obj([(
                "rich_media_thumbnail",
                obj([("scale", scale.to_json_value())]),
            )]),
            Attribute::ImageFidelity { quality } => obj([(
                "image_fidelity",
                obj([("quality", quality.to_json_value())]),
            )]),
            Attribute::AjaxRewrite => Value::Str("ajax_rewrite".to_string()),
            Attribute::LinksToAjax { target } => {
                obj([("links_to_ajax", obj([("target", target.to_json_value())]))])
            }
            Attribute::Dependency { selector } => {
                obj([("dependency", obj([("selector", selector.to_json_value())]))])
            }
            Attribute::HttpAuth => Value::Str("http_auth".to_string()),
            Attribute::ExtractMainContent => Value::Str("extract_main_content".to_string()),
            Attribute::StripBoilerplate { aggressiveness } => obj([(
                "strip_boilerplate",
                obj([("aggressiveness", aggressiveness.to_json_value())]),
            )]),
            Attribute::FidelityTier { tier } => obj([(
                "fidelity_tier",
                obj([(
                    "tier",
                    Value::Str(match tier {
                        Some(class) => class.name().to_string(),
                        None => "auto".to_string(),
                    }),
                )]),
            )]),
        }
    }
}

/// Parses a serialized tier word: `auto` or a bandwidth-class name.
fn parse_tier(word: &str) -> Result<Option<BandwidthClass>, JsonError> {
    if word == "auto" {
        return Ok(None);
    }
    BandwidthClass::parse(word)
        .map(Some)
        .ok_or_else(|| JsonError::new(format!("unknown fidelity tier `{word}`")))
}

impl FromJson for Attribute {
    fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        if let Some(unit) = value.as_str() {
            return match unit {
                "remove" => Ok(Attribute::Remove),
                "hide" => Ok(Attribute::Hide),
                "searchable" => Ok(Attribute::Searchable),
                "ajax_rewrite" => Ok(Attribute::AjaxRewrite),
                "http_auth" => Ok(Attribute::HttpAuth),
                "extract_main_content" => Ok(Attribute::ExtractMainContent),
                other => Err(JsonError::new(format!("unknown attribute `{other}`"))),
            };
        }
        let (tag, p) = tagged(value)?;
        match tag {
            "subpage" => Ok(Attribute::Subpage {
                id: p.req("id")?,
                title: p.req("title")?,
                ajax: p.req("ajax")?,
                prerender: p.req("prerender")?,
            }),
            "copy_to" => Ok(Attribute::CopyTo {
                subpage: p.req("subpage")?,
                position: p.req("position")?,
                set_attr: match p.field("set_attr")? {
                    Value::Null => None,
                    Value::Array(pair) => match pair.as_slice() {
                        [name, val] => Some((
                            String::from_json_value(name)?,
                            String::from_json_value(val)?,
                        )),
                        _ => return Err(JsonError::new("set_attr: expected [name, value]")),
                    },
                    _ => return Err(JsonError::new("set_attr: expected array or null")),
                },
            }),
            "move_to" => Ok(Attribute::MoveTo {
                subpage: p.req("subpage")?,
                position: p.req("position")?,
            }),
            "replace_with" => Ok(Attribute::ReplaceWith {
                html: p.req("html")?,
            }),
            "insert_before" => Ok(Attribute::InsertBefore {
                html: p.req("html")?,
            }),
            "insert_after" => Ok(Attribute::InsertAfter {
                html: p.req("html")?,
            }),
            "set_attr" => Ok(Attribute::SetAttr {
                name: p.req("name")?,
                value: p.req("value")?,
            }),
            "links_to_columns" => Ok(Attribute::LinksToColumns {
                columns: p.req("columns")?,
            }),
            "inject_client_script" => Ok(Attribute::InjectClientScript {
                code: p.req("code")?,
            }),
            "prerender_image" => Ok(Attribute::PrerenderImage {
                scale: p.req("scale")?,
                quality: p.req("quality")?,
                cache_ttl_secs: p.opt("cache_ttl_secs")?,
            }),
            "partial_css_prerender" => Ok(Attribute::PartialCssPrerender {
                scale: p.req("scale")?,
            }),
            "rich_media_thumbnail" => Ok(Attribute::RichMediaThumbnail {
                scale: p.req("scale")?,
            }),
            "image_fidelity" => Ok(Attribute::ImageFidelity {
                quality: p.req("quality")?,
            }),
            "links_to_ajax" => Ok(Attribute::LinksToAjax {
                target: p.req("target")?,
            }),
            "dependency" => Ok(Attribute::Dependency {
                selector: p.req("selector")?,
            }),
            "strip_boilerplate" => Ok(Attribute::StripBoilerplate {
                aggressiveness: p.req("aggressiveness")?,
            }),
            "fidelity_tier" => {
                let word: String = p.req("tier")?;
                Ok(Attribute::FidelityTier {
                    tier: parse_tier(&word)?,
                })
            }
            other => Err(JsonError::new(format!("unknown attribute `{other}`"))),
        }
    }
}

impl ToJson for SourceFilter {
    fn to_json_value(&self) -> Value {
        match self {
            SourceFilter::Replace { find, replace } => obj([(
                "replace",
                obj([
                    ("find", find.to_json_value()),
                    ("replace", replace.to_json_value()),
                ]),
            )]),
            SourceFilter::SetDoctype { doctype } => {
                obj([("set_doctype", obj([("doctype", doctype.to_json_value())]))])
            }
            SourceFilter::SetTitle { title } => {
                obj([("set_title", obj([("title", title.to_json_value())]))])
            }
            SourceFilter::StripTag { tag } => {
                obj([("strip_tag", obj([("tag", tag.to_json_value())]))])
            }
            SourceFilter::RewriteImagePrefix { from, to } => obj([(
                "rewrite_image_prefix",
                obj([("from", from.to_json_value()), ("to", to.to_json_value())]),
            )]),
        }
    }
}

impl FromJson for SourceFilter {
    fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        let (tag, p) = tagged(value)?;
        match tag {
            "replace" => Ok(SourceFilter::Replace {
                find: p.req("find")?,
                replace: p.req("replace")?,
            }),
            "set_doctype" => Ok(SourceFilter::SetDoctype {
                doctype: p.req("doctype")?,
            }),
            "set_title" => Ok(SourceFilter::SetTitle {
                title: p.req("title")?,
            }),
            "strip_tag" => Ok(SourceFilter::StripTag { tag: p.req("tag")? }),
            "rewrite_image_prefix" => Ok(SourceFilter::RewriteImagePrefix {
                from: p.req("from")?,
                to: p.req("to")?,
            }),
            other => Err(JsonError::new(format!("unknown source filter `{other}`"))),
        }
    }
}

impl ToJson for Rule {
    fn to_json_value(&self) -> Value {
        obj([
            ("target", self.target.to_json_value()),
            ("attributes", self.attributes.to_json_value()),
        ])
    }
}

impl FromJson for Rule {
    fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        Ok(Rule {
            target: value.req("target")?,
            attributes: value.req("attributes")?,
        })
    }
}

impl ToJson for SnapshotSpec {
    fn to_json_value(&self) -> Value {
        obj([
            ("scale", self.scale.to_json_value()),
            ("quality", self.quality.to_json_value()),
            ("cache_ttl_secs", self.cache_ttl_secs.to_json_value()),
            ("viewport_width", self.viewport_width.to_json_value()),
        ])
    }
}

impl FromJson for SnapshotSpec {
    fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        Ok(SnapshotSpec {
            scale: value.req("scale")?,
            quality: value.req("quality")?,
            cache_ttl_secs: value.req("cache_ttl_secs")?,
            viewport_width: value.req("viewport_width")?,
        })
    }
}

impl ToJson for AdaptationSpec {
    fn to_json_value(&self) -> Value {
        obj([
            ("page_id", self.page_id.to_json_value()),
            ("page_url", self.page_url.to_json_value()),
            ("session_required", self.session_required.to_json_value()),
            ("snapshot", self.snapshot.to_json_value()),
            ("filters", self.filters.to_json_value()),
            ("rules", self.rules.to_json_value()),
        ])
    }
}

impl FromJson for AdaptationSpec {
    fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        Ok(AdaptationSpec {
            page_id: value.req("page_id")?,
            page_url: value.req("page_url")?,
            session_required: value.req("session_required")?,
            snapshot: value.opt("snapshot")?,
            filters: value.req("filters")?,
            rules: value.req("rules")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> AdaptationSpec {
        AdaptationSpec::new("forum", "http://forum.test/index.php")
            .filter(SourceFilter::SetTitle {
                title: "Mobile Forum".into(),
            })
            .rule(
                Target::Css("#loginform".into()),
                vec![
                    Attribute::Subpage {
                        id: "login".into(),
                        title: "Log in".into(),
                        ajax: false,
                        prerender: false,
                    },
                    Attribute::Dependency {
                        selector: "head link, head script".into(),
                    },
                ],
            )
            .rule(Target::Css("#leaderboard".into()), vec![Attribute::Remove])
    }

    #[test]
    fn json_round_trip() {
        let spec = sample_spec();
        let json = spec.to_json();
        let parsed = AdaptationSpec::from_json(&json).unwrap();
        assert_eq!(spec, parsed);
    }

    #[test]
    fn subpages_enumerated() {
        let spec = sample_spec();
        assert_eq!(spec.subpages(), vec![("login", "Log in")]);
    }

    #[test]
    fn needs_browser_logic() {
        let mut spec = sample_spec();
        assert!(spec.needs_browser()); // default snapshot
        spec.snapshot = None;
        assert!(!spec.needs_browser());
        spec.rules.push(Rule {
            target: Target::Css(".x".into()),
            attributes: vec![Attribute::PrerenderImage {
                scale: 1.0,
                quality: 50,
                cache_ttl_secs: None,
            }],
        });
        assert!(spec.needs_browser());
    }

    #[test]
    fn dock_keywords_round_trip() {
        for dock in [
            DockObject::Doctype,
            DockObject::Title,
            DockObject::Scripts,
            DockObject::Stylesheets,
            DockObject::Head,
            DockObject::Cookies,
        ] {
            assert_eq!(DockObject::from_keyword(dock.keyword()), Some(dock));
        }
        assert_eq!(DockObject::from_keyword("bogus"), None);
    }

    #[test]
    fn target_description() {
        assert_eq!(Target::Css("#a".into()).describe(), "css \"#a\"");
        assert!(Target::Dock(DockObject::Title).describe().contains("title"));
    }

    #[test]
    fn bad_json_is_an_error() {
        assert!(AdaptationSpec::from_json("{not json").is_err());
    }
}
