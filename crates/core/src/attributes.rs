//! The attribute model: what a site administrator can express.
//!
//! The paper's central abstraction is the *attribute paradigm*: "page
//! objects are identified in a visual tool, and attributes are selected
//! and applied from a menu." An [`AdaptationSpec`] is the serialized
//! output of that tool — targets plus attributes plus source-level
//! filters — and is what the code generator turns into a proxy program.

use serde::{Deserialize, Serialize};

/// How a page object is identified (§3.2 "Object identification":
/// source-level rules, XPath, and CSS 3 selectors are all supported).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Target {
    /// CSS selector (server-side jQuery style).
    Css(String),
    /// XPath expression (PageTailor style).
    XPath(String),
    /// A non-visual object from the admin tool's dock.
    Dock(DockObject),
}

impl Target {
    /// Human-readable form for code generation.
    pub fn describe(&self) -> String {
        match self {
            Target::Css(s) => format!("css {s:?}"),
            Target::XPath(s) => format!("xpath {s:?}"),
            Target::Dock(d) => format!("dock {}", d.keyword()),
        }
    }
}

/// Non-visual page objects ("a separate dock exists for non-visual
/// objects, such as CSS, Javascript functions, head-section content,
/// doctype tags, and cookies").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DockObject {
    /// The doctype declaration.
    Doctype,
    /// The document title.
    Title,
    /// All scripts in the document.
    Scripts,
    /// All stylesheets (`link[rel=stylesheet]` + `<style>`).
    Stylesheets,
    /// The head section.
    Head,
    /// Session cookies (targeted by cookie-management attributes).
    Cookies,
}

impl DockObject {
    /// The DSL keyword for this dock object.
    pub fn keyword(&self) -> &'static str {
        match self {
            DockObject::Doctype => "doctype",
            DockObject::Title => "title",
            DockObject::Scripts => "scripts",
            DockObject::Stylesheets => "stylesheets",
            DockObject::Head => "head",
            DockObject::Cookies => "cookies",
        }
    }

    /// Parses a DSL keyword.
    pub fn from_keyword(kw: &str) -> Option<DockObject> {
        Some(match kw {
            "doctype" => DockObject::Doctype,
            "title" => DockObject::Title,
            "scripts" => DockObject::Scripts,
            "stylesheets" => DockObject::Stylesheets,
            "head" => DockObject::Head,
            "cookies" => DockObject::Cookies,
            _ => return None,
        })
    }
}

/// Where copied/inserted content lands in a subpage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Position {
    /// Under `<head>` (for CSS/JS dependencies).
    Head,
    /// Start of `<body>`.
    Top,
    /// End of `<body>`.
    #[default]
    Bottom,
}

/// One attribute from the menu (§3.3). Attributes compose: a rule can
/// carry any number of them and they apply in the listed order within
/// the pipeline's phases.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Attribute {
    /// Split the object into its own subpage (page splitting /
    /// sub-subpages). When `ajax` is set the subpage is additionally
    /// exposed as an asynchronously loadable fragment targeted at a
    /// hidden `div` in the entry page.
    Subpage {
        /// Subpage file stem, e.g. `login`.
        id: String,
        /// Link title shown in menus.
        title: String,
        /// Also expose as an AJAX-loadable fragment.
        ajax: bool,
        /// Pre-render the subpage into an image instead of serving HTML.
        prerender: bool,
    },
    /// Copy this object into the named subpage too (object duplication —
    /// "any object can be duplicated on any subpage").
    CopyTo {
        /// Target subpage id.
        subpage: String,
        /// Placement inside the subpage.
        position: Position,
        /// Optionally override one attribute on the copied root (the
        /// paper's logo copy swaps `src` to a mobile version).
        set_attr: Option<(String, String)>,
    },
    /// Move this object into the named subpage (relocation).
    MoveTo {
        /// Target subpage id.
        subpage: String,
        /// Placement inside the subpage.
        position: Position,
    },
    /// Strip the object from the output entirely.
    Remove,
    /// Keep the object but hide it via CSS (`display:none`).
    Hide,
    /// Replace the object with literal HTML (e.g. a mobile-specific ad).
    ReplaceWith {
        /// Replacement markup.
        html: String,
    },
    /// Insert literal HTML before the object.
    InsertBefore {
        /// Markup to insert.
        html: String,
    },
    /// Insert literal HTML after the object.
    InsertAfter {
        /// Markup to insert.
        html: String,
    },
    /// Set an attribute on the object (e.g. swap an image `src`).
    SetAttr {
        /// Attribute name.
        name: String,
        /// Attribute value.
        value: String,
    },
    /// Rewrite a table/list of links into `columns` vertical columns —
    /// the paper's nav-row adaptation ("stripping the links from the
    /// segment and rewriting the HTML to list the links vertically,
    /// into two columns").
    LinksToColumns {
        /// Number of columns.
        columns: u32,
    },
    /// Inject a client-side script next to the object (JS insertion).
    InjectClientScript {
        /// Script source.
        code: String,
    },
    /// Pre-render the object into an image at the given fidelity
    /// (partial pre-rendering of a page region).
    PrerenderImage {
        /// Uniform scale factor.
        scale: f32,
        /// JPEG-class quality 1–100.
        quality: u8,
        /// Cache TTL in seconds; `None` = per-user, uncached.
        cache_ttl_secs: Option<u64>,
    },
    /// Partial CSS pre-rendering: render the object with text replaced
    /// by stretched placeholders, ship the raster as a background, and
    /// draw the text client-side at recorded positions.
    PartialCssPrerender {
        /// Uniform scale factor.
        scale: f32,
    },
    /// Build a word index over the object so its pre-rendered image is
    /// searchable client-side.
    Searchable,
    /// Replace rich media (`object`, `embed`, `video`, `iframe`,
    /// `applet`) inside the object with rendered thumbnail snapshots —
    /// the paper's "support for producing thumbnail snapshots of rich
    /// media content for resource-constrained devices".
    RichMediaThumbnail {
        /// Uniform scale of the thumbnail relative to the declared size.
        scale: f32,
    },
    /// Reduce fidelity of all images inside the object.
    ImageFidelity {
        /// JPEG-class quality 1–100.
        quality: u8,
    },
    /// Rewrite the object's AJAX handlers (`$(sel).load(url)` patterns)
    /// to be satisfied by the proxy.
    AjaxRewrite,
    /// Convert the object's plain navigation links into asynchronous
    /// loads into `target` (a CSS selector), satisfied by the proxy —
    /// the CraigsList two-pane adaptation of §4.5.
    LinksToAjax {
        /// Selector of the container that receives loaded fragments.
        target: String,
    },
    /// Declare that this object depends on objects matching `selector`
    /// (CSS/JS), which must be copied into any subpage carrying it.
    Dependency {
        /// Selector of the dependency objects.
        selector: String,
    },
    /// Protect this object's subpage behind the proxy's lightweight
    /// HTTP-auth flow.
    HttpAuth,
}

/// A source-level filter (§3.2 "filter phase"): applied to the raw HTML
/// before any DOM parse, "avoiding a DOM parse altogether" when the
/// filters suffice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SourceFilter {
    /// Replace every occurrence of a literal string.
    Replace {
        /// Text to find.
        find: String,
        /// Replacement.
        replace: String,
    },
    /// Replace the doctype ("extremely simple filters such as changing
    /// the doctype").
    SetDoctype {
        /// New doctype line.
        doctype: String,
    },
    /// Replace the `<title>`.
    SetTitle {
        /// New title text.
        title: String,
    },
    /// Blanket-remove a tag and its content at source level ("blanketly
    /// removing css and script tags").
    StripTag {
        /// Tag name, e.g. `script`.
        tag: String,
    },
    /// Rewrite image URL prefixes to a low-fidelity cache or different
    /// server.
    RewriteImagePrefix {
        /// Prefix to match.
        from: String,
        /// Replacement prefix.
        to: String,
    },
}

/// One rule: a target plus the attributes assigned to it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// The object this rule applies to.
    pub target: Target,
    /// Attributes in application order.
    pub attributes: Vec<Attribute>,
}

/// Snapshot configuration for the entry page.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotSpec {
    /// Uniform scale applied to the rendered page ("the image itself is
    /// also scaled down to prevent the user from having to zoom").
    pub scale: f32,
    /// JPEG-class quality for the low-fidelity save.
    pub quality: u8,
    /// Shared-cache TTL in seconds ("set to expire after an hour").
    pub cache_ttl_secs: u64,
    /// Server-side viewport width for the render.
    pub viewport_width: u32,
}

impl Default for SnapshotSpec {
    fn default() -> Self {
        SnapshotSpec {
            scale: 0.5,
            quality: 40,
            cache_ttl_secs: 3_600,
            viewport_width: 1_024,
        }
    }
}

/// The complete output of the admin tool for one page.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptationSpec {
    /// Short identifier for the adapted page (used in proxy URLs).
    pub page_id: String,
    /// Origin URL being adapted.
    pub page_url: String,
    /// Whether m.Site sessions are required (cookie jar per user).
    pub session_required: bool,
    /// Entry-page snapshot settings; `None` disables pre-rendering.
    pub snapshot: Option<SnapshotSpec>,
    /// Source-level filters, applied in order.
    pub filters: Vec<SourceFilter>,
    /// Object rules, applied in order.
    pub rules: Vec<Rule>,
}

impl AdaptationSpec {
    /// Creates an empty spec for a page.
    pub fn new(page_id: &str, page_url: &str) -> AdaptationSpec {
        AdaptationSpec {
            page_id: page_id.to_string(),
            page_url: page_url.to_string(),
            session_required: true,
            snapshot: Some(SnapshotSpec::default()),
            filters: Vec::new(),
            rules: Vec::new(),
        }
    }

    /// Adds a rule (builder style).
    pub fn rule(mut self, target: Target, attributes: Vec<Attribute>) -> AdaptationSpec {
        self.rules.push(Rule { target, attributes });
        self
    }

    /// Adds a source filter (builder style).
    pub fn filter(mut self, filter: SourceFilter) -> AdaptationSpec {
        self.filters.push(filter);
        self
    }

    /// All subpage declarations in order of appearance.
    pub fn subpages(&self) -> Vec<(&str, &str)> {
        self.rules
            .iter()
            .flat_map(|r| &r.attributes)
            .filter_map(|a| match a {
                Attribute::Subpage { id, title, .. } => Some((id.as_str(), title.as_str())),
                _ => None,
            })
            .collect()
    }

    /// True when some attribute requires the server-side browser
    /// (pre-rendering of any kind, or a snapshot). The scalability win of
    /// the paper comes from this being false for most requests.
    pub fn needs_browser(&self) -> bool {
        self.snapshot.is_some()
            || self.rules.iter().flat_map(|r| &r.attributes).any(|a| {
                matches!(
                    a,
                    Attribute::PrerenderImage { .. }
                        | Attribute::PartialCssPrerender { .. }
                        | Attribute::Searchable
                        | Attribute::Subpage { prerender: true, .. }
                )
            })
    }

    /// Serializes to the admin tool's JSON format.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serializes")
    }

    /// Parses the admin tool's JSON format.
    ///
    /// # Errors
    ///
    /// Returns the underlying serde error.
    pub fn from_json(json: &str) -> Result<AdaptationSpec, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> AdaptationSpec {
        AdaptationSpec::new("forum", "http://forum.test/index.php")
            .filter(SourceFilter::SetTitle {
                title: "Mobile Forum".into(),
            })
            .rule(
                Target::Css("#loginform".into()),
                vec![
                    Attribute::Subpage {
                        id: "login".into(),
                        title: "Log in".into(),
                        ajax: false,
                        prerender: false,
                    },
                    Attribute::Dependency {
                        selector: "head link, head script".into(),
                    },
                ],
            )
            .rule(Target::Css("#leaderboard".into()), vec![Attribute::Remove])
    }

    #[test]
    fn json_round_trip() {
        let spec = sample_spec();
        let json = spec.to_json();
        let parsed = AdaptationSpec::from_json(&json).unwrap();
        assert_eq!(spec, parsed);
    }

    #[test]
    fn subpages_enumerated() {
        let spec = sample_spec();
        assert_eq!(spec.subpages(), vec![("login", "Log in")]);
    }

    #[test]
    fn needs_browser_logic() {
        let mut spec = sample_spec();
        assert!(spec.needs_browser()); // default snapshot
        spec.snapshot = None;
        assert!(!spec.needs_browser());
        spec.rules.push(Rule {
            target: Target::Css(".x".into()),
            attributes: vec![Attribute::PrerenderImage {
                scale: 1.0,
                quality: 50,
                cache_ttl_secs: None,
            }],
        });
        assert!(spec.needs_browser());
    }

    #[test]
    fn dock_keywords_round_trip() {
        for dock in [
            DockObject::Doctype,
            DockObject::Title,
            DockObject::Scripts,
            DockObject::Stylesheets,
            DockObject::Head,
            DockObject::Cookies,
        ] {
            assert_eq!(DockObject::from_keyword(dock.keyword()), Some(dock));
        }
        assert_eq!(DockObject::from_keyword("bogus"), None);
    }

    #[test]
    fn target_description() {
        assert_eq!(Target::Css("#a".into()).describe(), "css \"#a\"");
        assert!(Target::Dock(DockObject::Title).describe().contains("title"));
    }

    #[test]
    fn bad_json_is_an_error() {
        assert!(AdaptationSpec::from_json("{not json").is_err());
    }
}
