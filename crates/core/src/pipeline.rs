//! The adaptation pipeline: filters → tidy/DOM → attributes → subpage
//! emission → rendering (§3.2, Figure 3).
//!
//! Given an [`AdaptationSpec`] and a fetched page, [`adapt`] produces an
//! [`AdaptedBundle`]: the entry page, the generated subpages, every
//! rendered image, and the AJAX action registry. The proxy writes these
//! into per-user session directories and shared caches.
//!
//! The phases honor the paper's cost structure: if a spec contains only
//! source filters (and no snapshot), the page is adapted *without any
//! DOM parse*; the heavyweight browser is instantiated only when a
//! snapshot or pre-render attribute demands graphical output.

use crate::ajax::{self, AjaxRegistry};
use crate::attributes::{
    AdaptationSpec, Attribute, DockObject, Position, Rule, SourceFilter, Target,
};
use crate::search::SearchIndex;
use msite_html::{parse_fragment_into, tidy, Document, NodeId};
use msite_render::browser::{Browser, BrowserConfig};
use msite_render::image::{process, ImageFormat, PostProcess};
use msite_render::Rect;
use msite_selectors::{SelectorList, XPath};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::time::Duration;

/// Pipeline failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdaptError {
    /// A rule's selector or XPath failed to parse.
    InvalidTarget {
        /// The offending target text.
        target: String,
        /// Parser message.
        message: String,
    },
    /// A `copy-to`/`move-to` referenced a subpage never declared.
    UnknownSubpage {
        /// The missing subpage id.
        id: String,
    },
}

impl fmt::Display for AdaptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdaptError::InvalidTarget { target, message } => {
                write!(f, "invalid target `{target}`: {message}")
            }
            AdaptError::UnknownSubpage { id } => write!(f, "unknown subpage `{id}`"),
        }
    }
}

impl Error for AdaptError {}

/// A generated HTML artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedFile {
    /// File name (e.g. `login.html`).
    pub name: String,
    /// Contents.
    pub html: String,
}

/// A generated image artifact.
#[derive(Debug, Clone)]
pub struct GeneratedImage {
    /// File name (e.g. `snapshot.png`).
    pub name: String,
    /// Encoded bytes (PNG).
    pub bytes: Vec<u8>,
    /// Bytes this artifact occupies on the wire (JPEG-class artifacts
    /// model their size; see `msite-render::image`).
    pub wire_size: usize,
    /// Pixel width.
    pub width: u32,
    /// Pixel height.
    pub height: u32,
    /// Shared-cache TTL; `None` = per-user artifact.
    pub cache_ttl: Option<Duration>,
}

/// Counters from one pipeline run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Source filters applied.
    pub filters_applied: usize,
    /// Whether a DOM parse was needed at all.
    pub dom_parsed: bool,
    /// Rules whose target matched at least one node.
    pub rules_matched: usize,
    /// Total nodes affected by attributes.
    pub nodes_affected: usize,
    /// Images produced by pre-rendering.
    pub images_rendered: usize,
    /// Whether a browser instance was used.
    pub browser_used: bool,
}

/// Everything one adaptation run produces.
#[derive(Debug, Clone)]
pub struct AdaptedBundle {
    /// The entry page served to the mobile client.
    pub entry_html: String,
    /// Generated subpages.
    pub subpages: Vec<GeneratedFile>,
    /// Generated images (snapshot + pre-rendered objects).
    pub images: Vec<GeneratedImage>,
    /// AJAX actions the proxy must satisfy.
    pub ajax: AjaxRegistry,
    /// Search index when the `searchable` attribute was present.
    pub search: Option<SearchIndex>,
    /// Run statistics.
    pub stats: PipelineStats,
    /// True when a dock-cookies rule asked for a clear-cookies entry
    /// point (the logout-button replacement).
    pub wants_cookie_clear: bool,
}

/// Pipeline context: where artifacts will be served from.
#[derive(Debug, Clone)]
pub struct PipelineContext {
    /// URL prefix the proxy serves this page under, e.g. `/m/forum`.
    pub base: String,
    /// Browser configuration for renders.
    pub browser_config: BrowserConfig,
}

impl Default for PipelineContext {
    fn default() -> Self {
        PipelineContext {
            base: "/m/page".to_string(),
            browser_config: BrowserConfig::default(),
        }
    }
}

struct SubpageBuilder {
    id: String,
    title: String,
    ajax: bool,
    prerender: bool,
    head_html: String,
    top_html: String,
    body_html: String,
    bottom_html: String,
    scripts: Vec<String>,
    http_auth: bool,
}

/// Runs the full pipeline.
///
/// # Errors
///
/// Returns [`AdaptError`] for malformed targets or dangling subpage
/// references. Origin-level failures are the proxy's concern, not the
/// pipeline's.
pub fn adapt(
    spec: &AdaptationSpec,
    page_html: &str,
    ctx: &PipelineContext,
) -> Result<AdaptedBundle, AdaptError> {
    let mut stats = PipelineStats::default();

    // ---- Filter phase (source level, no DOM) -------------------------
    let filtered = apply_filters(page_html, &spec.filters, &mut stats);

    // Pure filter adaptation: no rules, no snapshot -> done, no parse.
    if spec.rules.is_empty() && spec.snapshot.is_none() {
        return Ok(AdaptedBundle {
            entry_html: filtered,
            subpages: Vec::new(),
            images: Vec::new(),
            ajax: AjaxRegistry::new(),
            search: None,
            stats,
            wants_cookie_clear: false,
        });
    }

    // ---- DOM phase ----------------------------------------------------
    stats.dom_parsed = true;
    let mut doc = tidy::tidy(&filtered);
    let mut bundle_images: Vec<GeneratedImage> = Vec::new();
    let mut registry = AjaxRegistry::new();
    let mut wants_cookie_clear = false;
    let mut searchable = false;

    // Subpage declarations first, so copy-to/move-to can validate.
    let mut subpages: BTreeMap<String, SubpageBuilder> = BTreeMap::new();
    for rule in &spec.rules {
        for attr in &rule.attributes {
            if let Attribute::Subpage {
                id,
                title,
                ajax,
                prerender,
            } = attr
            {
                subpages.entry(id.clone()).or_insert_with(|| SubpageBuilder {
                    id: id.clone(),
                    title: title.clone(),
                    ajax: *ajax,
                    prerender: *prerender,
                    head_html: String::new(),
                    top_html: String::new(),
                    body_html: String::new(),
                    bottom_html: String::new(),
                    scripts: Vec::new(),
                    http_auth: false,
                });
            }
        }
    }
    for rule in &spec.rules {
        for attr in &rule.attributes {
            let referenced = match attr {
                Attribute::CopyTo { subpage, .. } | Attribute::MoveTo { subpage, .. } => {
                    Some(subpage)
                }
                _ => None,
            };
            if let Some(id) = referenced {
                if !subpages.contains_key(id) {
                    return Err(AdaptError::UnknownSubpage { id: id.clone() });
                }
            }
        }
    }

    // Lazily launched browser, shared by snapshot + all prerenders.
    let mut browser: Option<Browser> = None;
    let mut obj_counter = 0usize;

    // Snapshot render happens against the *filtered original* page so the
    // user sees the familiar screen, with geometry captured per target.
    let snapshot_render = spec.snapshot.as_ref().map(|snap| {
        let b = browser.get_or_insert_with(|| {
            let mut config = ctx.browser_config.clone();
            config.viewport_width = snap.viewport_width;
            Browser::launch(config)
        });
        stats.browser_used = true;
        b.render_page(&filtered, &[])
    });

    // ---- Attribute phase ----------------------------------------------
    for rule in &spec.rules {
        let nodes = resolve_target(&doc, &rule.target)?;
        if let Target::Dock(dock) = &rule.target {
            apply_dock_rule(&mut doc, *dock, rule, &mut stats, &mut wants_cookie_clear);
            continue;
        }
        if nodes.is_empty() {
            continue;
        }
        stats.rules_matched += 1;
        for attr in &rule.attributes {
            match attr {
                Attribute::Subpage { id, title, .. } => {
                    let builder = subpages.get_mut(id).expect("declared above");
                    for &node in &nodes {
                        builder.body_html.push_str(&doc.outer_html(node));
                        let link = format!(
                            "<a class=\"msite-subpage-link\" href=\"{}/s/{}.html\">{}</a>",
                            ctx.base, id, title
                        );
                        replace_with_html(&mut doc, node, &link);
                        stats.nodes_affected += 1;
                    }
                }
                Attribute::CopyTo {
                    subpage,
                    position,
                    set_attr,
                } => {
                    let builder = subpages.get_mut(subpage).expect("validated above");
                    for &node in &nodes {
                        let copy = doc.clone_subtree(node);
                        if let Some((name, value)) = set_attr {
                            set_attr_deep(&mut doc, copy, name, value);
                        }
                        let html = doc.outer_html(copy);
                        match position {
                            Position::Head => builder.head_html.push_str(&html),
                            Position::Top => builder.top_html.push_str(&html),
                            Position::Bottom => builder.bottom_html.push_str(&html),
                        }
                        stats.nodes_affected += 1;
                    }
                }
                Attribute::MoveTo { subpage, position } => {
                    let builder = subpages.get_mut(subpage).expect("validated above");
                    for &node in &nodes {
                        let html = doc.outer_html(node);
                        match position {
                            Position::Head => builder.head_html.push_str(&html),
                            Position::Top => builder.top_html.push_str(&html),
                            Position::Bottom => builder.bottom_html.push_str(&html),
                        }
                        doc.detach(node);
                        stats.nodes_affected += 1;
                    }
                }
                Attribute::Remove => {
                    for &node in &nodes {
                        doc.detach(node);
                        stats.nodes_affected += 1;
                    }
                }
                Attribute::Hide => {
                    for &node in &nodes {
                        merge_style(&mut doc, node, "display", "none");
                        stats.nodes_affected += 1;
                    }
                }
                Attribute::ReplaceWith { html } => {
                    for &node in &nodes {
                        replace_with_html(&mut doc, node, html);
                        stats.nodes_affected += 1;
                    }
                }
                Attribute::InsertBefore { html } => {
                    for &node in &nodes {
                        insert_html(&mut doc, node, html, true);
                        stats.nodes_affected += 1;
                    }
                }
                Attribute::InsertAfter { html } => {
                    for &node in &nodes {
                        insert_html(&mut doc, node, html, false);
                        stats.nodes_affected += 1;
                    }
                }
                Attribute::SetAttr { name, value } => {
                    for &node in &nodes {
                        doc.set_attr(node, name, value);
                        stats.nodes_affected += 1;
                    }
                }
                Attribute::LinksToColumns { columns } => {
                    for &node in &nodes {
                        links_to_columns(&mut doc, node, *columns);
                        stats.nodes_affected += 1;
                    }
                }
                Attribute::InjectClientScript { code } => {
                    for &node in &nodes {
                        insert_html(&mut doc, node, &format!("<script>{code}</script>"), false);
                        stats.nodes_affected += 1;
                    }
                }
                Attribute::PrerenderImage {
                    scale,
                    quality,
                    cache_ttl_secs,
                } => {
                    let b = browser.get_or_insert_with(|| {
                        Browser::launch(ctx.browser_config.clone())
                    });
                    stats.browser_used = true;
                    for &node in &nodes {
                        obj_counter += 1;
                        let name = format!("obj{obj_counter}.png");
                        let object_html = standalone_object_page(&doc, node);
                        let rendered = b.render_page(&object_html, &[]);
                        let processed = process(
                            &rendered.canvas,
                            &PostProcess {
                                scale: Some(*scale),
                                format: ImageFormat::JpegClass { quality: *quality },
                                ..Default::default()
                            },
                        );
                        let img_tag = format!(
                            "<img class=\"msite-prerendered\" src=\"{}/img/{}\" width=\"{}\" height=\"{}\" alt=\"pre-rendered object\">",
                            ctx.base,
                            name,
                            processed.canvas.width(),
                            processed.canvas.height()
                        );
                        bundle_images.push(GeneratedImage {
                            name,
                            wire_size: processed.wire_bytes(),
                            width: processed.canvas.width(),
                            height: processed.canvas.height(),
                            bytes: processed.encoded,
                            cache_ttl: cache_ttl_secs.map(Duration::from_secs),
                        });
                        replace_with_html(&mut doc, node, &img_tag);
                        stats.nodes_affected += 1;
                        stats.images_rendered += 1;
                    }
                }
                Attribute::PartialCssPrerender { scale } => {
                    let b = browser.get_or_insert_with(|| {
                        Browser::launch(ctx.browser_config.clone())
                    });
                    stats.browser_used = true;
                    for &node in &nodes {
                        obj_counter += 1;
                        let name = format!("partial{obj_counter}.png");
                        let artifact =
                            partial_css_prerender(&doc, node, b, *scale, &ctx.base, &name);
                        bundle_images.push(artifact.image);
                        replace_with_html(&mut doc, node, &artifact.html);
                        stats.nodes_affected += 1;
                        stats.images_rendered += 1;
                    }
                }
                Attribute::Searchable => {
                    searchable = true;
                }
                Attribute::RichMediaThumbnail { scale } => {
                    let b = browser.get_or_insert_with(|| {
                        Browser::launch(ctx.browser_config.clone())
                    });
                    stats.browser_used = true;
                    for &node in &nodes {
                        let media: Vec<NodeId> = ["object", "embed", "video", "iframe", "applet"]
                            .iter()
                            .flat_map(|tag| doc.elements_by_tag(node, tag))
                            .collect();
                        for media_node in media {
                            obj_counter += 1;
                            let name = format!("media{obj_counter}.png");
                            let width: u32 = doc
                                .attr(media_node, "width")
                                .and_then(|w| w.parse().ok())
                                .unwrap_or(320);
                            let height: u32 = doc
                                .attr(media_node, "height")
                                .and_then(|h| h.parse().ok())
                                .unwrap_or(240);
                            let label = doc
                                .attr(media_node, "src")
                                .or_else(|| doc.attr(media_node, "data"))
                                .unwrap_or("rich media")
                                .to_string();
                            // Render a framed placeholder carrying the
                            // media label — what a constrained device
                            // shows instead of the plugin.
                            let page = format!(
                                "<!DOCTYPE html><html><body style=\"margin:0\">\
                                 <div style=\"width:{width}px;height:{height}px;\
                                 background:#202028;color:#ffffff;border:2px solid #667\">\
                                 <p style=\"color:#ffffff\">&#9654; {label}</p></div></body></html>"
                            );
                            let rendered = b.render_page(&page, &[]);
                            let processed = process(
                                &rendered.canvas,
                                &PostProcess {
                                    // The canvas spans the viewport; cut
                                    // out the media box before scaling.
                                    crop: Some(Rect::new(
                                        0.0,
                                        0.0,
                                        width as f32,
                                        height as f32,
                                    )),
                                    scale: Some(*scale),
                                    format: ImageFormat::JpegClass { quality: 50 },
                                },
                            );
                            let img_tag = format!(
                                "<img class=\"msite-media-thumb\" src=\"{}/img/{}\" \
                                 width=\"{}\" height=\"{}\" alt=\"{}\">",
                                ctx.base,
                                name,
                                processed.canvas.width(),
                                processed.canvas.height(),
                                msite_html::entities::encode_attr(&label)
                            );
                            bundle_images.push(GeneratedImage {
                                name,
                                wire_size: processed.wire_bytes(),
                                width: processed.canvas.width(),
                                height: processed.canvas.height(),
                                bytes: processed.encoded,
                                cache_ttl: Some(Duration::from_secs(3_600)),
                            });
                            replace_with_html(&mut doc, media_node, &img_tag);
                            stats.nodes_affected += 1;
                            stats.images_rendered += 1;
                        }
                    }
                }
                Attribute::ImageFidelity { quality } => {
                    for &node in &nodes {
                        for img in doc.elements_by_tag(node, "img") {
                            if let Some(src) = doc.attr(img, "src").map(str::to_string) {
                                let sep = if src.contains('?') { '&' } else { '?' };
                                doc.set_attr(img, "src", &format!("{src}{sep}msite_q={quality}"));
                                stats.nodes_affected += 1;
                            }
                        }
                    }
                }
                Attribute::AjaxRewrite => {
                    for &node in &nodes {
                        let rewrite_stats = ajax::rewrite_handlers(
                            &mut doc,
                            node,
                            &mut registry,
                            &format!("{}/proxy", ctx.base),
                        );
                        stats.nodes_affected += rewrite_stats.handlers_rewritten;
                    }
                }
                Attribute::LinksToAjax { target } => {
                    for &node in &nodes {
                        let rewrite_stats = ajax::linkify_to_ajax(
                            &mut doc,
                            node,
                            &mut registry,
                            &format!("{}/proxy", ctx.base),
                            target,
                        );
                        stats.nodes_affected += rewrite_stats.handlers_rewritten;
                    }
                }
                Attribute::Dependency { selector } => {
                    // Copy matching objects into every subpage this rule
                    // declares.
                    let dep_nodes = resolve_target(&doc, &Target::Css(selector.clone()))?;
                    let subpage_ids: Vec<String> = rule
                        .attributes
                        .iter()
                        .filter_map(|a| match a {
                            Attribute::Subpage { id, .. } => Some(id.clone()),
                            _ => None,
                        })
                        .collect();
                    for id in subpage_ids {
                        let builder = subpages.get_mut(&id).expect("declared above");
                        for &dep in &dep_nodes {
                            builder.head_html.push_str(&doc.outer_html(dep));
                        }
                    }
                }
                Attribute::HttpAuth => {
                    let subpage_ids: Vec<String> = rule
                        .attributes
                        .iter()
                        .filter_map(|a| match a {
                            Attribute::Subpage { id, .. } => Some(id.clone()),
                            _ => None,
                        })
                        .collect();
                    for id in subpage_ids {
                        subpages.get_mut(&id).expect("declared above").http_auth = true;
                    }
                }
            }
        }
    }

    // ---- Emission phase -------------------------------------------------
    let mut subpage_files = Vec::new();
    for builder in subpages.values() {
        let html = assemble_subpage(builder, ctx);
        if builder.prerender {
            let b = browser.get_or_insert_with(|| Browser::launch(ctx.browser_config.clone()));
            stats.browser_used = true;
            let rendered = b.render_page(&html, &[]);
            let processed = process(
                &rendered.canvas,
                &PostProcess {
                    format: ImageFormat::JpegClass { quality: 50 },
                    ..Default::default()
                },
            );
            let img_name = format!("sub_{}.png", builder.id);
            let page = format!(
                "<!DOCTYPE html><html><head><title>{}</title></head><body style=\"margin:0\">\
                 <img src=\"{}/img/{}\" width=\"{}\" height=\"{}\" alt=\"{}\"></body></html>",
                builder.title,
                ctx.base,
                img_name,
                processed.canvas.width(),
                processed.canvas.height(),
                builder.title
            );
            bundle_images.push(GeneratedImage {
                name: img_name,
                wire_size: processed.wire_bytes(),
                width: processed.canvas.width(),
                height: processed.canvas.height(),
                bytes: processed.encoded,
                cache_ttl: None,
            });
            stats.images_rendered += 1;
            subpage_files.push(GeneratedFile {
                name: format!("{}.html", builder.id),
                html: page,
            });
        } else {
            subpage_files.push(GeneratedFile {
                name: format!("{}.html", builder.id),
                html,
            });
        }
    }

    // ---- Entry page -------------------------------------------------------
    let mut search_index = None;
    let entry_html = if let (Some(snap), Some(render)) = (&spec.snapshot, &snapshot_render) {
        let processed = process(
            &render.canvas,
            &PostProcess {
                scale: Some(snap.scale),
                format: ImageFormat::JpegClass {
                    quality: snap.quality,
                },
                ..Default::default()
            },
        );
        if searchable {
            search_index = Some(SearchIndex::build(&render.layout, snap.scale));
        }
        let entry = crate::snapshot::build_entry_page(&crate::snapshot::EntryPageInput {
            base: ctx.base.clone(),
            title: page_title(&doc).unwrap_or_else(|| spec.page_id.clone()),
            snapshot_name: "snapshot.png".to_string(),
            snapshot_width: processed.canvas.width(),
            snapshot_height: processed.canvas.height(),
            scale: snap.scale,
            areas: subpage_areas(&subpages, render, snap.scale, &ctx.base),
            has_ajax: !registry.actions.is_empty() || subpages.values().any(|s| s.ajax),
            search_js: search_index.as_ref().map(|s| s.to_javascript()),
        });
        bundle_images.push(GeneratedImage {
            name: "snapshot.png".to_string(),
            wire_size: processed.wire_bytes(),
            width: processed.canvas.width(),
            height: processed.canvas.height(),
            bytes: processed.encoded,
            cache_ttl: Some(Duration::from_secs(snap.cache_ttl_secs)),
        });
        stats.images_rendered += 1;
        entry
    } else {
        // Non-snapshot mode: the adapted document itself, with the AJAX
        // helper injected when needed.
        if !registry.actions.is_empty() {
            inject_into_head(
                &mut doc,
                &format!("<script>{}</script>", ajax::client_helper_script()),
            );
        }
        doc.to_html()
    };

    Ok(AdaptedBundle {
        entry_html,
        subpages: subpage_files,
        images: bundle_images,
        ajax: registry,
        search: search_index,
        stats,
        wants_cookie_clear,
    })
}

// -----------------------------------------------------------------------
// Helpers
// -----------------------------------------------------------------------

fn apply_filters(html: &str, filters: &[SourceFilter], stats: &mut PipelineStats) -> String {
    let mut out = html.to_string();
    for filter in filters {
        stats.filters_applied += 1;
        out = match filter {
            SourceFilter::Replace { find, replace } => out.replace(find.as_str(), replace),
            SourceFilter::SetDoctype { doctype } => set_doctype(&out, doctype),
            SourceFilter::SetTitle { title } => set_title(&out, title),
            SourceFilter::StripTag { tag } => strip_tag(&out, tag),
            SourceFilter::RewriteImagePrefix { from, to } => {
                out.replace(&format!("src=\"{from}"), &format!("src=\"{to}"))
            }
        };
    }
    out
}

fn set_doctype(html: &str, doctype: &str) -> String {
    let lower = html.to_ascii_lowercase();
    if let Some(start) = lower.find("<!doctype") {
        if let Some(end) = html[start..].find('>') {
            let mut out = String::with_capacity(html.len());
            out.push_str(&html[..start]);
            out.push_str(doctype);
            out.push_str(&html[start + end + 1..]);
            return out;
        }
    }
    format!("{doctype}\n{html}")
}

fn set_title(html: &str, title: &str) -> String {
    let lower = html.to_ascii_lowercase();
    if let (Some(open), Some(close)) = (lower.find("<title>"), lower.find("</title>")) {
        if close > open {
            let mut out = String::with_capacity(html.len());
            out.push_str(&html[..open + 7]);
            out.push_str(&msite_html::entities::encode_text(title));
            out.push_str(&html[close..]);
            return out;
        }
    }
    html.to_string()
}

/// Removes every `<tag ...>...</tag>` span (and bare `<tag ...>` when
/// unclosed) at source level.
fn strip_tag(html: &str, tag: &str) -> String {
    let lower = html.to_ascii_lowercase();
    let open_pat = format!("<{}", tag.to_ascii_lowercase());
    let close_pat = format!("</{}>", tag.to_ascii_lowercase());
    let mut out = String::with_capacity(html.len());
    let mut pos = 0;
    while let Some(rel) = lower[pos..].find(&open_pat) {
        let start = pos + rel;
        // Guard against matching a prefix (e.g. `<s` matching `<script>`).
        let after = lower.as_bytes().get(start + open_pat.len());
        let boundary = matches!(after, Some(b'>') | Some(b' ') | Some(b'\t') | Some(b'\n') | Some(b'\r') | Some(b'/'));
        if !boundary {
            out.push_str(&html[pos..start + open_pat.len()]);
            pos = start + open_pat.len();
            continue;
        }
        out.push_str(&html[pos..start]);
        match lower[start..].find(&close_pat) {
            Some(rel_close) => pos = start + rel_close + close_pat.len(),
            None => match lower[start..].find('>') {
                Some(rel_gt) => pos = start + rel_gt + 1,
                None => {
                    pos = html.len();
                }
            },
        }
    }
    out.push_str(&html[pos..]);
    out
}

fn resolve_target(doc: &Document, target: &Target) -> Result<Vec<NodeId>, AdaptError> {
    match target {
        Target::Css(selector) => {
            let list = SelectorList::parse(selector).map_err(|e| AdaptError::InvalidTarget {
                target: selector.clone(),
                message: e.to_string(),
            })?;
            Ok(list.select(doc, doc.root()))
        }
        Target::XPath(expr) => {
            let path = XPath::parse(expr).map_err(|e| AdaptError::InvalidTarget {
                target: expr.clone(),
                message: e.to_string(),
            })?;
            Ok(path.evaluate(doc, doc.root()))
        }
        Target::Dock(_) => Ok(Vec::new()),
    }
}

fn apply_dock_rule(
    doc: &mut Document,
    dock: DockObject,
    rule: &Rule,
    stats: &mut PipelineStats,
    wants_cookie_clear: &mut bool,
) {
    stats.rules_matched += 1;
    for attr in &rule.attributes {
        match (dock, attr) {
            (DockObject::Title, Attribute::SetAttr { value, .. }) => {
                let titles = doc.elements_by_tag(doc.root(), "title");
                match titles.first() {
                    Some(&title) => doc.set_text_content(title, value),
                    None => {
                        if let Some(&head) =
                            doc.elements_by_tag(doc.root(), "head").first()
                        {
                            let t = doc.create_element("title");
                            doc.set_text_content(t, value);
                            doc.append_child(head, t);
                        }
                    }
                }
                stats.nodes_affected += 1;
            }
            (DockObject::Scripts, Attribute::Remove) => {
                for script in doc.elements_by_tag(doc.root(), "script") {
                    doc.detach(script);
                    stats.nodes_affected += 1;
                }
            }
            (DockObject::Stylesheets, Attribute::Remove) => {
                for style in doc.elements_by_tag(doc.root(), "style") {
                    doc.detach(style);
                    stats.nodes_affected += 1;
                }
                for link in doc.elements_by_tag(doc.root(), "link") {
                    let is_css = doc
                        .attr(link, "rel")
                        .map(|r| r.eq_ignore_ascii_case("stylesheet"))
                        .unwrap_or(false);
                    if is_css {
                        doc.detach(link);
                        stats.nodes_affected += 1;
                    }
                }
            }
            (DockObject::Cookies, Attribute::Remove) => {
                *wants_cookie_clear = true;
            }
            (DockObject::Head, Attribute::InjectClientScript { code }) => {
                inject_into_head(doc, &format!("<script>{code}</script>"));
                stats.nodes_affected += 1;
            }
            _ => {} // unsupported dock/attribute combination: no-op
        }
    }
}

fn replace_with_html(doc: &mut Document, node: NodeId, html: &str) {
    if let Some(parent) = doc.node(node).parent() {
        let added = parse_fragment_into(doc, parent, html);
        let mut reference = node;
        for new in added {
            doc.detach(new);
            doc.insert_after(new, reference);
            reference = new;
        }
    }
    doc.detach(node);
}

fn insert_html(doc: &mut Document, node: NodeId, html: &str, before: bool) {
    if let Some(parent) = doc.node(node).parent() {
        let added = parse_fragment_into(doc, parent, html);
        let mut reference = node;
        for new in added {
            doc.detach(new);
            if before {
                doc.insert_before(new, node);
            } else {
                doc.insert_after(new, reference);
                reference = new;
            }
        }
    }
}

fn inject_into_head(doc: &mut Document, html: &str) {
    let head = doc.elements_by_tag(doc.root(), "head").first().copied();
    if let Some(head) = head {
        parse_fragment_into(doc, head, html);
    }
}

fn set_attr_deep(doc: &mut Document, root: NodeId, name: &str, value: &str) {
    // Set on the root if it is an element carrying the attribute or any
    // element; also on the first descendant that already has it (the
    // logo-copy use case: swap the img's src inside the copied table).
    doc.set_attr(root, name, value);
    let carriers: Vec<NodeId> = doc
        .descendants(root)
        .filter(|&d| doc.attr(d, name).is_some())
        .collect();
    for c in carriers {
        doc.set_attr(c, name, value);
    }
}

fn merge_style(doc: &mut Document, node: NodeId, property: &str, value: &str) {
    let existing = doc.attr(node, "style").unwrap_or("").trim().to_string();
    let mut style = existing
        .split(';')
        .filter(|d| {
            d.split(':')
                .next()
                .map(|k| !k.trim().eq_ignore_ascii_case(property))
                .unwrap_or(false)
        })
        .collect::<Vec<_>>()
        .join(";");
    if !style.is_empty() && !style.ends_with(';') {
        style.push(';');
    }
    style.push_str(&format!("{property}:{value}"));
    doc.set_attr(node, "style", &style);
}

/// Rewrites a region's links as a vertical multi-column table — the
/// paper's fix for the horizontally scrolling nav row.
fn links_to_columns(doc: &mut Document, node: NodeId, columns: u32) {
    let columns = columns.max(1) as usize;
    let links = doc.elements_by_tag(node, "a");
    if links.is_empty() {
        return;
    }
    let mut cells: Vec<String> = Vec::with_capacity(links.len());
    for link in &links {
        cells.push(doc.outer_html(*link));
    }
    let rows = cells.len().div_ceil(columns);
    let mut html = String::from("<table class=\"msite-columns\">");
    for r in 0..rows {
        html.push_str("<tr>");
        for c in 0..columns {
            // Column-major fill: reading order goes down then across.
            match cells.get(c * rows + r) {
                Some(cell) => {
                    html.push_str("<td>");
                    html.push_str(cell);
                    html.push_str("</td>");
                }
                None => html.push_str("<td></td>"),
            }
        }
        html.push_str("</tr>");
    }
    html.push_str("</table>");
    // Replace the node's children with the rebuilt table.
    let children: Vec<NodeId> = doc.children(node).collect();
    for child in children {
        doc.detach(child);
    }
    parse_fragment_into(doc, node, &html);
}

/// Wraps one object (plus the document's stylesheets) as a standalone
/// page for object-level pre-rendering.
fn standalone_object_page(doc: &Document, node: NodeId) -> String {
    let mut styles = String::new();
    for style in doc.elements_by_tag(doc.root(), "style") {
        styles.push_str(&doc.outer_html(style));
    }
    format!(
        "<!DOCTYPE html><html><head>{}</head><body style=\"margin:0\">{}</body></html>",
        styles,
        doc.outer_html(node)
    )
}

struct PartialArtifact {
    image: GeneratedImage,
    html: String,
}

/// Partial CSS pre-rendering (§3.3): render the object with its text
/// replaced by stretched placeholders, ship the raster as a background,
/// and emit absolutely positioned client-side text at the recorded
/// coordinates.
fn partial_css_prerender(
    doc: &Document,
    node: NodeId,
    browser: &Browser,
    scale: f32,
    base: &str,
    image_name: &str,
) -> PartialArtifact {
    // Build a blanked copy: text nodes replaced by 1px-high placeholders
    // that preserve width (here: non-breaking figure space runs).
    let mut scratch = Document::new();
    let root = scratch.root();
    let copy = scratch.import_subtree(doc, node);
    scratch.append_child(root, copy);
    let text_nodes: Vec<NodeId> = scratch
        .descendants(root)
        .filter(|&n| scratch.data(n).as_text().is_some())
        .collect();
    let mut original_texts = Vec::new();
    for t in text_nodes {
        if let Some(text) = scratch.data(t).as_text() {
            if !text.trim().is_empty() {
                original_texts.push(text.to_string());
                let blank: String = text
                    .chars()
                    .map(|c| if c.is_whitespace() { c } else { '\u{2007}' })
                    .collect();
                if let msite_html::NodeData::Text(slot) = scratch.data_mut(t) {
                    *slot = blank;
                }
            }
        }
    }
    let blanked_html = standalone_object_page(&scratch, copy);
    let rendered = browser.render_page(&blanked_html, &[]);
    let processed = process(
        &rendered.canvas,
        &PostProcess {
            scale: Some(scale),
            format: ImageFormat::Png,
            ..Default::default()
        },
    );

    // Text positions come from rendering the *original* object.
    let original_html = standalone_object_page(doc, node);
    let with_text = browser.render_page(&original_html, &[]);
    let mut spans = String::new();
    for (word, rect) in with_text.layout.word_positions() {
        let r = rect.scaled(scale);
        spans.push_str(&format!(
            "<span style=\"position:absolute;left:{}px;top:{}px;font-size:{}px\">{}</span>",
            r.x.round(),
            r.y.round(),
            (r.h.round() as i64).max(6),
            msite_html::entities::encode_text(&word)
        ));
    }
    let html = format!(
        "<div class=\"msite-partial\" style=\"position:relative;width:{}px;height:{}px;\
         background-image:url('{}/img/{}')\">{}</div>",
        processed.canvas.width(),
        processed.canvas.height(),
        base,
        image_name,
        spans
    );
    PartialArtifact {
        image: GeneratedImage {
            name: image_name.to_string(),
            wire_size: processed.wire_bytes(),
            width: processed.canvas.width(),
            height: processed.canvas.height(),
            bytes: processed.encoded,
            cache_ttl: None,
        },
        html,
    }
}

fn assemble_subpage(builder: &SubpageBuilder, ctx: &PipelineContext) -> String {
    let mut html = String::from("<!DOCTYPE html>\n<html><head>");
    html.push_str(&format!(
        "<title>{}</title><meta name=\"viewport\" content=\"width=device-width\">",
        msite_html::entities::encode_text(&builder.title)
    ));
    html.push_str(&builder.head_html);
    html.push_str("</head><body>");
    html.push_str(&builder.top_html);
    html.push_str(&builder.body_html);
    html.push_str(&builder.bottom_html);
    html.push_str(&format!(
        "<div class=\"msite-breadcrumb\"><a href=\"{}/\">&laquo; back to overview</a></div>",
        ctx.base
    ));
    for script in &builder.scripts {
        html.push_str(&format!("<script>{script}</script>"));
    }
    html.push_str("</body></html>");
    html
}

fn page_title(doc: &Document) -> Option<String> {
    doc.elements_by_tag(doc.root(), "title")
        .first()
        .map(|&t| doc.text_content(t))
        .filter(|t| !t.trim().is_empty())
}

/// Computes the clickable image-map areas for every subpage target by
/// finding the same selector in the snapshot render and translating its
/// coordinates by the snapshot scale.
fn subpage_areas(
    subpages: &BTreeMap<String, SubpageBuilder>,
    render: &msite_render::RenderResult,
    scale: f32,
    base: &str,
) -> Vec<crate::snapshot::MapArea> {
    let mut areas = Vec::new();
    // Geometry is recovered per subpage body: the subpage body html was
    // captured before removal; match by the subpage link class is not
    // possible in the snapshot (it shows the original page), so the
    // *source* rects were resolved by the caller storing them during the
    // attribute phase. Simpler and robust: look the subpage's first id
    // attribute up in the render.
    for builder in subpages.values() {
        let rect = first_id_in_html(&builder.body_html)
            .and_then(|id| render.doc.element_by_id(&id))
            .and_then(|node| render.layout.rect_of(node));
        if let Some(rect) = rect {
            let r = rect.scaled(scale);
            areas.push(crate::snapshot::MapArea {
                rect: r,
                href: format!("{base}/s/{}.html", builder.id),
                title: builder.title.clone(),
                ajax: builder.ajax,
            });
        } else {
            // No geometry: still expose the subpage via the fallback menu
            // (rect of zero size is skipped in the <map> but kept in the
            // menu list).
            areas.push(crate::snapshot::MapArea {
                rect: Rect::new(0.0, 0.0, 0.0, 0.0),
                href: format!("{base}/s/{}.html", builder.id),
                title: builder.title.clone(),
                ajax: builder.ajax,
            });
        }
    }
    areas
}

/// Extracts the first `id="..."` attribute value from an HTML fragment.
fn first_id_in_html(html: &str) -> Option<String> {
    let at = html.find("id=\"")?;
    let rest = &html[at + 4..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::SnapshotSpec;

    fn ctx() -> PipelineContext {
        PipelineContext {
            base: "/m/test".to_string(),
            browser_config: BrowserConfig::default(),
        }
    }

    fn spec_no_snapshot(page: &str) -> AdaptationSpec {
        let mut s = AdaptationSpec::new("test", page);
        s.snapshot = None;
        s
    }

    const PAGE: &str = r##"<!DOCTYPE html><html><head><title>Site</title>
<style>.x { color: red }</style></head><body>
<div id="header"><img id="logo" src="/images/logo.gif" width="100" height="40"></div>
<div id="nav"><a href="/a">Alpha</a> <a href="/b">Beta</a> <a href="/c">Gamma</a> <a href="/d">Delta</a></div>
<form id="login"><input type="text" name="u"></form>
<div id="content"><p>Hello world content</p>
<a href="#" onclick="$('#pane').load('site.php?do=showpic&amp;id=3')">pic</a></div>
<div id="pane"></div>
</body></html>"##;

    #[test]
    fn filter_only_spec_skips_dom_parse() {
        let spec = spec_no_snapshot("http://h/")
            .filter(SourceFilter::SetTitle { title: "Mobile".into() })
            .filter(SourceFilter::Replace { find: "Hello".into(), replace: "Hi".into() });
        let bundle = adapt(&spec, PAGE, &ctx()).unwrap();
        assert!(!bundle.stats.dom_parsed);
        assert!(!bundle.stats.browser_used);
        assert!(bundle.entry_html.contains("<title>Mobile</title>"));
        assert!(bundle.entry_html.contains("Hi world content"));
        assert_eq!(bundle.stats.filters_applied, 2);
    }

    #[test]
    fn strip_tag_filter() {
        let spec = spec_no_snapshot("http://h/").filter(SourceFilter::StripTag { tag: "style".into() });
        let bundle = adapt(&spec, PAGE, &ctx()).unwrap();
        assert!(!bundle.entry_html.contains("color: red"));
        // `<strong>` must not be eaten by `<s` prefix matching.
        let spec2 = spec_no_snapshot("http://h/").filter(SourceFilter::StripTag { tag: "s".into() });
        let bundle2 = adapt(&spec2, "<p><strong>keep</strong><s>gone</s></p>", &ctx()).unwrap();
        assert!(bundle2.entry_html.contains("keep"));
        assert!(!bundle2.entry_html.contains("gone"));
    }

    #[test]
    fn doctype_filter_replaces_or_prepends() {
        let spec = spec_no_snapshot("http://h/")
            .filter(SourceFilter::SetDoctype { doctype: "<!DOCTYPE html>".into() });
        let bundle = adapt(&spec, PAGE, &ctx()).unwrap();
        assert!(bundle.entry_html.starts_with("<!DOCTYPE html>"));
        let bundle2 = adapt(&spec, "<p>no doctype</p>", &ctx()).unwrap();
        assert!(bundle2.entry_html.starts_with("<!DOCTYPE html>"));
    }

    #[test]
    fn remove_and_hide() {
        let spec = spec_no_snapshot("http://h/")
            .rule(Target::Css("#header".into()), vec![Attribute::Remove])
            .rule(Target::Css("#nav".into()), vec![Attribute::Hide]);
        let bundle = adapt(&spec, PAGE, &ctx()).unwrap();
        assert!(!bundle.entry_html.contains("id=\"header\""));
        assert!(bundle.entry_html.contains("display:none"));
        assert_eq!(bundle.stats.rules_matched, 2);
    }

    #[test]
    fn replace_and_inserts() {
        let spec = spec_no_snapshot("http://h/")
            .rule(
                Target::Css("#header".into()),
                vec![Attribute::ReplaceWith { html: "<p id=\"mobile-header\">M</p>".into() }],
            )
            .rule(
                Target::Css("#content".into()),
                vec![
                    Attribute::InsertBefore { html: "<hr class=\"before\">".into() },
                    Attribute::InsertAfter { html: "<div class=\"ad\">mobile ad</div>".into() },
                ],
            );
        let bundle = adapt(&spec, PAGE, &ctx()).unwrap();
        assert!(bundle.entry_html.contains("mobile-header"));
        assert!(!bundle.entry_html.contains("logo.gif"));
        let before = bundle.entry_html.find("class=\"before\"").unwrap();
        let content = bundle.entry_html.find("id=\"content\"").unwrap();
        let ad = bundle.entry_html.find("class=\"ad\"").unwrap();
        assert!(before < content && content < ad);
    }

    #[test]
    fn subpage_split_replaces_with_link() {
        let spec = spec_no_snapshot("http://h/").rule(
            Target::Css("#login".into()),
            vec![Attribute::Subpage {
                id: "login".into(),
                title: "Log in".into(),
                ajax: false,
                prerender: false,
            }],
        );
        let bundle = adapt(&spec, PAGE, &ctx()).unwrap();
        assert_eq!(bundle.subpages.len(), 1);
        let sub = &bundle.subpages[0];
        assert_eq!(sub.name, "login.html");
        assert!(sub.html.contains("<form id=\"login\""));
        assert!(sub.html.contains("back to overview"));
        // Entry page now links instead of embedding the form.
        assert!(!bundle.entry_html.contains("<form"));
        assert!(bundle.entry_html.contains("/m/test/s/login.html"));
    }

    #[test]
    fn copy_to_with_attr_override_and_dependency() {
        let spec = spec_no_snapshot("http://h/")
            .rule(
                Target::Css("#login".into()),
                vec![
                    Attribute::Subpage {
                        id: "login".into(),
                        title: "Log in".into(),
                        ajax: false,
                        prerender: false,
                    },
                    Attribute::Dependency { selector: "head style".into() },
                ],
            )
            .rule(
                Target::Css("#header".into()),
                vec![Attribute::CopyTo {
                    subpage: "login".into(),
                    position: Position::Top,
                    set_attr: Some(("src".into(), "/images/mobile_logo.gif".into())),
                }],
            );
        let bundle = adapt(&spec, PAGE, &ctx()).unwrap();
        let sub = &bundle.subpages[0];
        // Dependency style present in head.
        assert!(sub.html.contains("color: red"));
        // Copied header with swapped src; original header still on entry.
        assert!(sub.html.contains("mobile_logo.gif"));
        assert!(bundle.entry_html.contains("/images/logo.gif"));
    }

    #[test]
    fn move_to_detaches_from_entry() {
        let spec = spec_no_snapshot("http://h/")
            .rule(
                Target::Css("#content".into()),
                vec![Attribute::Subpage {
                    id: "main".into(),
                    title: "Content".into(),
                    ajax: false,
                    prerender: false,
                }],
            )
            .rule(
                Target::Css("#nav".into()),
                vec![Attribute::MoveTo {
                    subpage: "main".into(),
                    position: Position::Bottom,
                }],
            );
        let bundle = adapt(&spec, PAGE, &ctx()).unwrap();
        assert!(!bundle.entry_html.contains("Alpha"));
        assert!(bundle.subpages[0].html.contains("Alpha"));
    }

    #[test]
    fn unknown_subpage_reference_errors() {
        let spec = spec_no_snapshot("http://h/").rule(
            Target::Css("#nav".into()),
            vec![Attribute::MoveTo {
                subpage: "ghost".into(),
                position: Position::Bottom,
            }],
        );
        let err = adapt(&spec, PAGE, &ctx()).unwrap_err();
        assert_eq!(err, AdaptError::UnknownSubpage { id: "ghost".into() });
    }

    #[test]
    fn invalid_selector_errors() {
        let spec = spec_no_snapshot("http://h/").rule(Target::Css("..bad".into()), vec![Attribute::Remove]);
        assert!(matches!(
            adapt(&spec, PAGE, &ctx()),
            Err(AdaptError::InvalidTarget { .. })
        ));
    }

    #[test]
    fn xpath_targets_work() {
        let spec = spec_no_snapshot("http://h/").rule(
            Target::XPath("//div[@id='header']".into()),
            vec![Attribute::Remove],
        );
        let bundle = adapt(&spec, PAGE, &ctx()).unwrap();
        assert!(!bundle.entry_html.contains("id=\"header\""));
    }

    #[test]
    fn links_to_columns_rebuilds_nav() {
        let spec = spec_no_snapshot("http://h/").rule(
            Target::Css("#nav".into()),
            vec![Attribute::LinksToColumns { columns: 2 }],
        );
        let bundle = adapt(&spec, PAGE, &ctx()).unwrap();
        assert!(bundle.entry_html.contains("msite-columns"));
        // 4 links in 2 columns -> 2 rows.
        assert_eq!(bundle.entry_html.matches("<tr>").count(), 2);
        assert!(bundle.entry_html.contains("Alpha"));
        assert!(bundle.entry_html.contains("Delta"));
    }

    #[test]
    fn ajax_rewrite_registers_action_and_injects_helper() {
        let spec = spec_no_snapshot("http://h/").rule(
            Target::Css("#content".into()),
            vec![Attribute::AjaxRewrite],
        );
        let bundle = adapt(&spec, PAGE, &ctx()).unwrap();
        assert_eq!(bundle.ajax.actions.len(), 1);
        assert_eq!(
            bundle.ajax.actions[0].origin_url_template,
            "site.php?do=showpic&id={p}"
        );
        assert!(bundle.entry_html.contains("msiteLoad('/m/test/proxy', 1, '3', '#pane')"));
        assert!(bundle.entry_html.contains("function msiteLoad"));
    }

    #[test]
    fn image_fidelity_rewrites_srcs() {
        let spec = spec_no_snapshot("http://h/").rule(
            Target::Css("#header".into()),
            vec![Attribute::ImageFidelity { quality: 35 }],
        );
        let bundle = adapt(&spec, PAGE, &ctx()).unwrap();
        assert!(bundle.entry_html.contains("/images/logo.gif?msite_q=35"));
    }

    #[test]
    fn dock_rules() {
        let spec = spec_no_snapshot("http://h/")
            .rule(
                Target::Dock(DockObject::Title),
                vec![Attribute::SetAttr { name: "text".into(), value: "m.Site".into() }],
            )
            .rule(Target::Dock(DockObject::Stylesheets), vec![Attribute::Remove])
            .rule(Target::Dock(DockObject::Cookies), vec![Attribute::Remove]);
        let bundle = adapt(&spec, PAGE, &ctx()).unwrap();
        assert!(bundle.entry_html.contains("<title>m.Site</title>"));
        assert!(!bundle.entry_html.contains("color: red"));
        assert!(bundle.wants_cookie_clear);
    }

    #[test]
    fn prerender_object_produces_image() {
        let spec = spec_no_snapshot("http://h/").rule(
            Target::Css("#nav".into()),
            vec![Attribute::PrerenderImage {
                scale: 1.0,
                quality: 50,
                cache_ttl_secs: Some(600),
            }],
        );
        let bundle = adapt(&spec, PAGE, &ctx()).unwrap();
        assert_eq!(bundle.images.len(), 1);
        let img = &bundle.images[0];
        assert!(img.bytes.starts_with(&[0x89, b'P', b'N', b'G']));
        assert_eq!(img.cache_ttl, Some(Duration::from_secs(600)));
        assert!(bundle.entry_html.contains(&format!("/m/test/img/{}", img.name)));
        assert!(bundle.stats.browser_used);
        assert!(!bundle.entry_html.contains(">Alpha<")); // nav replaced by image
    }

    #[test]
    fn snapshot_mode_builds_entry_with_map() {
        let mut spec = AdaptationSpec::new("test", "http://h/");
        spec.snapshot = Some(SnapshotSpec {
            scale: 0.5,
            quality: 40,
            cache_ttl_secs: 3600,
            viewport_width: 640,
        });
        spec.rules.push(Rule {
            target: Target::Css("#login".into()),
            attributes: vec![Attribute::Subpage {
                id: "login".into(),
                title: "Log in".into(),
                ajax: false,
                prerender: false,
            }],
        });
        let bundle = adapt(&spec, PAGE, &ctx()).unwrap();
        assert!(bundle.entry_html.contains("usemap=\"#msitemap\""));
        assert!(bundle.entry_html.contains("snapshot.png"));
        assert!(bundle.entry_html.contains("/m/test/s/login.html"));
        let snap = bundle.images.iter().find(|i| i.name == "snapshot.png").unwrap();
        assert_eq!(snap.cache_ttl, Some(Duration::from_secs(3600)));
        assert_eq!(snap.width, 320); // 640 * 0.5
        assert!(bundle.stats.browser_used);
    }

    #[test]
    fn searchable_snapshot_gets_index() {
        let mut spec = AdaptationSpec::new("test", "http://h/");
        spec.snapshot = Some(SnapshotSpec::default());
        spec.rules.push(Rule {
            target: Target::Css("body".into()),
            attributes: vec![Attribute::Searchable],
        });
        let bundle = adapt(&spec, PAGE, &ctx()).unwrap();
        let index = bundle.search.as_ref().unwrap();
        assert!(!index.is_empty());
        assert!(!index.find("hello").is_empty());
        assert!(bundle.entry_html.contains("msiteIndex"));
        assert!(bundle.entry_html.contains("function msiteSearch"));
    }

    #[test]
    fn prerendered_subpage_is_image_page() {
        let spec = spec_no_snapshot("http://h/").rule(
            Target::Css("#content".into()),
            vec![Attribute::Subpage {
                id: "content".into(),
                title: "Content".into(),
                ajax: false,
                prerender: true,
            }],
        );
        let bundle = adapt(&spec, PAGE, &ctx()).unwrap();
        let sub = &bundle.subpages[0];
        assert!(sub.html.contains("sub_content.png"));
        assert!(!sub.html.contains("Hello world"));
        assert!(bundle.images.iter().any(|i| i.name == "sub_content.png"));
    }

    #[test]
    fn partial_css_prerender_emits_background_plus_text() {
        let spec = spec_no_snapshot("http://h/").rule(
            Target::Css("#content".into()),
            vec![Attribute::PartialCssPrerender { scale: 1.0 }],
        );
        let bundle = adapt(&spec, PAGE, &ctx()).unwrap();
        assert_eq!(bundle.images.len(), 1);
        assert!(bundle.entry_html.contains("msite-partial"));
        assert!(bundle.entry_html.contains("position:absolute"));
        // Text is drawn by the client, so it is present as spans.
        assert!(bundle.entry_html.contains(">hello<") || bundle.entry_html.contains(">Hello<"));
    }

    #[test]
    fn rich_media_replaced_with_thumbnails() {
        let page = r#"<body><div id="media">
            <object data="movie.swf" width="400" height="300"></object>
            <embed src="clip.mov" width="200" height="150">
            <p>caption</p></div></body>"#;
        let spec = spec_no_snapshot("http://h/").rule(
            Target::Css("#media".into()),
            vec![Attribute::RichMediaThumbnail { scale: 0.5 }],
        );
        let bundle = adapt(&spec, page, &ctx()).unwrap();
        assert_eq!(bundle.images.len(), 2);
        assert!(!bundle.entry_html.contains("<object"));
        assert!(!bundle.entry_html.contains("<embed"));
        assert_eq!(bundle.entry_html.matches("msite-media-thumb").count(), 2);
        // Thumbnails scaled to half the declared media size.
        let first = &bundle.images[0];
        assert_eq!(first.width, 200);
        assert!(bundle.entry_html.contains("movie.swf"));
        assert!(bundle.entry_html.contains("caption"));
        assert!(bundle.stats.browser_used);
    }

    #[test]
    fn stats_track_work() {
        let spec = spec_no_snapshot("http://h/")
            .filter(SourceFilter::Replace { find: "x".into(), replace: "y".into() })
            .rule(Target::Css("#nav a".into()), vec![Attribute::SetAttr {
                name: "rel".into(),
                value: "nofollow".into(),
            }]);
        let bundle = adapt(&spec, PAGE, &ctx()).unwrap();
        assert_eq!(bundle.stats.filters_applied, 1);
        assert_eq!(bundle.stats.rules_matched, 1);
        assert_eq!(bundle.stats.nodes_affected, 4);
    }
}
