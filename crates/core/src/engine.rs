//! Pluggable rendering engines.
//!
//! One of the paper's listed contributions: "a pluggable content
//! adaptation system that can be extended with multiple rendering
//! engines to produce HTML, static images, PDF, plain text, or Flash
//! content at any point in the rendering process." This module defines
//! the [`RenderEngine`] plug-in interface and ships four engines:
//!
//! - [`HtmlEngine`] — tidied XHTML (the default pass-through);
//! - [`ImageEngine`] — PNG raster via the server-side browser;
//! - [`PlainTextEngine`] — visible text with link footnotes (the
//!   "text-based content adaptation" the paper contrasts against);
//! - [`PdfEngine`] — a single-page text PDF, written from scratch.
//!
//! Flash is the one output we do not emit — the format is dead and the
//! paper itself delegates Flash interactivity to plugin vendors.

use msite_html::{text::visible_text, tidy};
use msite_render::browser::{Browser, BrowserConfig};
use msite_render::png;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A rendered artifact produced by an engine.
#[derive(Debug, Clone)]
pub struct RenderedArtifact {
    /// MIME type of `bytes`.
    pub content_type: String,
    /// Artifact bytes.
    pub bytes: Vec<u8>,
}

impl RenderedArtifact {
    fn text(content_type: &str, body: String) -> RenderedArtifact {
        RenderedArtifact {
            content_type: content_type.to_string(),
            bytes: body.into_bytes(),
        }
    }
}

/// A rendering-engine failure: which engine failed and why. Engine
/// failures degrade to the next engine in the fallback chain instead of
/// erroring the request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenderError {
    /// Name of the engine that failed.
    pub engine: String,
    /// Failure description (for a panicking engine, the panic payload).
    pub message: String,
}

impl fmt::Display for RenderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "engine `{}` failed: {}", self.engine, self.message)
    }
}

impl std::error::Error for RenderError {}

/// A pluggable rendering engine: HTML in, artifact out.
///
/// Engines must be stateless per call (the proxy may invoke them from a
/// worker pool).
pub trait RenderEngine: Send + Sync {
    /// Engine name, used in the registry and in generated file names.
    fn name(&self) -> &str;

    /// Renders page HTML into an artifact. Infallible signature kept for
    /// simple engines; may panic on pathological input.
    fn render(&self, html: &str) -> RenderedArtifact;

    /// Fallible rendering: the entry point the proxy actually calls.
    /// The default implementation shields [`Self::render`] behind a
    /// panic guard, so a crashing engine surfaces as a [`RenderError`]
    /// (and triggers fallback) instead of poisoning the worker.
    fn try_render(&self, html: &str) -> Result<RenderedArtifact, RenderError> {
        catch_unwind(AssertUnwindSafe(|| self.render(html))).map_err(|panic| RenderError {
            engine: self.name().to_string(),
            message: panic_message(&*panic),
        })
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "engine panicked".to_string()
    }
}

/// Tidied XHTML output (the identity engine).
#[derive(Debug, Default)]
pub struct HtmlEngine;

impl RenderEngine for HtmlEngine {
    fn name(&self) -> &str {
        "html"
    }

    fn render(&self, html: &str) -> RenderedArtifact {
        RenderedArtifact::text("application/xhtml+xml", tidy::to_xhtml_string(html))
    }
}

/// PNG raster output via the server-side browser.
pub struct ImageEngine {
    config: BrowserConfig,
}

impl ImageEngine {
    /// Creates the engine with a browser configuration.
    pub fn new(config: BrowserConfig) -> ImageEngine {
        ImageEngine { config }
    }
}

impl Default for ImageEngine {
    fn default() -> Self {
        ImageEngine::new(BrowserConfig::default())
    }
}

impl RenderEngine for ImageEngine {
    fn name(&self) -> &str {
        "image"
    }

    fn render(&self, html: &str) -> RenderedArtifact {
        let browser = Browser::launch(self.config.clone());
        let result = browser.render_page(html, &[]);
        RenderedArtifact {
            content_type: "image/png".to_string(),
            bytes: png::encode(&result.canvas),
        }
    }
}

/// Plain-text output: visible text plus a numbered link index.
#[derive(Debug, Default)]
pub struct PlainTextEngine;

impl RenderEngine for PlainTextEngine {
    fn name(&self) -> &str {
        "text"
    }

    fn render(&self, html: &str) -> RenderedArtifact {
        let doc = tidy::tidy(html);
        let mut out = visible_text(&doc, doc.root());
        let links: Vec<(String, String)> = doc
            .elements_by_tag(doc.root(), "a")
            .into_iter()
            .filter_map(|a| {
                let href = doc.attr(a, "href")?.to_string();
                let label = visible_text(&doc, a);
                (!href.is_empty()).then_some((label, href))
            })
            .collect();
        if !links.is_empty() {
            out.push_str("\n\nLinks:\n");
            for (i, (label, href)) in links.iter().enumerate() {
                out.push_str(&format!("[{}] {} -> {}\n", i + 1, label, href));
            }
        }
        RenderedArtifact::text("text/plain; charset=utf-8", out)
    }
}

/// Single-page PDF output, written from scratch (PDF 1.4, Helvetica,
/// uncompressed content stream). Good enough for "read this page
/// offline" delivery to constrained devices.
#[derive(Debug)]
pub struct PdfEngine {
    /// Page width in PostScript points (595 = A4).
    pub page_width: f32,
    /// Page height in points (842 = A4).
    pub page_height: f32,
    /// Body font size in points.
    pub font_size: f32,
}

impl Default for PdfEngine {
    fn default() -> Self {
        PdfEngine {
            page_width: 595.0,
            page_height: 842.0,
            font_size: 10.0,
        }
    }
}

impl RenderEngine for PdfEngine {
    fn name(&self) -> &str {
        "pdf"
    }

    fn render(&self, html: &str) -> RenderedArtifact {
        let doc = tidy::tidy(html);
        let title = doc
            .elements_by_tag(doc.root(), "title")
            .first()
            .map(|&t| doc.text_content(t))
            .unwrap_or_default();
        let text = visible_text(&doc, doc.root());
        let lines = wrap_text(&text, self.chars_per_line());
        RenderedArtifact {
            content_type: "application/pdf".to_string(),
            bytes: self.write_pdf(&title, &lines),
        }
    }
}

impl PdfEngine {
    fn chars_per_line(&self) -> usize {
        // Helvetica averages ~0.5 em per character.
        let usable = self.page_width - 2.0 * MARGIN;
        (usable / (self.font_size * 0.5)).max(10.0) as usize
    }

    fn lines_per_page(&self) -> usize {
        let usable = self.page_height - 2.0 * MARGIN - 20.0;
        (usable / (self.font_size * 1.3)).max(5.0) as usize
    }

    /// Emits a complete PDF document with one or more pages of text.
    fn write_pdf(&self, title: &str, lines: &[String]) -> Vec<u8> {
        let pages: Vec<&[String]> = if lines.is_empty() {
            vec![&[]]
        } else {
            lines.chunks(self.lines_per_page()).collect()
        };
        let page_count = pages.len();

        // Object numbering: 1 catalog, 2 pages-tree, 3 font, then per
        // page: page object + content stream.
        let mut objects: Vec<Vec<u8>> = Vec::new();
        let kids: Vec<String> = (0..page_count)
            .map(|i| format!("{} 0 R", 4 + i * 2))
            .collect();
        objects.push(b"<< /Type /Catalog /Pages 2 0 R >>".to_vec());
        objects.push(
            format!(
                "<< /Type /Pages /Kids [{}] /Count {} >>",
                kids.join(" "),
                page_count
            )
            .into_bytes(),
        );
        objects.push(b"<< /Type /Font /Subtype /Type1 /BaseFont /Helvetica >>".to_vec());
        for (i, page_lines) in pages.iter().enumerate() {
            let content = self.page_stream(title, page_lines, i == 0);
            objects.push(
                format!(
                    "<< /Type /Page /Parent 2 0 R /MediaBox [0 0 {} {}] \
                     /Resources << /Font << /F1 3 0 R >> >> /Contents {} 0 R >>",
                    self.page_width,
                    self.page_height,
                    5 + i * 2
                )
                .into_bytes(),
            );
            let mut stream = format!("<< /Length {} >>\nstream\n", content.len()).into_bytes();
            stream.extend_from_slice(content.as_bytes());
            stream.extend_from_slice(b"\nendstream");
            objects.push(stream);
        }

        // Assemble with a cross-reference table.
        let mut out: Vec<u8> = b"%PDF-1.4\n".to_vec();
        let mut offsets = Vec::with_capacity(objects.len());
        for (i, body) in objects.iter().enumerate() {
            offsets.push(out.len());
            out.extend_from_slice(format!("{} 0 obj\n", i + 1).as_bytes());
            out.extend_from_slice(body);
            out.extend_from_slice(b"\nendobj\n");
        }
        let xref_at = out.len();
        out.extend_from_slice(format!("xref\n0 {}\n", objects.len() + 1).as_bytes());
        out.extend_from_slice(b"0000000000 65535 f \n");
        for offset in offsets {
            out.extend_from_slice(format!("{offset:010} 00000 n \n").as_bytes());
        }
        out.extend_from_slice(
            format!(
                "trailer\n<< /Size {} /Root 1 0 R >>\nstartxref\n{}\n%%EOF",
                objects.len() + 1,
                xref_at
            )
            .as_bytes(),
        );
        out
    }

    fn page_stream(&self, title: &str, lines: &[String], first_page: bool) -> String {
        let mut content = String::from("BT\n");
        let mut y = self.page_height - MARGIN;
        if first_page && !title.is_empty() {
            content.push_str(&format!(
                "/F1 {} Tf 1 0 0 1 {} {} Tm ({}) Tj\n",
                self.font_size * 1.4,
                MARGIN,
                y,
                escape_pdf_string(title)
            ));
            y -= self.font_size * 2.2;
        }
        for line in lines {
            content.push_str(&format!(
                "/F1 {} Tf 1 0 0 1 {} {} Tm ({}) Tj\n",
                self.font_size,
                MARGIN,
                y,
                escape_pdf_string(line)
            ));
            y -= self.font_size * 1.3;
        }
        content.push_str("ET");
        content
    }
}

const MARGIN: f32 = 50.0;

fn escape_pdf_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '(' => out.push_str("\\("),
            ')' => out.push_str("\\)"),
            '\\' => out.push_str("\\\\"),
            c if c.is_ascii() && !c.is_control() => out.push(c),
            _ => out.push('?'), // Helvetica/WinAnsi subset only
        }
    }
    out
}

/// Greedy word wrap to a column width.
fn wrap_text(text: &str, width: usize) -> Vec<String> {
    let mut lines = Vec::new();
    let mut current = String::new();
    for word in text.split_whitespace() {
        if !current.is_empty() && current.len() + 1 + word.len() > width {
            lines.push(std::mem::take(&mut current));
        }
        if !current.is_empty() {
            current.push(' ');
        }
        // Hard-break pathological words.
        if word.len() > width {
            for chunk in word.as_bytes().chunks(width) {
                lines.push(String::from_utf8_lossy(chunk).into_owned());
            }
            continue;
        }
        current.push_str(word);
    }
    if !current.is_empty() {
        lines.push(current);
    }
    lines
}

/// The engine registry the proxy consults ("can be extended with
/// multiple rendering engines").
#[derive(Default)]
pub struct EngineRegistry {
    engines: Vec<Box<dyn RenderEngine>>,
}

impl EngineRegistry {
    /// Creates a registry with the four built-in engines.
    pub fn with_builtins() -> EngineRegistry {
        let mut registry = EngineRegistry::default();
        registry.register(Box::new(HtmlEngine));
        registry.register(Box::new(ImageEngine::default()));
        registry.register(Box::new(PlainTextEngine));
        registry.register(Box::new(PdfEngine::default()));
        registry
    }

    /// Adds an engine (later registrations shadow earlier ones by name).
    pub fn register(&mut self, engine: Box<dyn RenderEngine>) {
        self.engines.retain(|e| e.name() != engine.name());
        self.engines.push(engine);
    }

    /// Looks an engine up by name.
    pub fn get(&self, name: &str) -> Option<&dyn RenderEngine> {
        self.engines
            .iter()
            .find(|e| e.name() == name)
            .map(|b| b.as_ref())
    }

    /// Registered engine names.
    pub fn names(&self) -> Vec<&str> {
        self.engines.iter().map(|e| e.name()).collect()
    }

    /// The degradation chain for `name`: the engine itself, then the
    /// registered fallbacks in fidelity order — image → html → plain
    /// text — skipping the requested engine and anything unregistered.
    /// (`image` never serves as a fallback: it is the most expensive and
    /// most fragile engine, so degradation only moves down-stack.)
    pub fn fallback_chain<'a>(&'a self, name: &'a str) -> Vec<&'a str> {
        if self.get(name).is_none() {
            return Vec::new();
        }
        let mut chain = vec![name];
        for fallback in FALLBACK_ORDER {
            if *fallback != name && self.get(fallback).is_some() {
                chain.push(*fallback);
            }
        }
        chain
    }

    /// Renders `html` with `name`, degrading down the fallback chain on
    /// engine failure.
    ///
    /// # Errors
    ///
    /// `Err(None)` when no engine called `name` exists; `Err(Some(...))`
    /// with the accumulated failures when every chain member failed.
    pub fn render_with_fallback(
        &self,
        name: &str,
        html: &str,
    ) -> Result<FallbackRender, Option<Vec<RenderError>>> {
        if self.get(name).is_none() {
            return Err(None);
        }
        let mut degraded = Vec::new();
        for engine_name in self.fallback_chain(name) {
            let engine = self
                .get(engine_name)
                .unwrap_or_else(|| unreachable!("chain members are registered"));
            match engine.try_render(html) {
                Ok(artifact) => {
                    return Ok(FallbackRender {
                        artifact,
                        engine: engine_name.to_string(),
                        degraded,
                    })
                }
                Err(error) => degraded.push(error),
            }
        }
        Err(Some(degraded))
    }
}

/// Degradation order after the requested engine (§ fallback chain).
const FALLBACK_ORDER: &[&str] = &["html", "text"];

/// A successful render, possibly produced by a fallback engine.
#[derive(Debug, Clone)]
pub struct FallbackRender {
    /// The artifact served.
    pub artifact: RenderedArtifact,
    /// The engine that actually produced it.
    pub engine: String,
    /// Failures from higher-fidelity engines tried first (empty when the
    /// requested engine succeeded).
    pub degraded: Vec<RenderError>,
}

impl FallbackRender {
    /// Packs the render into its shared-cache wire form.
    pub fn to_cached(&self) -> CachedRender {
        CachedRender {
            engine: self.engine.clone(),
            content_type: self.artifact.content_type.clone(),
            degraded: !self.degraded.is_empty(),
            bytes: self.artifact.bytes.clone(),
        }
    }
}

/// A rendered artifact in its shared-cache wire form: the payload plus
/// the metadata a response needs (producing engine, content type,
/// whether the render was degraded down the fallback chain). The render
/// cache stores opaque bytes, so artifacts cross it through
/// [`CachedRender::encode`]/[`CachedRender::decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedRender {
    /// Name of the engine that produced the artifact.
    pub engine: String,
    /// MIME type of `bytes`.
    pub content_type: String,
    /// True when a fallback engine produced the artifact.
    pub degraded: bool,
    /// Artifact bytes.
    pub bytes: Vec<u8>,
}

impl CachedRender {
    /// Serializes to the cache's byte format:
    /// `[degraded u8][engine_len u8][engine][ct_len u16 BE][ct][payload]`.
    pub fn encode(&self) -> Vec<u8> {
        let engine = self.engine.as_bytes();
        let content_type = self.content_type.as_bytes();
        let engine_len = engine.len().min(u8::MAX as usize);
        let ct_len = content_type.len().min(u16::MAX as usize);
        let mut out = Vec::with_capacity(4 + engine_len + ct_len + self.bytes.len());
        out.push(u8::from(self.degraded));
        out.push(engine_len as u8);
        out.extend_from_slice(&engine[..engine_len]);
        out.extend_from_slice(&(ct_len as u16).to_be_bytes());
        out.extend_from_slice(&content_type[..ct_len]);
        out.extend_from_slice(&self.bytes);
        out
    }

    /// Deserializes from [`Self::encode`]'s format; `None` on a
    /// truncated or malformed buffer.
    pub fn decode(data: &[u8]) -> Option<CachedRender> {
        let (&degraded, rest) = data.split_first()?;
        let (&engine_len, rest) = rest.split_first()?;
        let engine_len = engine_len as usize;
        if rest.len() < engine_len + 2 {
            return None;
        }
        let engine = std::str::from_utf8(&rest[..engine_len]).ok()?.to_string();
        let rest = &rest[engine_len..];
        let ct_len = u16::from_be_bytes([rest[0], rest[1]]) as usize;
        let rest = &rest[2..];
        if rest.len() < ct_len {
            return None;
        }
        let content_type = std::str::from_utf8(&rest[..ct_len]).ok()?.to_string();
        Some(CachedRender {
            engine,
            content_type,
            degraded: degraded != 0,
            bytes: rest[ct_len..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: &str = "<html><head><title>Shop News</title></head><body>\
        <h1>Grand (re)opening</h1><p>All hand tools 20% off.</p>\
        <a href=\"/sale.php\">See the sale</a></body></html>";

    #[test]
    fn html_engine_tidies() {
        let artifact = HtmlEngine.render("<p>a<br>b");
        assert_eq!(artifact.content_type, "application/xhtml+xml");
        let body = String::from_utf8(artifact.bytes).unwrap();
        assert!(body.contains("<br />"));
        assert!(body.contains("</html>"));
    }

    #[test]
    fn image_engine_produces_png() {
        let artifact = ImageEngine::default().render(PAGE);
        assert_eq!(artifact.content_type, "image/png");
        assert!(artifact.bytes.starts_with(&[0x89, b'P', b'N', b'G']));
    }

    #[test]
    fn text_engine_extracts_text_and_links() {
        let artifact = PlainTextEngine.render(PAGE);
        let body = String::from_utf8(artifact.bytes).unwrap();
        assert!(body.contains("Grand (re)opening"));
        assert!(body.contains("hand tools 20% off"));
        assert!(body.contains("[1] See the sale -> /sale.php"));
        assert!(!body.contains("<h1>"));
    }

    #[test]
    fn pdf_engine_emits_valid_structure() {
        let artifact = PdfEngine::default().render(PAGE);
        assert_eq!(artifact.content_type, "application/pdf");
        let bytes = &artifact.bytes;
        assert!(bytes.starts_with(b"%PDF-1.4"));
        assert!(bytes.ends_with(b"%%EOF"));
        let text = String::from_utf8_lossy(bytes);
        assert!(text.contains("/Type /Catalog"));
        assert!(text.contains("/BaseFont /Helvetica"));
        assert!(text.contains("Shop News"));
        // Parens escaped inside strings.
        assert!(text.contains("Grand \\(re\\)opening"));
        // xref offsets must actually point at objects.
        let xref_at: usize = text
            .rsplit("startxref\n")
            .next()
            .unwrap()
            .lines()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(&bytes[xref_at..xref_at + 4], b"xref");
    }

    #[test]
    fn pdf_paginates_long_documents() {
        let mut long = String::from("<body><p>");
        for i in 0..3_000 {
            long.push_str(&format!("word{i} "));
        }
        long.push_str("</p></body>");
        let artifact = PdfEngine::default().render(&long);
        let text = String::from_utf8_lossy(&artifact.bytes);
        let pages = text.matches("/Type /Page ").count();
        assert!(pages >= 2, "expected pagination, got {pages} page(s)");
        // Kids count matches.
        assert!(text.contains(&format!("/Count {pages}")));
    }

    #[test]
    fn wrap_text_behavior() {
        assert_eq!(wrap_text("a b c", 3), vec!["a b", "c"]);
        assert_eq!(wrap_text("", 10), Vec::<String>::new());
        let hard = wrap_text("abcdefghij", 4);
        assert_eq!(hard, vec!["abcd", "efgh", "ij"]);
    }

    #[test]
    fn registry_lookup_and_shadowing() {
        let registry = EngineRegistry::with_builtins();
        assert_eq!(registry.names(), vec!["html", "image", "text", "pdf"]);
        assert!(registry.get("pdf").is_some());
        assert!(registry.get("flash").is_none());

        struct Custom;
        impl RenderEngine for Custom {
            fn name(&self) -> &str {
                "text"
            }
            fn render(&self, _html: &str) -> RenderedArtifact {
                RenderedArtifact::text("text/x-custom", "custom".into())
            }
        }
        let mut registry = EngineRegistry::with_builtins();
        registry.register(Box::new(Custom));
        let artifact = registry.get("text").unwrap().render(PAGE);
        assert_eq!(artifact.content_type, "text/x-custom");
    }

    struct FailingEngine {
        name: &'static str,
    }

    impl RenderEngine for FailingEngine {
        fn name(&self) -> &str {
            self.name
        }
        fn render(&self, _html: &str) -> RenderedArtifact {
            panic!("simulated engine crash");
        }
    }

    #[test]
    fn try_render_converts_panics_to_errors() {
        let err = FailingEngine { name: "image" }
            .try_render(PAGE)
            .unwrap_err();
        assert_eq!(err.engine, "image");
        assert!(err.message.contains("simulated engine crash"));
        assert!(err.to_string().contains("image"));
    }

    #[test]
    fn fallback_chain_orders_image_html_text() {
        let registry = EngineRegistry::with_builtins();
        assert_eq!(
            registry.fallback_chain("image"),
            vec!["image", "html", "text"]
        );
        assert_eq!(registry.fallback_chain("pdf"), vec!["pdf", "html", "text"]);
        assert_eq!(registry.fallback_chain("html"), vec!["html", "text"]);
        assert_eq!(registry.fallback_chain("text"), vec!["text", "html"]);
        assert!(registry.fallback_chain("flash").is_empty());
    }

    #[test]
    fn failing_image_engine_degrades_to_html() {
        let mut registry = EngineRegistry::with_builtins();
        registry.register(Box::new(FailingEngine { name: "image" }));
        let render = registry.render_with_fallback("image", PAGE).unwrap();
        assert_eq!(render.engine, "html");
        assert_eq!(render.artifact.content_type, "application/xhtml+xml");
        assert_eq!(render.degraded.len(), 1);
        assert_eq!(render.degraded[0].engine, "image");
    }

    #[test]
    fn fallback_exhaustion_reports_all_failures() {
        let mut registry = EngineRegistry::default();
        registry.register(Box::new(FailingEngine { name: "image" }));
        registry.register(Box::new(FailingEngine { name: "html" }));
        let failures = registry
            .render_with_fallback("image", PAGE)
            .unwrap_err()
            .expect("engine exists, chain exhausted");
        assert_eq!(failures.len(), 2);
        assert_eq!(
            registry.render_with_fallback("nope", PAGE).unwrap_err(),
            None
        );
    }

    #[test]
    fn cached_render_round_trips() {
        let registry = EngineRegistry::with_builtins();
        let render = registry.render_with_fallback("text", PAGE).unwrap();
        let cached = render.to_cached();
        let decoded = CachedRender::decode(&cached.encode()).unwrap();
        assert_eq!(decoded, cached);
        assert_eq!(decoded.engine, "text");
        assert_eq!(decoded.content_type, "text/plain; charset=utf-8");
        assert!(!decoded.degraded);
        assert_eq!(decoded.bytes, render.artifact.bytes);
    }

    #[test]
    fn cached_render_rejects_truncation() {
        let cached = CachedRender {
            engine: "html".into(),
            content_type: "text/html".into(),
            degraded: true,
            bytes: b"payload".to_vec(),
        };
        let encoded = cached.encode();
        assert_eq!(CachedRender::decode(&encoded).unwrap(), cached);
        for cut in [0, 1, 3, 7] {
            assert_eq!(CachedRender::decode(&encoded[..cut]), None, "cut at {cut}");
        }
        assert_eq!(CachedRender::decode(&[]), None);
    }

    #[test]
    fn non_ascii_degrades_not_panics() {
        let artifact = PdfEngine::default().render("<body><p>héllo wörld — ❤</p></body>");
        assert!(artifact.bytes.starts_with(b"%PDF-1.4"));
    }
}
