//! The proxy program DSL — this reproduction's analog of the PHP shell
//! code the paper's visual tool generates.
//!
//! The admin tool emits an [`AdaptationSpec`]; [`to_script`] renders it
//! as a small line-oriented program, and [`parse_script`] is the loader
//! the proxy uses at deploy time. Keeping the generated proxy *a program
//! in a file* (rather than an in-memory structure) preserves the paper's
//! deployment story: the tool writes code, the server runs it, the
//! administrator can read and tweak it.
//!
//! ```text
//! page forum "http://forum.test/index.php"
//! session required
//! snapshot scale=0.5 quality=40 ttl=3600 viewport=1024
//! filter set-title "Sawmill Creek Mobile"
//! rule css "#loginform" {
//!   subpage login "Log in" ajax=no prerender=no
//!   dependency "head link"
//! }
//! ```

use crate::attributes::{
    AdaptationSpec, Attribute, DockObject, Position, Rule, SnapshotSpec, SourceFilter, Target,
};
use std::error::Error;
use std::fmt;

/// Error produced when a proxy script fails to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseScriptError {
    line: usize,
    message: String,
}

impl ParseScriptError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseScriptError {
            line,
            message: message.into(),
        }
    }

    /// 1-based line number of the offending line.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proxy script line {}: {}", self.line, self.message)
    }
}

impl Error for ParseScriptError {}

// -------------------------------------------------------------------
// Generation
// -------------------------------------------------------------------

/// Renders a spec as proxy script text.
///
/// # Examples
///
/// ```
/// use msite::attributes::AdaptationSpec;
/// use msite::dsl::{parse_script, to_script};
///
/// let spec = AdaptationSpec::new("forum", "http://forum.test/index.php");
/// let script = to_script(&spec);
/// assert!(script.starts_with("# m.Site generated proxy program"));
/// assert_eq!(parse_script(&script).unwrap(), spec);
/// ```
pub fn to_script(spec: &AdaptationSpec) -> String {
    let mut out = String::new();
    out.push_str("# m.Site generated proxy program\n");
    out.push_str(&format!(
        "page {} {}\n",
        spec.page_id,
        quote(&spec.page_url)
    ));
    out.push_str(if spec.session_required {
        "session required\n"
    } else {
        "session none\n"
    });
    if let Some(snap) = &spec.snapshot {
        out.push_str(&format!(
            "snapshot scale={} quality={} ttl={} viewport={}\n",
            snap.scale, snap.quality, snap.cache_ttl_secs, snap.viewport_width
        ));
    }
    for filter in &spec.filters {
        out.push_str("filter ");
        match filter {
            SourceFilter::Replace { find, replace } => {
                out.push_str(&format!("replace {} {}", quote(find), quote(replace)))
            }
            SourceFilter::SetDoctype { doctype } => {
                out.push_str(&format!("set-doctype {}", quote(doctype)))
            }
            SourceFilter::SetTitle { title } => {
                out.push_str(&format!("set-title {}", quote(title)))
            }
            SourceFilter::StripTag { tag } => out.push_str(&format!("strip-tag {tag}")),
            SourceFilter::RewriteImagePrefix { from, to } => {
                out.push_str(&format!("rewrite-img-prefix {} {}", quote(from), quote(to)))
            }
        }
        out.push('\n');
    }
    for rule in &spec.rules {
        let target = match &rule.target {
            Target::Css(s) => format!("css {}", quote(s)),
            Target::XPath(s) => format!("xpath {}", quote(s)),
            Target::Dock(d) => format!("dock {}", d.keyword()),
        };
        out.push_str(&format!("rule {target} {{\n"));
        for attr in &rule.attributes {
            out.push_str("  ");
            out.push_str(&attribute_line(attr));
            out.push('\n');
        }
        out.push_str("}\n");
    }
    out
}

fn attribute_line(attr: &Attribute) -> String {
    match attr {
        Attribute::Subpage {
            id,
            title,
            ajax,
            prerender,
        } => format!(
            "subpage {id} {} ajax={} prerender={}",
            quote(title),
            yesno(*ajax),
            yesno(*prerender)
        ),
        Attribute::CopyTo {
            subpage,
            position,
            set_attr,
        } => {
            let mut line = format!("copy-to {subpage} {}", position_word(*position));
            if let Some((name, value)) = set_attr {
                line.push_str(&format!(" set {} {}", name, quote(value)));
            }
            line
        }
        Attribute::MoveTo { subpage, position } => {
            format!("move-to {subpage} {}", position_word(*position))
        }
        Attribute::Remove => "remove".to_string(),
        Attribute::Hide => "hide".to_string(),
        Attribute::ReplaceWith { html } => format!("replace-with {}", quote(html)),
        Attribute::InsertBefore { html } => format!("insert-before {}", quote(html)),
        Attribute::InsertAfter { html } => format!("insert-after {}", quote(html)),
        Attribute::SetAttr { name, value } => format!("set-attr {} {}", name, quote(value)),
        Attribute::LinksToColumns { columns } => format!("links-to-columns {columns}"),
        Attribute::InjectClientScript { code } => format!("inject-script {}", quote(code)),
        Attribute::PrerenderImage {
            scale,
            quality,
            cache_ttl_secs,
        } => {
            let mut line = format!("prerender scale={scale} quality={quality}");
            if let Some(ttl) = cache_ttl_secs {
                line.push_str(&format!(" ttl={ttl}"));
            }
            line
        }
        Attribute::PartialCssPrerender { scale } => format!("partial-css scale={scale}"),
        Attribute::Searchable => "searchable".to_string(),
        Attribute::RichMediaThumbnail { scale } => format!("media-thumbnail scale={scale}"),
        Attribute::ImageFidelity { quality } => format!("image-fidelity {quality}"),
        Attribute::AjaxRewrite => "ajax-rewrite".to_string(),
        Attribute::LinksToAjax { target } => format!("links-to-ajax {}", quote(target)),
        Attribute::Dependency { selector } => format!("dependency {}", quote(selector)),
        Attribute::HttpAuth => "http-auth".to_string(),
        Attribute::ExtractMainContent => "extract-main-content".to_string(),
        Attribute::StripBoilerplate { aggressiveness } => {
            format!("strip-boilerplate aggressiveness={aggressiveness}")
        }
        Attribute::FidelityTier { tier } => format!(
            "fidelity-tier {}",
            match tier {
                Some(class) => class.name(),
                None => "auto",
            }
        ),
    }
}

fn yesno(v: bool) -> &'static str {
    if v {
        "yes"
    } else {
        "no"
    }
}

fn position_word(p: Position) -> &'static str {
    match p {
        Position::Head => "head",
        Position::Top => "top",
        Position::Bottom => "bottom",
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// -------------------------------------------------------------------
// Parsing
// -------------------------------------------------------------------

/// Parses proxy script text back into an [`AdaptationSpec`].
///
/// # Errors
///
/// Returns [`ParseScriptError`] with the offending line on malformed
/// input.
pub fn parse_script(script: &str) -> Result<AdaptationSpec, ParseScriptError> {
    let mut spec: Option<AdaptationSpec> = None;
    let mut current_rule: Option<Rule> = None;

    for (idx, raw_line) in script.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let tokens = tokenize(line).map_err(|message| ParseScriptError::new(line_no, message))?;
        if tokens.is_empty() {
            continue;
        }
        let e = |message: &str| ParseScriptError::new(line_no, message.to_string());

        if let Some(rule) = &mut current_rule {
            if tokens[0].text == "}" {
                spec.as_mut()
                    .ok_or_else(|| e("rule before page line"))?
                    .rules
                    .push(current_rule.take().expect("checked above"));
                continue;
            }
            let attr = parse_attribute(&tokens, line_no)?;
            rule.attributes.push(attr);
            continue;
        }

        match tokens[0].text.as_str() {
            "page" => {
                if tokens.len() != 3 {
                    return Err(e("expected: page <id> \"<url>\""));
                }
                let mut s = AdaptationSpec::new(&tokens[1].text, &tokens[2].text);
                s.snapshot = None;
                s.session_required = false;
                spec = Some(s);
            }
            "session" => {
                let spec = spec.as_mut().ok_or_else(|| e("session before page"))?;
                match tokens.get(1).map(|t| t.text.as_str()) {
                    Some("required") => spec.session_required = true,
                    Some("none") => spec.session_required = false,
                    _ => return Err(e("expected: session required|none")),
                }
            }
            "snapshot" => {
                let spec = spec.as_mut().ok_or_else(|| e("snapshot before page"))?;
                let mut snap = SnapshotSpec::default();
                for token in &tokens[1..] {
                    let (k, v) = token
                        .text
                        .split_once('=')
                        .ok_or_else(|| e("expected key=value"))?;
                    match k {
                        "scale" => snap.scale = v.parse().map_err(|_| e("bad scale"))?,
                        "quality" => snap.quality = v.parse().map_err(|_| e("bad quality"))?,
                        "ttl" => snap.cache_ttl_secs = v.parse().map_err(|_| e("bad ttl"))?,
                        "viewport" => {
                            snap.viewport_width = v.parse().map_err(|_| e("bad viewport"))?
                        }
                        _ => return Err(e(&format!("unknown snapshot key `{k}`"))),
                    }
                }
                spec.snapshot = Some(snap);
            }
            "filter" => {
                let spec = spec.as_mut().ok_or_else(|| e("filter before page"))?;
                let filter = match tokens.get(1).map(|t| t.text.as_str()) {
                    Some("replace") if tokens.len() == 4 => SourceFilter::Replace {
                        find: tokens[2].text.clone(),
                        replace: tokens[3].text.clone(),
                    },
                    Some("set-doctype") if tokens.len() == 3 => SourceFilter::SetDoctype {
                        doctype: tokens[2].text.clone(),
                    },
                    Some("set-title") if tokens.len() == 3 => SourceFilter::SetTitle {
                        title: tokens[2].text.clone(),
                    },
                    Some("strip-tag") if tokens.len() == 3 => SourceFilter::StripTag {
                        tag: tokens[2].text.clone(),
                    },
                    Some("rewrite-img-prefix") if tokens.len() == 4 => {
                        SourceFilter::RewriteImagePrefix {
                            from: tokens[2].text.clone(),
                            to: tokens[3].text.clone(),
                        }
                    }
                    _ => return Err(e("unknown or malformed filter")),
                };
                spec.filters.push(filter);
            }
            "rule" => {
                if spec.is_none() {
                    return Err(e("rule before page"));
                }
                if tokens.len() < 3 {
                    return Err(e("expected: rule css|xpath|dock <target> {"));
                }
                let target = match tokens[1].text.as_str() {
                    "css" => Target::Css(tokens[2].text.clone()),
                    "xpath" => Target::XPath(tokens[2].text.clone()),
                    "dock" => Target::Dock(
                        DockObject::from_keyword(&tokens[2].text)
                            .ok_or_else(|| e("unknown dock object"))?,
                    ),
                    other => return Err(e(&format!("unknown target kind `{other}`"))),
                };
                if tokens.last().map(|t| t.text.as_str()) != Some("{") {
                    return Err(e("expected `{` at end of rule line"));
                }
                current_rule = Some(Rule {
                    target,
                    attributes: Vec::new(),
                });
            }
            other => return Err(e(&format!("unknown directive `{other}`"))),
        }
    }
    if current_rule.is_some() {
        return Err(ParseScriptError::new(
            script.lines().count(),
            "unterminated rule block",
        ));
    }
    spec.ok_or_else(|| ParseScriptError::new(1, "missing page line"))
}

fn parse_attribute(tokens: &[Token], line_no: usize) -> Result<Attribute, ParseScriptError> {
    let e = |message: String| ParseScriptError::new(line_no, message);
    let kv = |token: &Token| -> Result<(String, String), ParseScriptError> {
        token
            .text
            .split_once('=')
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .ok_or_else(|| e(format!("expected key=value, got `{}`", token.text)))
    };
    let position = |word: &str| -> Result<Position, ParseScriptError> {
        match word {
            "head" => Ok(Position::Head),
            "top" => Ok(Position::Top),
            "bottom" => Ok(Position::Bottom),
            other => Err(e(format!("unknown position `{other}`"))),
        }
    };
    Ok(match tokens[0].text.as_str() {
        "subpage" => {
            if tokens.len() != 5 {
                return Err(e(
                    "expected: subpage <id> \"<title>\" ajax=.. prerender=..".into()
                ));
            }
            let (k1, v1) = kv(&tokens[3])?;
            let (k2, v2) = kv(&tokens[4])?;
            if k1 != "ajax" || k2 != "prerender" {
                return Err(e("expected ajax= then prerender=".into()));
            }
            Attribute::Subpage {
                id: tokens[1].text.clone(),
                title: tokens[2].text.clone(),
                ajax: v1 == "yes",
                prerender: v2 == "yes",
            }
        }
        "copy-to" => {
            if tokens.len() != 3 && tokens.len() != 6 {
                return Err(e(
                    "expected: copy-to <subpage> <pos> [set <name> \"<value>\"]".into(),
                ));
            }
            let set_attr = if tokens.len() == 6 {
                if tokens[3].text != "set" {
                    return Err(e("expected `set`".into()));
                }
                Some((tokens[4].text.clone(), tokens[5].text.clone()))
            } else {
                None
            };
            Attribute::CopyTo {
                subpage: tokens[1].text.clone(),
                position: position(&tokens[2].text)?,
                set_attr,
            }
        }
        "move-to" => {
            if tokens.len() != 3 {
                return Err(e("expected: move-to <subpage> <pos>".into()));
            }
            Attribute::MoveTo {
                subpage: tokens[1].text.clone(),
                position: position(&tokens[2].text)?,
            }
        }
        "remove" => Attribute::Remove,
        "hide" => Attribute::Hide,
        "replace-with" => Attribute::ReplaceWith {
            html: arg1(tokens, line_no)?,
        },
        "insert-before" => Attribute::InsertBefore {
            html: arg1(tokens, line_no)?,
        },
        "insert-after" => Attribute::InsertAfter {
            html: arg1(tokens, line_no)?,
        },
        "set-attr" => {
            if tokens.len() != 3 {
                return Err(e("expected: set-attr <name> \"<value>\"".into()));
            }
            Attribute::SetAttr {
                name: tokens[1].text.clone(),
                value: tokens[2].text.clone(),
            }
        }
        "links-to-columns" => Attribute::LinksToColumns {
            columns: arg1(tokens, line_no)?
                .parse()
                .map_err(|_| e("bad column count".into()))?,
        },
        "inject-script" => Attribute::InjectClientScript {
            code: arg1(tokens, line_no)?,
        },
        "prerender" => {
            let mut scale = 1.0f32;
            let mut quality = 60u8;
            let mut ttl = None;
            for token in &tokens[1..] {
                let (k, v) = kv(token)?;
                match k.as_str() {
                    "scale" => scale = v.parse().map_err(|_| e("bad scale".into()))?,
                    "quality" => quality = v.parse().map_err(|_| e("bad quality".into()))?,
                    "ttl" => ttl = Some(v.parse().map_err(|_| e("bad ttl".into()))?),
                    other => return Err(e(format!("unknown prerender key `{other}`"))),
                }
            }
            Attribute::PrerenderImage {
                scale,
                quality,
                cache_ttl_secs: ttl,
            }
        }
        "partial-css" => {
            let (k, v) = kv(tokens.get(1).ok_or_else(|| e("expected scale=".into()))?)?;
            if k != "scale" {
                return Err(e("expected scale=".into()));
            }
            Attribute::PartialCssPrerender {
                scale: v.parse().map_err(|_| e("bad scale".into()))?,
            }
        }
        "searchable" => Attribute::Searchable,
        "media-thumbnail" => {
            let (k, v) = kv(tokens.get(1).ok_or_else(|| e("expected scale=".into()))?)?;
            if k != "scale" {
                return Err(e("expected scale=".into()));
            }
            Attribute::RichMediaThumbnail {
                scale: v.parse().map_err(|_| e("bad scale".into()))?,
            }
        }
        "image-fidelity" => Attribute::ImageFidelity {
            quality: arg1(tokens, line_no)?
                .parse()
                .map_err(|_| e("bad quality".into()))?,
        },
        "ajax-rewrite" => Attribute::AjaxRewrite,
        "links-to-ajax" => Attribute::LinksToAjax {
            target: arg1(tokens, line_no)?,
        },
        "dependency" => Attribute::Dependency {
            selector: arg1(tokens, line_no)?,
        },
        "http-auth" => Attribute::HttpAuth,
        "extract-main-content" => Attribute::ExtractMainContent,
        "strip-boilerplate" => {
            let (k, v) = kv(tokens
                .get(1)
                .ok_or_else(|| e("expected aggressiveness=".into()))?)?;
            if k != "aggressiveness" {
                return Err(e("expected aggressiveness=".into()));
            }
            Attribute::StripBoilerplate {
                aggressiveness: v.parse().map_err(|_| e("bad aggressiveness".into()))?,
            }
        }
        "fidelity-tier" => {
            let word = arg1(tokens, line_no)?;
            Attribute::FidelityTier {
                tier: if word == "auto" {
                    None
                } else {
                    Some(
                        msite_net::BandwidthClass::parse(&word)
                            .ok_or_else(|| e(format!("unknown fidelity tier `{word}`")))?,
                    )
                },
            }
        }
        other => return Err(e(format!("unknown attribute `{other}`"))),
    })
}

fn arg1(tokens: &[Token], line_no: usize) -> Result<String, ParseScriptError> {
    if tokens.len() != 2 {
        return Err(ParseScriptError::new(
            line_no,
            format!("`{}` takes exactly one argument", tokens[0].text),
        ));
    }
    Ok(tokens[1].text.clone())
}

#[derive(Debug, Clone)]
struct Token {
    text: String,
}

/// Splits a line into words; double-quoted strings (with `\"`, `\\`,
/// `\n`, `\t` escapes) form single tokens.
fn tokenize(line: &str) -> Result<Vec<Token>, String> {
    let mut tokens = Vec::new();
    let mut chars = line.chars().peekable();
    while let Some(&ch) = chars.peek() {
        if ch.is_whitespace() {
            chars.next();
            continue;
        }
        if ch == '"' {
            chars.next();
            let mut text = String::new();
            loop {
                match chars.next() {
                    Some('"') => break,
                    Some('\\') => match chars.next() {
                        Some('"') => text.push('"'),
                        Some('\\') => text.push('\\'),
                        Some('n') => text.push('\n'),
                        Some('t') => text.push('\t'),
                        Some(other) => return Err(format!("bad escape \\{other}")),
                        None => return Err("unterminated string".to_string()),
                    },
                    Some(c) => text.push(c),
                    None => return Err("unterminated string".to_string()),
                }
            }
            tokens.push(Token { text });
        } else {
            let mut text = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_whitespace() {
                    break;
                }
                text.push(c);
                chars.next();
            }
            tokens.push(Token { text });
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::SnapshotSpec;

    fn full_spec() -> AdaptationSpec {
        let mut spec = AdaptationSpec::new("forum", "http://forum.test/index.php");
        spec.snapshot = Some(SnapshotSpec {
            scale: 0.5,
            quality: 40,
            cache_ttl_secs: 3_600,
            viewport_width: 1_024,
        });
        spec.filters = vec![
            SourceFilter::SetTitle {
                title: "Mobile \"Forum\"".into(),
            },
            SourceFilter::Replace {
                find: "728".into(),
                replace: "320".into(),
            },
            SourceFilter::StripTag {
                tag: "noscript".into(),
            },
            SourceFilter::RewriteImagePrefix {
                from: "/images/".into(),
                to: "/m/forum/img/".into(),
            },
            SourceFilter::SetDoctype {
                doctype: "<!DOCTYPE html>".into(),
            },
        ];
        spec.rules = vec![
            Rule {
                target: Target::Css("#loginform".into()),
                attributes: vec![
                    Attribute::Subpage {
                        id: "login".into(),
                        title: "Log in".into(),
                        ajax: false,
                        prerender: false,
                    },
                    Attribute::Dependency {
                        selector: "head link".into(),
                    },
                    Attribute::CopyTo {
                        subpage: "login".into(),
                        position: Position::Top,
                        set_attr: Some(("src".into(), "/images/mobile_logo.gif".into())),
                    },
                ],
            },
            Rule {
                target: Target::XPath("//table[1]".into()),
                attributes: vec![
                    Attribute::LinksToColumns { columns: 2 },
                    Attribute::Subpage {
                        id: "nav".into(),
                        title: "Navigate".into(),
                        ajax: true,
                        prerender: false,
                    },
                ],
            },
            Rule {
                target: Target::Dock(DockObject::Title),
                attributes: vec![Attribute::SetAttr {
                    name: "text".into(),
                    value: "m.Forum".into(),
                }],
            },
            Rule {
                target: Target::Css("#stats".into()),
                attributes: vec![
                    Attribute::PrerenderImage {
                        scale: 0.75,
                        quality: 55,
                        cache_ttl_secs: Some(600),
                    },
                    Attribute::Searchable,
                    Attribute::Hide,
                    Attribute::Remove,
                    Attribute::ReplaceWith {
                        html: "<p class=\"note\">line1\nline2</p>".into(),
                    },
                    Attribute::InsertBefore {
                        html: "<hr>".into(),
                    },
                    Attribute::InsertAfter {
                        html: "<hr>".into(),
                    },
                    Attribute::MoveTo {
                        subpage: "misc".into(),
                        position: Position::Bottom,
                    },
                    Attribute::InjectClientScript {
                        code: "var q = \"x\";\nrun(q);".into(),
                    },
                    Attribute::PartialCssPrerender { scale: 1.0 },
                    Attribute::RichMediaThumbnail { scale: 0.25 },
                    Attribute::ImageFidelity { quality: 35 },
                    Attribute::AjaxRewrite,
                    Attribute::LinksToAjax {
                        target: "#detail".into(),
                    },
                    Attribute::HttpAuth,
                ],
            },
            Rule {
                target: Target::Css("body".into()),
                attributes: vec![
                    Attribute::ExtractMainContent,
                    Attribute::StripBoilerplate { aggressiveness: 2 },
                    Attribute::FidelityTier {
                        tier: Some(msite_net::BandwidthClass::TwoG),
                    },
                    Attribute::FidelityTier { tier: None },
                ],
            },
        ];
        spec
    }

    #[test]
    fn full_round_trip() {
        let spec = full_spec();
        let script = to_script(&spec);
        let parsed = parse_script(&script).unwrap();
        assert_eq!(spec, parsed);
    }

    #[test]
    fn generated_script_is_readable() {
        let script = to_script(&full_spec());
        assert!(script.contains("rule css \"#loginform\" {"));
        assert!(script.contains("subpage login \"Log in\" ajax=no prerender=no"));
        assert!(script.contains("links-to-columns 2"));
        assert!(script.contains("snapshot scale=0.5 quality=40 ttl=3600 viewport=1024"));
    }

    #[test]
    fn minimal_script() {
        let spec = parse_script("page p \"http://h/\"\n").unwrap();
        assert_eq!(spec.page_id, "p");
        assert!(!spec.session_required);
        assert!(spec.snapshot.is_none());
        assert!(spec.rules.is_empty());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let spec =
            parse_script("# hi\n\npage p \"http://h/\"\n# more\nsession required\n").unwrap();
        assert!(spec.session_required);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_script("page p \"http://h/\"\nbogus directive\n").unwrap_err();
        assert_eq!(err.line(), 2);
        let err = parse_script("session required\n").unwrap_err();
        assert!(err.to_string().contains("before page"));
        let err = parse_script("page p \"http://h/\"\nrule css \"#x\" {\n").unwrap_err();
        assert!(err.to_string().contains("unterminated"));
        let err =
            parse_script("page p \"http://h/\"\nrule css \"#x\" {\n  explode\n}\n").unwrap_err();
        assert_eq!(err.line(), 3);
    }

    #[test]
    fn string_escapes() {
        let tokens = tokenize(r#"a "b \"c\" \\ \n d" e"#).unwrap();
        assert_eq!(tokens.len(), 3);
        assert_eq!(tokens[1].text, "b \"c\" \\ \n d");
        assert!(tokenize("\"open").is_err());
        assert!(tokenize(r#""bad \q""#).is_err());
    }

    #[test]
    fn dock_rule_parses() {
        let script = "page p \"http://h/\"\nrule dock scripts {\n  remove\n}\n";
        let spec = parse_script(script).unwrap();
        assert_eq!(spec.rules[0].target, Target::Dock(DockObject::Scripts));
        assert!(parse_script("page p \"http://h/\"\nrule dock nothing {\n}\n").is_err());
    }
}
