//! The shared render cache: TTL + LRU, safe for concurrent access.
//!
//! "Certain areas of a site may be defined as cachable across sessions,
//! amortizing the initial pre-rendering cost across many users" (§3.3).
//! Keys are `(page, variant)` strings; values are opaque byte artifacts
//! (snapshot PNGs, pre-rendered fragments, adapted HTML).

use msite_support::bytes::Bytes;
use msite_support::sync::Mutex;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Cache statistics snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing (or only an expired entry).
    pub misses: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Entries dropped because their TTL passed.
    pub expirations: u64,
}

impl CacheStats {
    /// Hit ratio in [0, 1]; 0 when no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    value: Bytes,
    expires_at: Option<Instant>,
    last_used: u64,
    cost: Duration,
}

struct Inner {
    entries: HashMap<String, Entry>,
    clock: u64,
    stats: CacheStats,
    amortized: Duration,
}

/// A concurrent TTL + LRU cache for rendered artifacts.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use msite::cache::RenderCache;
///
/// let cache = RenderCache::new(128);
/// cache.put("forum:snapshot", b"png bytes".to_vec(),
///           Some(Duration::from_secs(3600)), Duration::from_millis(1800));
/// assert!(cache.get("forum:snapshot").is_some());
/// assert_eq!(cache.stats().hits, 1);
/// ```
pub struct RenderCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl RenderCache {
    /// Creates a cache bounded to `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> RenderCache {
        assert!(capacity > 0, "cache capacity must be positive");
        RenderCache {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                clock: 0,
                stats: CacheStats::default(),
                amortized: Duration::ZERO,
            }),
            capacity,
        }
    }

    /// Inserts an artifact. `ttl == None` means "until evicted". `cost`
    /// records how long the artifact took to produce, feeding the
    /// amortization accounting.
    pub fn put(&self, key: &str, value: impl Into<Bytes>, ttl: Option<Duration>, cost: Duration) {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let last_used = inner.clock;
        if inner.entries.len() >= self.capacity && !inner.entries.contains_key(key) {
            // Evict the least recently used entry.
            if let Some(oldest) = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.entries.remove(&oldest);
                inner.stats.evictions += 1;
            }
        }
        inner.entries.insert(
            key.to_string(),
            Entry {
                value: value.into(),
                expires_at: ttl.map(|t| Instant::now() + t),
                last_used,
                cost,
            },
        );
    }

    /// Fetches a live artifact, refreshing its recency. Every hit adds
    /// the entry's production cost to the amortized-savings counter.
    pub fn get(&self, key: &str) -> Option<Bytes> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        match inner.entries.get_mut(key) {
            Some(entry) => {
                if entry
                    .expires_at
                    .map(|t| Instant::now() >= t)
                    .unwrap_or(false)
                {
                    inner.entries.remove(key);
                    inner.stats.expirations += 1;
                    inner.stats.misses += 1;
                    return None;
                }
                entry.last_used = clock;
                let value = entry.value.clone();
                let cost = entry.cost;
                inner.stats.hits += 1;
                inner.amortized += cost;
                Some(value)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Fetches, or computes-and-stores on miss. The closure returns the
    /// artifact plus its production cost.
    pub fn get_or_insert_with(
        &self,
        key: &str,
        ttl: Option<Duration>,
        produce: impl FnOnce() -> (Bytes, Duration),
    ) -> Bytes {
        if let Some(hit) = self.get(key) {
            return hit;
        }
        let (value, cost) = produce();
        self.put(key, value.clone(), ttl, cost);
        value
    }

    /// Drops an entry.
    pub fn invalidate(&self, key: &str) {
        self.inner.lock().entries.remove(key);
    }

    /// Drops everything.
    pub fn clear(&self) {
        self.inner.lock().entries.clear();
    }

    /// Number of live entries (expired ones may still be counted until
    /// touched).
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }

    /// Total rendering time saved by cache hits — the paper's
    /// "amortizing rendering costs across many client sessions".
    pub fn amortized_savings(&self) -> Duration {
        self.inner.lock().amortized
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn put_get_round_trip() {
        let cache = RenderCache::new(4);
        cache.put("a", b"one".to_vec(), None, Duration::ZERO);
        assert_eq!(cache.get("a").as_deref(), Some(&b"one"[..]));
        assert_eq!(cache.get("b"), None);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn ttl_expires_entries() {
        let cache = RenderCache::new(4);
        cache.put(
            "x",
            b"v".to_vec(),
            Some(Duration::from_millis(20)),
            Duration::ZERO,
        );
        assert!(cache.get("x").is_some());
        std::thread::sleep(Duration::from_millis(30));
        assert!(cache.get("x").is_none());
        assert_eq!(cache.stats().expirations, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let cache = RenderCache::new(2);
        cache.put("a", b"1".to_vec(), None, Duration::ZERO);
        cache.put("b", b"2".to_vec(), None, Duration::ZERO);
        let _ = cache.get("a"); // refresh a
        cache.put("c", b"3".to_vec(), None, Duration::ZERO);
        assert!(cache.get("a").is_some());
        assert!(cache.get("b").is_none(), "b should have been evicted");
        assert!(cache.get("c").is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn overwrite_same_key_no_eviction() {
        let cache = RenderCache::new(2);
        cache.put("a", b"1".to_vec(), None, Duration::ZERO);
        cache.put("b", b"2".to_vec(), None, Duration::ZERO);
        cache.put("a", b"1b".to_vec(), None, Duration::ZERO);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.get("a").as_deref(), Some(&b"1b"[..]));
    }

    #[test]
    fn get_or_insert_computes_once() {
        let cache = RenderCache::new(4);
        let mut calls = 0;
        for _ in 0..3 {
            let v = cache.get_or_insert_with("k", None, || {
                calls += 1;
                (Bytes::from_static(b"computed"), Duration::from_millis(100))
            });
            assert_eq!(&v[..], b"computed");
        }
        assert_eq!(calls, 1);
        // Two hits amortized 100 ms each.
        assert_eq!(cache.amortized_savings(), Duration::from_millis(200));
    }

    #[test]
    fn amortization_accumulates_per_hit() {
        let cache = RenderCache::new(4);
        cache.put("snap", b"png".to_vec(), None, Duration::from_secs(2));
        for _ in 0..5 {
            let _ = cache.get("snap");
        }
        assert_eq!(cache.amortized_savings(), Duration::from_secs(10));
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = Arc::new(RenderCache::new(64));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..200 {
                        let key = format!("k{}", (t * 7 + i) % 32);
                        cache.get_or_insert_with(&key, None, || {
                            (Bytes::from(vec![t as u8]), Duration::from_millis(1))
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.len() <= 64);
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 8 * 200);
    }

    #[test]
    fn invalidate_and_clear() {
        let cache = RenderCache::new(4);
        cache.put("a", b"1".to_vec(), None, Duration::ZERO);
        cache.invalidate("a");
        assert!(cache.get("a").is_none());
        cache.put("b", b"2".to_vec(), None, Duration::ZERO);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn hit_ratio() {
        let cache = RenderCache::new(4);
        cache.put("a", b"1".to_vec(), None, Duration::ZERO);
        let _ = cache.get("a");
        let _ = cache.get("a");
        let _ = cache.get("zz");
        let ratio = cache.stats().hit_ratio();
        assert!((ratio - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
    }
}
