//! The shared render cache: TTL + LRU with serve-stale degradation and
//! a single-flight layer, safe for concurrent access.
//!
//! "Certain areas of a site may be defined as cachable across sessions,
//! amortizing the initial pre-rendering cost across many users" (§3.3).
//! Keys are `(page, variant)` strings; values are opaque byte artifacts
//! (snapshot PNGs, pre-rendered fragments, adapted HTML).
//!
//! Expired entries are kept for a configurable *stale window* past
//! their TTL. [`RenderCache::get`] never returns them, but
//! [`RenderCache::lookup`] reports them as [`Lookup::Stale`], which the
//! proxy uses to serve a last-known-good snapshot when the origin is
//! down or its circuit breaker is open — degraded service instead of a
//! 5xx per request.
//!
//! # Single flight
//!
//! Concurrent misses on one key do not stampede the producer. The first
//! caller becomes the *leader*: it registers an in-flight marker and
//! runs `produce()` outside the lock. Every other caller becomes a
//! *waiter*, blocking on the flight's [`OnceValue`] rendezvous and
//! sharing the leader's result (counted in [`CacheStats::coalesced`]).
//! Waiters can bound their wait: on expiry they fall back to a
//! stale-window entry when one exists, or report [`Flight::TimedOut`]
//! so the caller can surface a deadline error instead of blocking
//! forever. A leader that panics abandons its flight; waiters detect
//! the abandonment and retry, electing a new leader.
//!
//! # Lock striping
//!
//! The key space is split across `K` shards (FNV-1a on the key), each
//! with its own mutex, entry map, and in-flight registry, so unrelated
//! keys no longer serialize under multi-user load. LRU eviction is per
//! shard against the shard's slice of the capacity; `advance_clock` and
//! the stale window apply uniformly across shards. Small caches
//! (capacity ≤ 32) collapse to a single shard, which is exactly the
//! seed's global-LRU behavior.

use crate::persist::{DiskFreshness, DiskTier};
use msite_support::bytes::Bytes;
use msite_support::sync::{Mutex, OnceValue};
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cache statistics snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing (or only an expired entry).
    pub misses: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Entries dropped because their TTL (plus stale window) passed.
    pub expirations: u64,
    /// Lookups answered by an expired entry still inside the stale
    /// window (serve-stale degradation).
    pub stale_hits: u64,
    /// Misses that were answered by joining another caller's in-flight
    /// `produce()` instead of launching their own (single flight).
    pub coalesced: u64,
}

impl CacheStats {
    /// Hit ratio in [0, 1]; 0 when no lookups happened. Stale lookups
    /// are *not* hits — they are degraded service — so they count in
    /// the denominator only: `hits / (hits + misses + stale_hits)`.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses + self.stale_hits;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    fn absorb(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.expirations += other.expirations;
        self.stale_hits += other.stale_hits;
        self.coalesced += other.coalesced;
    }
}

struct Entry {
    value: Bytes,
    expires_at: Option<Instant>,
    last_used: u64,
    cost: Duration,
}

impl Entry {
    /// How far past its TTL the entry is at `now`; zero while fresh.
    fn age_past_expiry(&self, now: Instant) -> Duration {
        self.expires_at
            .map(|t| now.saturating_duration_since(t))
            .unwrap_or(Duration::ZERO)
    }
}

/// Marker published by [`FlightGuard`] when a leader unwinds without
/// completing its flight; waiters that see it retry (and may lead).
struct LeaderAbandoned;

type FlightError = Arc<dyn Any + Send + Sync>;

/// A registered in-flight `produce()` that waiters rendezvous on.
struct InFlight {
    result: OnceValue<Result<Bytes, FlightError>>,
    waiters: AtomicU64,
}

impl InFlight {
    fn new() -> InFlight {
        InFlight {
            result: OnceValue::new(),
            waiters: AtomicU64::new(0),
        }
    }
}

struct Inner {
    entries: HashMap<String, Entry>,
    flights: HashMap<String, Arc<InFlight>>,
    clock: u64,
    stats: CacheStats,
    amortized: Duration,
    /// Test/harness clock offset added to `Instant::now()`, so TTL and
    /// stale-window behavior can be driven without real sleeps.
    time_offset: Duration,
}

struct Shard {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl Shard {
    fn new(capacity: usize) -> Shard {
        Shard {
            capacity,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                flights: HashMap::new(),
                clock: 0,
                stats: CacheStats::default(),
                amortized: Duration::ZERO,
                time_offset: Duration::ZERO,
            }),
        }
    }
}

/// Outcome of a [`RenderCache::lookup`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lookup {
    /// A live entry.
    Fresh(Bytes),
    /// An expired entry still inside the stale window — usable only as
    /// degraded output when the authoritative source is unavailable.
    Stale {
        /// The expired artifact.
        value: Bytes,
        /// How long past its TTL the entry is.
        age: Duration,
    },
    /// Nothing usable.
    Miss,
}

/// Outcome of a [`RenderCache::render_flight`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Flight<E> {
    /// A fresh entry was already cached; no flight was needed.
    Hit(Bytes),
    /// This caller led the flight: it ran `produce()` and cached the
    /// result.
    Led {
        /// The freshly produced artifact.
        value: Bytes,
        /// How many waiters were registered on the flight when it
        /// completed (they each count one `coalesced` as they wake).
        shared_with: u64,
    },
    /// This caller joined another caller's flight and shares its
    /// result.
    Shared(Bytes),
    /// The wait budget expired (or the leader failed) and an expired
    /// entry inside the stale window was served instead.
    Stale {
        /// The expired artifact.
        value: Bytes,
        /// How long past its TTL the entry is.
        age: Duration,
    },
    /// The wait budget expired with nothing usable cached.
    TimedOut,
    /// The flight's `produce()` failed; leaders report their own error,
    /// waiters a clone of the leader's.
    Failed(E),
}

/// Removes the flight and publishes [`LeaderAbandoned`] if the leader
/// unwinds (panics) before completing; disarmed on the success and
/// error paths, which publish their own result.
struct FlightGuard<'a> {
    shard: &'a Shard,
    key: &'a str,
    flight: &'a Arc<InFlight>,
    armed: bool,
}

impl FlightGuard<'_> {
    fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let mut inner = self.shard.inner.lock();
        if inner
            .flights
            .get(self.key)
            .is_some_and(|f| Arc::ptr_eq(f, self.flight))
        {
            inner.flights.remove(self.key);
        }
        drop(inner);
        // Wake waiters *after* the registry slot is free, so a retrying
        // waiter cannot rejoin this dead flight.
        self.flight.result.set(Err(Arc::new(LeaderAbandoned)));
    }
}

/// A concurrent TTL + LRU cache for rendered artifacts, lock-striped
/// across shards, with single-flight coalescing of concurrent misses.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use msite::cache::RenderCache;
///
/// let cache = RenderCache::new(128);
/// cache.put("forum:snapshot", b"png bytes".to_vec(),
///           Some(Duration::from_secs(3600)), Duration::from_millis(1800));
/// assert!(cache.get("forum:snapshot").is_some());
/// assert_eq!(cache.stats().hits, 1);
/// ```
pub struct RenderCache {
    shards: Box<[Shard]>,
    /// Stale-window width in microseconds; atomic so the health monitor
    /// can widen serve-stale aggressiveness at runtime.
    stale_window_micros: AtomicU64,
    /// Optional persistent second tier (write-behind + warm restart).
    disk: Option<Arc<DiskTier>>,
    /// Entries preloaded from the disk tier at construction.
    warm_loaded: AtomicU64,
}

impl RenderCache {
    /// Creates a cache bounded to `capacity` entries, with no stale
    /// retention (expired entries drop on first touch).
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> RenderCache {
        RenderCache::with_stale_window(capacity, Duration::ZERO)
    }

    /// Creates a cache that keeps expired entries around for
    /// `stale_window` past their TTL, reporting them via
    /// [`Self::lookup`] as [`Lookup::Stale`]. The shard count defaults
    /// to one shard per 32 entries of capacity, capped at 16; caches of
    /// 32 entries or fewer get a single shard (global LRU, the seed's
    /// semantics).
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn with_stale_window(capacity: usize, stale_window: Duration) -> RenderCache {
        let shards = (capacity / 32).clamp(1, 16);
        RenderCache::with_shards(capacity, stale_window, shards)
    }

    /// Creates a cache striped across exactly `shards` locks. `capacity`
    /// is the *total* bound, distributed as evenly as possible across
    /// shards (the first `capacity % shards` shards get one extra slot).
    /// The shard count is clamped to `[1, capacity]` so every shard can
    /// hold at least one entry.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn with_shards(capacity: usize, stale_window: Duration, shards: usize) -> RenderCache {
        assert!(capacity > 0, "cache capacity must be positive");
        let count = shards.clamp(1, capacity);
        let base = capacity / count;
        let extra = capacity % count;
        let shards: Vec<Shard> = (0..count)
            .map(|i| Shard::new(base + usize::from(i < extra)))
            .collect();
        RenderCache {
            shards: shards.into_boxed_slice(),
            stale_window_micros: AtomicU64::new(stale_window.as_micros() as u64),
            disk: None,
            warm_loaded: AtomicU64::new(0),
        }
    }

    /// Creates a cache backed by a persistent disk tier: inserts are
    /// written behind to `tier`, memory misses are answered from disk
    /// when a checksum-verified fresh artifact exists, and the hot set
    /// (most recently persisted live entries, up to `capacity`) is
    /// preloaded so a restarted proxy serves its working set without
    /// re-rendering.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn with_disk_tier(
        capacity: usize,
        stale_window: Duration,
        tier: Arc<DiskTier>,
    ) -> RenderCache {
        let mut cache = RenderCache::with_stale_window(capacity, stale_window);
        cache.disk = Some(tier);
        cache.warm_load(capacity);
        cache
    }

    /// Preloads the most recently persisted live artifacts into the
    /// memory tier (warm restart).
    fn warm_load(&self, limit: usize) {
        let Some(tier) = &self.disk else { return };
        let tier = Arc::clone(tier);
        for key in tier.hot_keys(limit) {
            let Some(record) = tier.get(&key) else {
                continue;
            };
            if let DiskFreshness::Fresh(ttl) = record.freshness {
                let shard = self.shard(&key);
                let mut inner = shard.inner.lock();
                self.insert_locked(shard, &mut inner, &key, record.value, ttl, record.cost);
                drop(inner);
                self.warm_loaded.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The configured stale window.
    pub fn stale_window(&self) -> Duration {
        Duration::from_micros(self.stale_window_micros.load(Ordering::Relaxed))
    }

    /// Adjusts the stale window at runtime — the health monitor widens
    /// it under duress (serve stale rather than shed) and restores the
    /// configured width when the system recovers.
    pub fn set_stale_window(&self, window: Duration) {
        self.stale_window_micros
            .store(window.as_micros() as u64, Ordering::Relaxed);
    }

    /// The persistent tier, when one is attached.
    pub fn disk(&self) -> Option<&Arc<DiskTier>> {
        self.disk.as_ref()
    }

    /// Statistics of the persistent tier (`None` when memory-only).
    pub fn disk_stats(&self) -> Option<crate::persist::DiskTierStats> {
        self.disk.as_ref().map(|tier| tier.stats())
    }

    /// Entries preloaded from disk at construction (warm restart).
    pub fn warm_loaded(&self) -> u64 {
        self.warm_loaded.load(Ordering::Relaxed)
    }

    /// Blocks until the disk tier's write-behind queue has drained.
    /// No-op when memory-only.
    pub fn flush_disk(&self) {
        if let Some(tier) = &self.disk {
            tier.flush();
        }
    }

    /// Write-behind hook: persists an inserted artifact without
    /// blocking the serving path.
    fn write_behind(&self, key: &str, value: &Bytes, ttl: Option<Duration>, cost: Duration) {
        if let Some(tier) = &self.disk {
            tier.put(key, value.clone(), ttl, cost);
        }
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `key` maps to (FNV-1a).
    pub fn shard_of(&self, key: &str) -> usize {
        if self.shards.len() == 1 {
            return 0;
        }
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in key.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0100_0000_01B3);
        }
        (hash % self.shards.len() as u64) as usize
    }

    /// The entry bound of shard `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index >= shard_count()`.
    pub fn shard_capacity(&self, index: usize) -> usize {
        self.shards[index].capacity
    }

    /// Entries currently stored in shard `index` (including entries
    /// whose stale window has lapsed but that have not been touched).
    ///
    /// # Panics
    ///
    /// Panics when `index >= shard_count()`.
    pub fn shard_len(&self, index: usize) -> usize {
        self.shards[index].inner.lock().entries.len()
    }

    fn shard(&self, key: &str) -> &Shard {
        &self.shards[self.shard_of(key)]
    }

    /// Advances the cache's notion of "now" by `delta` — a harness hook
    /// that makes TTL/stale-window tests deterministic without sleeping.
    pub fn advance_clock(&self, delta: Duration) {
        for shard in self.shards.iter() {
            shard.inner.lock().time_offset += delta;
        }
    }

    /// Inserts an artifact. `ttl == None` means "until evicted". `cost`
    /// records how long the artifact took to produce, feeding the
    /// amortization accounting.
    pub fn put(&self, key: &str, value: impl Into<Bytes>, ttl: Option<Duration>, cost: Duration) {
        let value = value.into();
        let shard = self.shard(key);
        let mut inner = shard.inner.lock();
        self.insert_locked(shard, &mut inner, key, value.clone(), ttl, cost);
        drop(inner);
        self.write_behind(key, &value, ttl, cost);
    }

    /// Inserts under an already-held shard lock, evicting if the shard
    /// is full: entries past the stale window are pruned first, then an
    /// expired-but-stale entry is preferred as the victim over a live
    /// one, then LRU order decides.
    fn insert_locked(
        &self,
        shard: &Shard,
        inner: &mut Inner,
        key: &str,
        value: Bytes,
        ttl: Option<Duration>,
        cost: Duration,
    ) {
        let now = Instant::now() + inner.time_offset;
        inner.clock += 1;
        let last_used = inner.clock;
        if inner.entries.len() >= shard.capacity && !inner.entries.contains_key(key) {
            let dead: Vec<String> = inner
                .entries
                .iter()
                .filter(|(_, e)| e.age_past_expiry(now) > self.stale_window())
                .map(|(k, _)| k.clone())
                .collect();
            for k in &dead {
                inner.entries.remove(k);
                inner.stats.expirations += 1;
            }
            if inner.entries.len() >= shard.capacity {
                // Evict expired-but-stale entries before live ones;
                // within a class, the least recently used goes.
                if let Some(victim) = inner
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| (e.age_past_expiry(now).is_zero(), e.last_used))
                    .map(|(k, _)| k.clone())
                {
                    inner.entries.remove(&victim);
                    inner.stats.evictions += 1;
                }
            }
        }
        inner.entries.insert(
            key.to_string(),
            Entry {
                value,
                expires_at: ttl.map(|t| now + t),
                last_used,
                cost,
            },
        );
    }

    /// Fetches a live artifact, refreshing its recency. Every hit adds
    /// the entry's production cost to the amortized-savings counter.
    /// Expired entries are never returned here (use [`Self::lookup`] for
    /// stale fallback); entries past the stale window are dropped.
    pub fn get(&self, key: &str) -> Option<Bytes> {
        match self.lookup_at(key, false) {
            Lookup::Fresh(value) => Some(value),
            Lookup::Stale { .. } | Lookup::Miss => None,
        }
    }

    /// Fetches an artifact, reporting freshness: fresh entries behave
    /// like [`Self::get`]; expired entries inside the stale window come
    /// back as [`Lookup::Stale`] with their age past expiry.
    pub fn lookup(&self, key: &str) -> Lookup {
        self.lookup_at(key, true)
    }

    fn lookup_at(&self, key: &str, allow_stale: bool) -> Lookup {
        match self.lookup_mem(key, allow_stale) {
            Lookup::Miss => self.lookup_disk(key, allow_stale),
            found => found,
        }
    }

    fn lookup_mem(&self, key: &str, allow_stale: bool) -> Lookup {
        let mut inner = self.shard(key).inner.lock();
        let now = Instant::now() + inner.time_offset;
        inner.clock += 1;
        let clock = inner.clock;
        let Some(entry) = inner.entries.get_mut(key) else {
            inner.stats.misses += 1;
            return Lookup::Miss;
        };
        let age = entry.age_past_expiry(now);
        if age.is_zero() {
            entry.last_used = clock;
            let value = entry.value.clone();
            let cost = entry.cost;
            inner.stats.hits += 1;
            inner.amortized += cost;
            return Lookup::Fresh(value);
        }
        if age > self.stale_window() {
            // Beyond salvage: drop the entry whichever API touched it.
            inner.entries.remove(key);
            inner.stats.expirations += 1;
            inner.stats.misses += 1;
            return Lookup::Miss;
        }
        if !allow_stale {
            inner.stats.misses += 1;
            return Lookup::Miss;
        }
        // Refresh recency: an entry serving as degraded output must not
        // be the next LRU victim.
        entry.last_used = clock;
        let value = entry.value.clone();
        inner.stats.stale_hits += 1;
        Lookup::Stale { value, age }
    }

    /// Memory-miss fallback: consult the persistent tier. A fresh
    /// checksum-verified artifact is promoted into the memory tier
    /// (without re-persisting) and served; an expired one is served
    /// stale when its age fits the stale window. The preceding memory
    /// miss stays counted — disk recoveries surface in
    /// [`Self::disk_stats`], not in [`CacheStats`].
    fn lookup_disk(&self, key: &str, allow_stale: bool) -> Lookup {
        let Some(tier) = &self.disk else {
            return Lookup::Miss;
        };
        let Some(record) = tier.get(key) else {
            return Lookup::Miss;
        };
        match record.freshness {
            DiskFreshness::Fresh(ttl) => {
                let shard = self.shard(key);
                let mut inner = shard.inner.lock();
                self.insert_locked(
                    shard,
                    &mut inner,
                    key,
                    record.value.clone(),
                    ttl,
                    record.cost,
                );
                Lookup::Fresh(record.value)
            }
            DiskFreshness::Expired(age) if allow_stale && age <= self.stale_window() => {
                Lookup::Stale {
                    value: record.value,
                    age,
                }
            }
            DiskFreshness::Expired(_) => Lookup::Miss,
        }
    }

    /// Flight-path disk probe: when memory lacks a fresh entry but the
    /// persistent tier holds one, promote it so the flight resolves as
    /// a hit instead of electing a render leader.
    fn promote_for_flight(&self, key: &str) {
        let Some(tier) = &self.disk else { return };
        {
            let inner = self.shard(key).inner.lock();
            let now = Instant::now() + inner.time_offset;
            if let Some(entry) = inner.entries.get(key) {
                if entry.age_past_expiry(now).is_zero() {
                    return;
                }
            }
        }
        if let Some(record) = tier.get(key) {
            if let DiskFreshness::Fresh(ttl) = record.freshness {
                let shard = self.shard(key);
                let mut inner = shard.inner.lock();
                self.insert_locked(shard, &mut inner, key, record.value, ttl, record.cost);
            }
        }
    }

    /// Fetches, or computes-and-stores on miss, coalescing concurrent
    /// misses into one `produce()` (single flight). The closure returns
    /// the artifact plus its production cost.
    ///
    /// Expired entries inside the stale window are served directly
    /// (counting a stale hit) rather than recomputed — the degraded
    /// answer is preferred over a redundant render here. Callers that
    /// instead want a fresh render with stale only as a timeout
    /// fallback use [`Self::render_flight`].
    pub fn get_or_insert_with(
        &self,
        key: &str,
        ttl: Option<Duration>,
        produce: impl FnOnce() -> (Bytes, Duration),
    ) -> Bytes {
        match self
            .flight_inner::<std::convert::Infallible, _>(key, ttl, None, true, || Ok(produce()))
        {
            Flight::Hit(value)
            | Flight::Led { value, .. }
            | Flight::Shared(value)
            | Flight::Stale { value, .. } => value,
            Flight::TimedOut => unreachable!("unbounded waits cannot time out"),
            Flight::Failed(error) => match error {},
        }
    }

    /// Fetches, or runs a fallible `produce()` exactly once across
    /// concurrent callers (single flight), with a bounded wait.
    ///
    /// The first caller to miss becomes the leader and runs `produce()`
    /// outside the cache lock; concurrent callers wait on the flight
    /// and share its result ([`Flight::Shared`]). `wait_budget` bounds
    /// how long a waiter blocks (`None` = indefinitely): on expiry it
    /// falls back to a stale-window entry ([`Flight::Stale`]) or
    /// reports [`Flight::TimedOut`]. A failed `produce()` caches
    /// nothing and propagates a clone of the error to every waiter.
    ///
    /// Unlike [`Self::get_or_insert_with`], an expired-but-stale entry
    /// does *not* short-circuit the render: freshness is preferred, and
    /// stale serves only as the fallback.
    pub fn render_flight<E>(
        &self,
        key: &str,
        ttl: Option<Duration>,
        wait_budget: Option<Duration>,
        produce: impl FnOnce() -> Result<(Bytes, Duration), E>,
    ) -> Flight<E>
    where
        E: Clone + Send + Sync + 'static,
    {
        self.flight_inner(key, ttl, wait_budget, false, produce)
    }

    fn flight_inner<E, F>(
        &self,
        key: &str,
        ttl: Option<Duration>,
        wait_budget: Option<Duration>,
        eager_stale: bool,
        produce: F,
    ) -> Flight<E>
    where
        E: Clone + Send + Sync + 'static,
        F: FnOnce() -> Result<(Bytes, Duration), E>,
    {
        let wait_deadline = wait_budget.map(|b| Instant::now() + b);
        if self.disk.is_some() {
            self.promote_for_flight(key);
        }
        let shard = self.shard(key);
        let mut produce = Some(produce);
        let mut counted_miss = false;
        loop {
            let mut inner = shard.inner.lock();
            let now = Instant::now() + inner.time_offset;
            inner.clock += 1;
            let clock = inner.clock;
            if let Some(entry) = inner.entries.get_mut(key) {
                let age = entry.age_past_expiry(now);
                if age.is_zero() {
                    entry.last_used = clock;
                    let value = entry.value.clone();
                    let cost = entry.cost;
                    inner.stats.hits += 1;
                    inner.amortized += cost;
                    return Flight::Hit(value);
                }
                if age > self.stale_window() {
                    inner.entries.remove(key);
                    inner.stats.expirations += 1;
                } else if eager_stale {
                    entry.last_used = clock;
                    let value = entry.value.clone();
                    inner.stats.stale_hits += 1;
                    return Flight::Stale { value, age };
                }
            }
            if !counted_miss {
                inner.stats.misses += 1;
                counted_miss = true;
            }
            let joined = match inner.flights.get(key) {
                Some(flight) => {
                    flight.waiters.fetch_add(1, Ordering::Relaxed);
                    Some(Arc::clone(flight))
                }
                None => {
                    let flight = Arc::new(InFlight::new());
                    inner.flights.insert(key.to_string(), Arc::clone(&flight));
                    drop(inner);
                    return self.lead(
                        shard,
                        key,
                        ttl,
                        &flight,
                        produce
                            .take()
                            .expect("produce is consumed only by the leader"),
                    );
                }
            };
            drop(inner);

            let flight = joined.expect("non-leader path always joins");
            let outcome = match wait_deadline {
                None => Some(flight.result.wait()),
                Some(deadline) => flight
                    .result
                    .wait_for(deadline.saturating_duration_since(Instant::now())),
            };
            match outcome {
                Some(Ok(value)) => {
                    shard.inner.lock().stats.coalesced += 1;
                    return Flight::Shared(value);
                }
                Some(Err(error)) => {
                    if error.is::<LeaderAbandoned>() {
                        // The leader unwound without an answer; go
                        // around and possibly lead the retry.
                        continue;
                    }
                    if let Some(error) = error.downcast_ref::<E>() {
                        return Flight::Failed(error.clone());
                    }
                    // A flight with a different error type raced us on
                    // this key; treat it like an expired wait.
                    if wait_deadline.is_none() {
                        continue;
                    }
                    return self.stale_or_timed_out(shard, key);
                }
                None => return self.stale_or_timed_out(shard, key),
            }
        }
    }

    /// Leader side of a flight: run `produce()` outside the lock, then
    /// publish the outcome to the cache and to the flight's waiters.
    fn lead<E>(
        &self,
        shard: &Shard,
        key: &str,
        ttl: Option<Duration>,
        flight: &Arc<InFlight>,
        produce: impl FnOnce() -> Result<(Bytes, Duration), E>,
    ) -> Flight<E>
    where
        E: Clone + Send + Sync + 'static,
    {
        let guard = FlightGuard {
            shard,
            key,
            flight,
            armed: true,
        };
        let outcome = produce();
        let mut inner = shard.inner.lock();
        if let Ok((value, cost)) = &outcome {
            self.insert_locked(shard, &mut inner, key, value.clone(), ttl, *cost);
        }
        if inner
            .flights
            .get(key)
            .is_some_and(|f| Arc::ptr_eq(f, flight))
        {
            inner.flights.remove(key);
        }
        drop(inner);
        let shared_with = flight.waiters.load(Ordering::Relaxed);
        match outcome {
            Ok((value, cost)) => {
                self.write_behind(key, &value, ttl, cost);
                flight.result.set(Ok(value.clone()));
                guard.disarm();
                Flight::Led { value, shared_with }
            }
            Err(error) => {
                flight.result.set(Err(Arc::new(error.clone())));
                guard.disarm();
                Flight::Failed(error)
            }
        }
    }

    /// A waiter whose budget expired (or whose flight failed under it):
    /// serve the stale window if it can, otherwise time out. A fresh
    /// entry can appear here when the flight completed in the same
    /// instant the wait gave up — that still counts as coalesced.
    fn stale_or_timed_out<E>(&self, shard: &Shard, key: &str) -> Flight<E> {
        let mut inner = shard.inner.lock();
        let now = Instant::now() + inner.time_offset;
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(entry) = inner.entries.get_mut(key) {
            let age = entry.age_past_expiry(now);
            if age.is_zero() {
                entry.last_used = clock;
                let value = entry.value.clone();
                inner.stats.coalesced += 1;
                return Flight::Shared(value);
            }
            if age <= self.stale_window() {
                entry.last_used = clock;
                let value = entry.value.clone();
                inner.stats.stale_hits += 1;
                return Flight::Stale { value, age };
            }
            inner.entries.remove(key);
            inner.stats.expirations += 1;
        }
        Flight::TimedOut
    }

    /// Waits (up to `budget`, `None` = indefinitely) for an in-flight
    /// `produce()` on `key` to complete, returning its value on
    /// success. Returns `None` immediately when no flight is registered
    /// — this is an observation hook, not a lookup, and touches no
    /// statistics.
    pub fn join_flight(&self, key: &str, budget: Option<Duration>) -> Option<Bytes> {
        let flight = self.shard(key).inner.lock().flights.get(key).cloned()?;
        let outcome = match budget {
            None => Some(flight.result.wait()),
            Some(budget) => flight.result.wait_for(budget),
        };
        match outcome {
            Some(Ok(value)) => Some(value),
            _ => None,
        }
    }

    /// Number of flights currently registered (renders in progress).
    pub fn in_flight(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.inner.lock().flights.len())
            .sum()
    }

    /// Drops an entry (from the disk tier too, when one is attached).
    pub fn invalidate(&self, key: &str) {
        self.shard(key).inner.lock().entries.remove(key);
        if let Some(tier) = &self.disk {
            tier.forget(key);
        }
    }

    /// Drops everything (in-flight registrations are untouched).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.inner.lock().entries.clear();
        }
        if let Some(tier) = &self.disk {
            tier.forget_all();
        }
    }

    /// Number of usable entries: fresh plus stale-window. Entries whose
    /// stale window has lapsed still occupy their slot until touched or
    /// pruned, but are no longer counted here.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                let inner = shard.inner.lock();
                let now = Instant::now() + inner.time_offset;
                inner
                    .entries
                    .values()
                    .filter(|e| e.age_past_expiry(now) <= self.stale_window())
                    .count()
            })
            .sum()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Statistics so far, aggregated across shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in self.shards.iter() {
            total.absorb(shard.inner.lock().stats);
        }
        total
    }

    /// Total rendering time saved by cache hits — the paper's
    /// "amortizing rendering costs across many client sessions".
    pub fn amortized_savings(&self) -> Duration {
        self.shards.iter().map(|s| s.inner.lock().amortized).sum()
    }

    /// Tries to become the leader for an *externally produced* render
    /// of `key` — the hook that lets producers which cannot run inside
    /// a closure (the streaming pipeline renders unit-by-unit into a
    /// chunk sink) still participate in single flight.
    ///
    /// Returns `None` when a fresh entry already exists (serve it via
    /// [`Self::lookup`]) or another flight is in progress (join it via
    /// [`Self::join_flight`] or [`Self::render_flight`]). Returns
    /// `Some` when this caller won the leadership: it must eventually
    /// [`ExternalFlight::complete`] the flight, or drop it to abandon
    /// (waiters then retry and elect a new leader).
    pub fn try_lead(self: &Arc<Self>, key: &str) -> Option<ExternalFlight> {
        if self.disk.is_some() {
            self.promote_for_flight(key);
        }
        let shard = self.shard(key);
        let mut inner = shard.inner.lock();
        let now = Instant::now() + inner.time_offset;
        if let Some(entry) = inner.entries.get(key) {
            if entry.age_past_expiry(now).is_zero() {
                return None;
            }
        }
        if inner.flights.contains_key(key) {
            return None;
        }
        let flight = Arc::new(InFlight::new());
        inner.flights.insert(key.to_string(), Arc::clone(&flight));
        Some(ExternalFlight {
            cache: Arc::clone(self),
            key: key.to_string(),
            flight,
            completed: false,
        })
    }
}

/// Leadership of a single-flight render whose artifact is produced
/// outside the cache's closures (see [`RenderCache::try_lead`]).
///
/// Completing publishes the artifact to the cache (and its disk tier)
/// and wakes every waiter; dropping without completing abandons the
/// flight exactly like a panicking closure leader — waiters retry and
/// elect a new leader.
pub struct ExternalFlight {
    cache: Arc<RenderCache>,
    key: String,
    flight: Arc<InFlight>,
    completed: bool,
}

impl ExternalFlight {
    /// The key this flight leads.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Number of waiters currently parked on this flight.
    pub fn waiters(&self) -> u64 {
        self.flight.waiters.load(Ordering::Relaxed)
    }

    /// Publishes the finished artifact: inserts it into the cache,
    /// writes it behind to the disk tier, and wakes every waiter with
    /// the value.
    pub fn complete(mut self, value: impl Into<Bytes>, ttl: Option<Duration>, cost: Duration) {
        let value = value.into();
        let shard = self.cache.shard(&self.key);
        {
            let mut inner = shard.inner.lock();
            self.cache
                .insert_locked(shard, &mut inner, &self.key, value.clone(), ttl, cost);
            if inner
                .flights
                .get(&self.key)
                .is_some_and(|f| Arc::ptr_eq(f, &self.flight))
            {
                inner.flights.remove(&self.key);
            }
        }
        self.cache.write_behind(&self.key, &value, ttl, cost);
        self.flight.result.set(Ok(value));
        self.completed = true;
    }

    /// Abandons the flight explicitly (identical to dropping it).
    pub fn abandon(self) {}
}

impl Drop for ExternalFlight {
    fn drop(&mut self) {
        if self.completed {
            return;
        }
        let shard = self.cache.shard(&self.key);
        let mut inner = shard.inner.lock();
        if inner
            .flights
            .get(&self.key)
            .is_some_and(|f| Arc::ptr_eq(f, &self.flight))
        {
            inner.flights.remove(&self.key);
        }
        drop(inner);
        // Wake waiters *after* the registry slot is free, so a retrying
        // waiter cannot rejoin this dead flight.
        self.flight.result.set(Err(Arc::new(LeaderAbandoned)));
    }
}

impl std::fmt::Debug for ExternalFlight {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExternalFlight")
            .field("key", &self.key)
            .field("completed", &self.completed)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Fingerprint-keyed subtree tier
// ---------------------------------------------------------------------------

/// Statistics snapshot for a [`SubtreeCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubtreeCacheStats {
    /// Lookups that found a cached artifact.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Artifacts evicted by the LRU bound.
    pub evictions: u64,
}

struct SubtreeEntry {
    value: Arc<dyn Any + Send + Sync>,
    last_used: u64,
}

struct SubtreeInner {
    map: HashMap<u64, SubtreeEntry>,
    tick: u64,
    stats: SubtreeCacheStats,
}

/// The incremental re-adaptation tier: finished per-subtree artifacts
/// keyed by a content fingerprint of *everything* that went into
/// building them (the source subtree's serialization fingerprint plus
/// the builder's assembled fragments and the serving base). A hit
/// therefore guarantees a byte-identical artifact — the cache can hand
/// it back without re-running assembly or the browser pre-render.
///
/// Values are type-erased (`Arc<dyn Any>`) so this tier stays agnostic
/// of the pipeline's artifact types; the emit stage downcasts on read.
/// Unlike [`RenderCache`] there is no TTL: fingerprints are
/// self-invalidating (changed content changes the key), so entries only
/// leave via the LRU bound.
pub struct SubtreeCache {
    inner: Mutex<SubtreeInner>,
    capacity: usize,
}

impl std::fmt::Debug for SubtreeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("SubtreeCache")
            .field("capacity", &self.capacity)
            .field("len", &inner.map.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

impl SubtreeCache {
    /// Creates a tier bounded to `capacity` artifacts (min 1).
    pub fn new(capacity: usize) -> SubtreeCache {
        SubtreeCache {
            inner: Mutex::new(SubtreeInner {
                map: HashMap::new(),
                tick: 0,
                stats: SubtreeCacheStats::default(),
            }),
            capacity: capacity.max(1),
        }
    }

    /// Looks an artifact up by fingerprint, refreshing its LRU slot.
    pub fn get(&self, fingerprint: u64) -> Option<Arc<dyn Any + Send + Sync>> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&fingerprint) {
            Some(entry) => {
                entry.last_used = tick;
                let value = Arc::clone(&entry.value);
                inner.stats.hits += 1;
                Some(value)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Stores an artifact under its fingerprint, evicting the
    /// least-recently-used entry when over capacity.
    pub fn put(&self, fingerprint: u64, value: Arc<dyn Any + Send + Sync>) {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(
            fingerprint,
            SubtreeEntry {
                value,
                last_used: tick,
            },
        );
        while inner.map.len() > self.capacity {
            let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            else {
                break;
            };
            inner.map.remove(&oldest);
            inner.stats.evictions += 1;
        }
    }

    /// Number of cached artifacts.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when the tier holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every artifact (stats are kept).
    pub fn clear(&self) {
        self.inner.lock().map.clear();
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> SubtreeCacheStats {
        self.inner.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn put_get_round_trip() {
        let cache = RenderCache::new(4);
        cache.put("a", b"one".to_vec(), None, Duration::ZERO);
        assert_eq!(cache.get("a").as_deref(), Some(&b"one"[..]));
        assert_eq!(cache.get("b"), None);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn ttl_expires_entries() {
        let cache = RenderCache::new(4);
        cache.put(
            "x",
            b"v".to_vec(),
            Some(Duration::from_millis(20)),
            Duration::ZERO,
        );
        assert!(cache.get("x").is_some());
        std::thread::sleep(Duration::from_millis(30));
        assert!(cache.get("x").is_none());
        assert_eq!(cache.stats().expirations, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let cache = RenderCache::new(2);
        cache.put("a", b"1".to_vec(), None, Duration::ZERO);
        cache.put("b", b"2".to_vec(), None, Duration::ZERO);
        let _ = cache.get("a"); // refresh a
        cache.put("c", b"3".to_vec(), None, Duration::ZERO);
        assert!(cache.get("a").is_some());
        assert!(cache.get("b").is_none(), "b should have been evicted");
        assert!(cache.get("c").is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn overwrite_same_key_no_eviction() {
        let cache = RenderCache::new(2);
        cache.put("a", b"1".to_vec(), None, Duration::ZERO);
        cache.put("b", b"2".to_vec(), None, Duration::ZERO);
        cache.put("a", b"1b".to_vec(), None, Duration::ZERO);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.get("a").as_deref(), Some(&b"1b"[..]));
    }

    #[test]
    fn get_or_insert_computes_once() {
        let cache = RenderCache::new(4);
        let mut calls = 0;
        for _ in 0..3 {
            let v = cache.get_or_insert_with("k", None, || {
                calls += 1;
                (Bytes::from_static(b"computed"), Duration::from_millis(100))
            });
            assert_eq!(&v[..], b"computed");
        }
        assert_eq!(calls, 1);
        // Two hits amortized 100 ms each.
        assert_eq!(cache.amortized_savings(), Duration::from_millis(200));
    }

    #[test]
    fn get_or_insert_serves_stale_within_window() {
        let cache = RenderCache::with_stale_window(4, Duration::from_secs(60));
        cache.put(
            "k",
            b"old".to_vec(),
            Some(Duration::from_secs(1)),
            Duration::ZERO,
        );
        cache.advance_clock(Duration::from_secs(10));
        let v = cache.get_or_insert_with("k", None, || {
            panic!("a stale-window entry must be served, not recomputed")
        });
        assert_eq!(&v[..], b"old");
        let stats = cache.stats();
        assert_eq!(stats.stale_hits, 1);
        assert_eq!(stats.misses, 0);
    }

    #[test]
    fn amortization_accumulates_per_hit() {
        let cache = RenderCache::new(4);
        cache.put("snap", b"png".to_vec(), None, Duration::from_secs(2));
        for _ in 0..5 {
            let _ = cache.get("snap");
        }
        assert_eq!(cache.amortized_savings(), Duration::from_secs(10));
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = Arc::new(RenderCache::new(64));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..200 {
                        let key = format!("k{}", (t * 7 + i) % 32);
                        cache.get_or_insert_with(&key, None, || {
                            (Bytes::from(vec![t as u8]), Duration::from_millis(1))
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.len() <= 64);
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 8 * 200);
    }

    #[test]
    fn invalidate_and_clear() {
        let cache = RenderCache::new(4);
        cache.put("a", b"1".to_vec(), None, Duration::ZERO);
        cache.invalidate("a");
        assert!(cache.get("a").is_none());
        cache.put("b", b"2".to_vec(), None, Duration::ZERO);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn stale_window_serves_expired_via_lookup_only() {
        let cache = RenderCache::with_stale_window(4, Duration::from_secs(60));
        cache.put(
            "snap",
            b"png".to_vec(),
            Some(Duration::from_secs(10)),
            Duration::from_millis(500),
        );
        assert!(matches!(cache.lookup("snap"), Lookup::Fresh(_)));
        cache.advance_clock(Duration::from_secs(30));
        // get() hides stale entries but keeps them.
        assert!(cache.get("snap").is_none());
        match cache.lookup("snap") {
            Lookup::Stale { value, age } => {
                assert_eq!(&value[..], b"png");
                assert!(age >= Duration::from_secs(20));
            }
            other => panic!("expected stale, got {other:?}"),
        }
        let stats = cache.stats();
        assert_eq!(stats.stale_hits, 1);
        assert_eq!(stats.expirations, 0, "stale entries are retained");
        // Past the stale window the entry is gone for every API.
        cache.advance_clock(Duration::from_secs(60));
        assert_eq!(cache.lookup("snap"), Lookup::Miss);
        assert_eq!(cache.stats().expirations, 1);
        assert!(cache.is_empty());
    }

    #[test]
    fn refreshing_put_revives_stale_entry() {
        let cache = RenderCache::with_stale_window(4, Duration::from_secs(60));
        cache.put(
            "k",
            b"old".to_vec(),
            Some(Duration::from_secs(5)),
            Duration::ZERO,
        );
        cache.advance_clock(Duration::from_secs(10));
        assert!(matches!(cache.lookup("k"), Lookup::Stale { .. }));
        cache.put(
            "k",
            b"new".to_vec(),
            Some(Duration::from_secs(5)),
            Duration::ZERO,
        );
        assert_eq!(cache.get("k").as_deref(), Some(&b"new"[..]));
    }

    #[test]
    fn hit_ratio() {
        let cache = RenderCache::new(4);
        cache.put("a", b"1".to_vec(), None, Duration::ZERO);
        let _ = cache.get("a");
        let _ = cache.get("a");
        let _ = cache.get("zz");
        let ratio = cache.stats().hit_ratio();
        assert!((ratio - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
    }

    #[test]
    fn hit_ratio_counts_stale_lookups_in_denominator() {
        let cache = RenderCache::with_stale_window(4, Duration::from_secs(60));
        cache.put(
            "a",
            b"1".to_vec(),
            Some(Duration::from_secs(1)),
            Duration::ZERO,
        );
        let _ = cache.get("a");
        let _ = cache.get("a");
        cache.advance_clock(Duration::from_secs(10));
        assert!(matches!(cache.lookup("a"), Lookup::Stale { .. }));
        let _ = cache.get("zz");
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses, stats.stale_hits),
            (2, 1, 1),
            "precondition for the ratio below"
        );
        // Degraded service must not inflate the ratio: 2 / (2 + 1 + 1).
        assert!((stats.hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn expired_entries_are_pruned_before_evicting_live_ones() {
        let cache = RenderCache::new(2);
        cache.put(
            "dead",
            b"x".to_vec(),
            Some(Duration::from_secs(1)),
            Duration::ZERO,
        );
        cache.put("live", b"y".to_vec(), None, Duration::ZERO);
        cache.advance_clock(Duration::from_secs(5));
        assert_eq!(cache.len(), 1, "len reports usable entries only");
        cache.put("new", b"z".to_vec(), None, Duration::ZERO);
        assert!(
            cache.get("live").is_some(),
            "the live entry must survive while a dead one holds a slot"
        );
        assert!(cache.get("new").is_some());
        let stats = cache.stats();
        assert_eq!(
            stats.evictions, 0,
            "pruning a dead entry is not an eviction"
        );
        assert_eq!(stats.expirations, 1);
    }

    #[test]
    fn stale_entries_are_evicted_before_fresh_ones() {
        let cache = RenderCache::with_stale_window(2, Duration::from_secs(100));
        cache.put(
            "stale",
            b"x".to_vec(),
            Some(Duration::from_secs(1)),
            Duration::ZERO,
        );
        cache.put("fresh", b"y".to_vec(), None, Duration::ZERO);
        cache.advance_clock(Duration::from_secs(5));
        // Bump the stale entry's recency above the fresh one's: the
        // victim choice must still prefer the expired entry.
        assert!(matches!(cache.lookup("stale"), Lookup::Stale { .. }));
        cache.put("new", b"z".to_vec(), None, Duration::ZERO);
        assert!(cache.get("fresh").is_some());
        assert_eq!(cache.lookup("stale"), Lookup::Miss);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn shard_capacities_sum_to_total() {
        for (capacity, shards) in [(7, 3), (16, 4), (256, 8), (5, 10), (1, 1)] {
            let cache = RenderCache::with_shards(capacity, Duration::ZERO, shards);
            assert!(cache.shard_count() <= capacity);
            let total: usize = (0..cache.shard_count())
                .map(|i| cache.shard_capacity(i))
                .sum();
            assert_eq!(total, capacity, "capacity {capacity} shards {shards}");
        }
    }

    #[test]
    fn small_caches_collapse_to_one_shard() {
        assert_eq!(RenderCache::new(2).shard_count(), 1);
        assert_eq!(RenderCache::new(32).shard_count(), 1);
        assert_eq!(RenderCache::new(256).shard_count(), 8);
    }

    #[test]
    fn subtree_cache_round_trips_typed_artifacts() {
        let cache = SubtreeCache::new(8);
        assert!(cache.is_empty());
        cache.put(
            7,
            Arc::new("subpage-7".to_string()) as Arc<dyn Any + Send + Sync>,
        );
        let hit = cache
            .get(7)
            .expect("fingerprint 7 was stored")
            .downcast::<String>()
            .expect("value downcasts to the stored type");
        assert_eq!(*hit, "subpage-7");
        assert!(cache.get(8).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 1, 0));
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn subtree_cache_evicts_least_recently_used() {
        let cache = SubtreeCache::new(2);
        cache.put(1, Arc::new(1u32) as Arc<dyn Any + Send + Sync>);
        cache.put(2, Arc::new(2u32) as Arc<dyn Any + Send + Sync>);
        // Touch 1 so 2 becomes the LRU entry, then overflow.
        assert!(cache.get(1).is_some());
        cache.put(3, Arc::new(3u32) as Arc<dyn Any + Send + Sync>);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(2).is_none(), "LRU entry must be evicted");
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn subtree_cache_capacity_floor_is_one() {
        let cache = SubtreeCache::new(0);
        cache.put(1, Arc::new(()) as Arc<dyn Any + Send + Sync>);
        cache.put(2, Arc::new(()) as Arc<dyn Any + Send + Sync>);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(2).is_some());
    }
}
