//! The shared render cache: TTL + LRU with serve-stale degradation,
//! safe for concurrent access.
//!
//! "Certain areas of a site may be defined as cachable across sessions,
//! amortizing the initial pre-rendering cost across many users" (§3.3).
//! Keys are `(page, variant)` strings; values are opaque byte artifacts
//! (snapshot PNGs, pre-rendered fragments, adapted HTML).
//!
//! Expired entries are kept for a configurable *stale window* past
//! their TTL. [`RenderCache::get`] never returns them, but
//! [`RenderCache::lookup`] reports them as [`Lookup::Stale`], which the
//! proxy uses to serve a last-known-good snapshot when the origin is
//! down or its circuit breaker is open — degraded service instead of a
//! 5xx per request.

use msite_support::bytes::Bytes;
use msite_support::sync::Mutex;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Cache statistics snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing (or only an expired entry).
    pub misses: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Entries dropped because their TTL (plus stale window) passed.
    pub expirations: u64,
    /// Lookups answered by an expired entry still inside the stale
    /// window (serve-stale degradation).
    pub stale_hits: u64,
}

impl CacheStats {
    /// Hit ratio in [0, 1]; 0 when no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    value: Bytes,
    expires_at: Option<Instant>,
    last_used: u64,
    cost: Duration,
}

struct Inner {
    entries: HashMap<String, Entry>,
    clock: u64,
    stats: CacheStats,
    amortized: Duration,
    /// Test/harness clock offset added to `Instant::now()`, so TTL and
    /// stale-window behavior can be driven without real sleeps.
    time_offset: Duration,
}

/// Outcome of a [`RenderCache::lookup`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lookup {
    /// A live entry.
    Fresh(Bytes),
    /// An expired entry still inside the stale window — usable only as
    /// degraded output when the authoritative source is unavailable.
    Stale {
        /// The expired artifact.
        value: Bytes,
        /// How long past its TTL the entry is.
        age: Duration,
    },
    /// Nothing usable.
    Miss,
}

/// A concurrent TTL + LRU cache for rendered artifacts.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use msite::cache::RenderCache;
///
/// let cache = RenderCache::new(128);
/// cache.put("forum:snapshot", b"png bytes".to_vec(),
///           Some(Duration::from_secs(3600)), Duration::from_millis(1800));
/// assert!(cache.get("forum:snapshot").is_some());
/// assert_eq!(cache.stats().hits, 1);
/// ```
pub struct RenderCache {
    inner: Mutex<Inner>,
    capacity: usize,
    stale_window: Duration,
}

impl RenderCache {
    /// Creates a cache bounded to `capacity` entries, with no stale
    /// retention (expired entries drop on first touch).
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> RenderCache {
        RenderCache::with_stale_window(capacity, Duration::ZERO)
    }

    /// Creates a cache that keeps expired entries around for
    /// `stale_window` past their TTL, reporting them via
    /// [`Self::lookup`] as [`Lookup::Stale`].
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn with_stale_window(capacity: usize, stale_window: Duration) -> RenderCache {
        assert!(capacity > 0, "cache capacity must be positive");
        RenderCache {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                clock: 0,
                stats: CacheStats::default(),
                amortized: Duration::ZERO,
                time_offset: Duration::ZERO,
            }),
            capacity,
            stale_window,
        }
    }

    /// The configured stale window.
    pub fn stale_window(&self) -> Duration {
        self.stale_window
    }

    /// Advances the cache's notion of "now" by `delta` — a harness hook
    /// that makes TTL/stale-window tests deterministic without sleeping.
    pub fn advance_clock(&self, delta: Duration) {
        self.inner.lock().time_offset += delta;
    }

    /// Inserts an artifact. `ttl == None` means "until evicted". `cost`
    /// records how long the artifact took to produce, feeding the
    /// amortization accounting.
    pub fn put(&self, key: &str, value: impl Into<Bytes>, ttl: Option<Duration>, cost: Duration) {
        let mut inner = self.inner.lock();
        let now = Instant::now() + inner.time_offset;
        inner.clock += 1;
        let last_used = inner.clock;
        if inner.entries.len() >= self.capacity && !inner.entries.contains_key(key) {
            // Evict the least recently used entry.
            if let Some(oldest) = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.entries.remove(&oldest);
                inner.stats.evictions += 1;
            }
        }
        inner.entries.insert(
            key.to_string(),
            Entry {
                value: value.into(),
                expires_at: ttl.map(|t| now + t),
                last_used,
                cost,
            },
        );
    }

    /// Fetches a live artifact, refreshing its recency. Every hit adds
    /// the entry's production cost to the amortized-savings counter.
    /// Expired entries are never returned here (use [`Self::lookup`] for
    /// stale fallback); entries past the stale window are dropped.
    pub fn get(&self, key: &str) -> Option<Bytes> {
        match self.lookup_at(key, false) {
            Lookup::Fresh(value) => Some(value),
            Lookup::Stale { .. } | Lookup::Miss => None,
        }
    }

    /// Fetches an artifact, reporting freshness: fresh entries behave
    /// like [`Self::get`]; expired entries inside the stale window come
    /// back as [`Lookup::Stale`] with their age past expiry.
    pub fn lookup(&self, key: &str) -> Lookup {
        self.lookup_at(key, true)
    }

    fn lookup_at(&self, key: &str, allow_stale: bool) -> Lookup {
        let mut inner = self.inner.lock();
        let now = Instant::now() + inner.time_offset;
        inner.clock += 1;
        let clock = inner.clock;
        let Some(entry) = inner.entries.get_mut(key) else {
            inner.stats.misses += 1;
            return Lookup::Miss;
        };
        let age = entry
            .expires_at
            .map(|t| now.saturating_duration_since(t))
            .unwrap_or(Duration::ZERO);
        if age.is_zero() {
            entry.last_used = clock;
            let value = entry.value.clone();
            let cost = entry.cost;
            inner.stats.hits += 1;
            inner.amortized += cost;
            return Lookup::Fresh(value);
        }
        if age > self.stale_window {
            // Beyond salvage: drop the entry whichever API touched it.
            inner.entries.remove(key);
            inner.stats.expirations += 1;
            inner.stats.misses += 1;
            return Lookup::Miss;
        }
        if !allow_stale {
            inner.stats.misses += 1;
            return Lookup::Miss;
        }
        // Refresh recency: an entry serving as degraded output must not
        // be the next LRU victim.
        entry.last_used = clock;
        let value = entry.value.clone();
        inner.stats.stale_hits += 1;
        Lookup::Stale { value, age }
    }

    /// Fetches, or computes-and-stores on miss. The closure returns the
    /// artifact plus its production cost.
    pub fn get_or_insert_with(
        &self,
        key: &str,
        ttl: Option<Duration>,
        produce: impl FnOnce() -> (Bytes, Duration),
    ) -> Bytes {
        if let Some(hit) = self.get(key) {
            return hit;
        }
        let (value, cost) = produce();
        self.put(key, value.clone(), ttl, cost);
        value
    }

    /// Drops an entry.
    pub fn invalidate(&self, key: &str) {
        self.inner.lock().entries.remove(key);
    }

    /// Drops everything.
    pub fn clear(&self) {
        self.inner.lock().entries.clear();
    }

    /// Number of live entries (expired ones may still be counted until
    /// touched).
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }

    /// Total rendering time saved by cache hits — the paper's
    /// "amortizing rendering costs across many client sessions".
    pub fn amortized_savings(&self) -> Duration {
        self.inner.lock().amortized
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn put_get_round_trip() {
        let cache = RenderCache::new(4);
        cache.put("a", b"one".to_vec(), None, Duration::ZERO);
        assert_eq!(cache.get("a").as_deref(), Some(&b"one"[..]));
        assert_eq!(cache.get("b"), None);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn ttl_expires_entries() {
        let cache = RenderCache::new(4);
        cache.put(
            "x",
            b"v".to_vec(),
            Some(Duration::from_millis(20)),
            Duration::ZERO,
        );
        assert!(cache.get("x").is_some());
        std::thread::sleep(Duration::from_millis(30));
        assert!(cache.get("x").is_none());
        assert_eq!(cache.stats().expirations, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let cache = RenderCache::new(2);
        cache.put("a", b"1".to_vec(), None, Duration::ZERO);
        cache.put("b", b"2".to_vec(), None, Duration::ZERO);
        let _ = cache.get("a"); // refresh a
        cache.put("c", b"3".to_vec(), None, Duration::ZERO);
        assert!(cache.get("a").is_some());
        assert!(cache.get("b").is_none(), "b should have been evicted");
        assert!(cache.get("c").is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn overwrite_same_key_no_eviction() {
        let cache = RenderCache::new(2);
        cache.put("a", b"1".to_vec(), None, Duration::ZERO);
        cache.put("b", b"2".to_vec(), None, Duration::ZERO);
        cache.put("a", b"1b".to_vec(), None, Duration::ZERO);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.get("a").as_deref(), Some(&b"1b"[..]));
    }

    #[test]
    fn get_or_insert_computes_once() {
        let cache = RenderCache::new(4);
        let mut calls = 0;
        for _ in 0..3 {
            let v = cache.get_or_insert_with("k", None, || {
                calls += 1;
                (Bytes::from_static(b"computed"), Duration::from_millis(100))
            });
            assert_eq!(&v[..], b"computed");
        }
        assert_eq!(calls, 1);
        // Two hits amortized 100 ms each.
        assert_eq!(cache.amortized_savings(), Duration::from_millis(200));
    }

    #[test]
    fn amortization_accumulates_per_hit() {
        let cache = RenderCache::new(4);
        cache.put("snap", b"png".to_vec(), None, Duration::from_secs(2));
        for _ in 0..5 {
            let _ = cache.get("snap");
        }
        assert_eq!(cache.amortized_savings(), Duration::from_secs(10));
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = Arc::new(RenderCache::new(64));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..200 {
                        let key = format!("k{}", (t * 7 + i) % 32);
                        cache.get_or_insert_with(&key, None, || {
                            (Bytes::from(vec![t as u8]), Duration::from_millis(1))
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.len() <= 64);
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 8 * 200);
    }

    #[test]
    fn invalidate_and_clear() {
        let cache = RenderCache::new(4);
        cache.put("a", b"1".to_vec(), None, Duration::ZERO);
        cache.invalidate("a");
        assert!(cache.get("a").is_none());
        cache.put("b", b"2".to_vec(), None, Duration::ZERO);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn stale_window_serves_expired_via_lookup_only() {
        let cache = RenderCache::with_stale_window(4, Duration::from_secs(60));
        cache.put(
            "snap",
            b"png".to_vec(),
            Some(Duration::from_secs(10)),
            Duration::from_millis(500),
        );
        assert!(matches!(cache.lookup("snap"), Lookup::Fresh(_)));
        cache.advance_clock(Duration::from_secs(30));
        // get() hides stale entries but keeps them.
        assert!(cache.get("snap").is_none());
        match cache.lookup("snap") {
            Lookup::Stale { value, age } => {
                assert_eq!(&value[..], b"png");
                assert!(age >= Duration::from_secs(20));
            }
            other => panic!("expected stale, got {other:?}"),
        }
        let stats = cache.stats();
        assert_eq!(stats.stale_hits, 1);
        assert_eq!(stats.expirations, 0, "stale entries are retained");
        // Past the stale window the entry is gone for every API.
        cache.advance_clock(Duration::from_secs(60));
        assert_eq!(cache.lookup("snap"), Lookup::Miss);
        assert_eq!(cache.stats().expirations, 1);
        assert!(cache.is_empty());
    }

    #[test]
    fn refreshing_put_revives_stale_entry() {
        let cache = RenderCache::with_stale_window(4, Duration::from_secs(60));
        cache.put(
            "k",
            b"old".to_vec(),
            Some(Duration::from_secs(5)),
            Duration::ZERO,
        );
        cache.advance_clock(Duration::from_secs(10));
        assert!(matches!(cache.lookup("k"), Lookup::Stale { .. }));
        cache.put(
            "k",
            b"new".to_vec(),
            Some(Duration::from_secs(5)),
            Duration::ZERO,
        );
        assert_eq!(cache.get("k").as_deref(), Some(&b"new"[..]));
    }

    #[test]
    fn hit_ratio() {
        let cache = RenderCache::new(4);
        cache.put("a", b"1".to_vec(), None, Duration::ZERO);
        let _ = cache.get("a");
        let _ = cache.get("a");
        let _ = cache.get("zz");
        let ratio = cache.stats().hit_ratio();
        assert!((ratio - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
    }
}
