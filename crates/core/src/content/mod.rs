//! Content-aware adaptation: readability scoring, boilerplate
//! stripping, and bandwidth-aware fidelity tiers.
//!
//! The paper's attribute menu is *manual*: an administrator points at
//! objects and assigns treatments. This module adds the three
//! content-aware attributes that need no pointing — the proxy decides
//! from the page itself:
//!
//! - [`score`]: readability-style candidate scoring over the per-subtree
//!   structural metrics `msite-html` accumulates during the tidy walk
//!   ([`msite_html::SubtreeMetrics`]), powering `extract-main-content`;
//! - [`boilerplate`]: tag/id/class token classification of ad-, nav-,
//!   footer-, sidebar-, social- and comment-shaped blocks, powering
//!   `strip-boilerplate` at three aggressiveness levels;
//! - [`fidelity`]: the bandwidth-class → image-caps table and the
//!   request-time tier resolution (explicit tier, `x-msite-bandwidth`
//!   header, or User-Agent device class), powering `fidelity-tier`.
//!
//! All three read only the document and its metrics — no network, no
//! browser — so scoring and stripping stay on the lightweight path; only
//! `fidelity-tier` (which re-encodes images) needs the render engine.

pub mod boilerplate;
pub mod fidelity;
pub mod score;

pub use boilerplate::{classify, strip_plan, BoilerKind, StripAction};
pub use fidelity::{resolve_tier, tier_caps};
pub use score::{content_score, extract_main_content, top_candidate, ExtractOutcome};
