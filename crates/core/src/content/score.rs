//! Readability-style content scoring and main-content extraction.
//!
//! The score of a block is built from the structural metrics the tidy
//! walk already produced ([`SubtreeMetrics`]): content text weighted by
//! how little of it is link text, a bonus per paragraph, and a heavy
//! multiplicative penalty when the block's tag/id/class tokens classify
//! it as boilerplate. The top-scored candidate is the page's main
//! content; extraction keeps it (plus qualifying siblings) and detaches
//! everything else on the way up to the extraction scope.

use super::boilerplate::classify;
use msite_html::{Document, MetricsMap, NodeId, SubtreeMetrics};

/// Tags considered as main-content candidates. `body` itself is never a
/// candidate — extraction inside a scope must pick something *within*
/// it, otherwise there is nothing to strip.
const CANDIDATE_TAGS: [&str; 5] = ["article", "main", "section", "div", "td"];

/// Weight of one paragraph, in score points (text bytes × text purity).
const PARAGRAPH_BONUS: f64 = 25.0;

/// Multiplier applied to a block classified as boilerplate: enough to
/// keep an ad-shaped block from ever out-scoring real prose.
const BOILER_FACTOR: f64 = 0.05;

/// Readability score for one block: content-text bytes weighted by text
/// purity (`1 − link_density`), plus a per-paragraph bonus, scaled down
/// hard when `boiler` says the block is ad/nav/footer/sidebar-shaped.
/// Deterministic and in document-byte units, so thresholds are
/// comparable across pages.
pub fn content_score(metrics: &SubtreeMetrics, boiler: bool) -> f64 {
    let text = f64::from(metrics.text_bytes);
    let purity = 1.0 - metrics.link_density();
    let base = text * purity + f64::from(metrics.paragraphs) * PARAGRAPH_BONUS;
    if boiler {
        base * BOILER_FACTOR
    } else {
        base
    }
}

/// Scores every candidate element under `scope` (exclusive) and returns
/// the top one with its score — the readability "top candidate". Ties
/// keep the first candidate in document order. `None` when the scope
/// holds no candidate element.
pub fn top_candidate(doc: &Document, scope: NodeId, metrics: &MetricsMap) -> Option<(NodeId, f64)> {
    let mut best: Option<(NodeId, f64)> = None;
    for id in doc.descendants(scope) {
        let Some(tag) = doc.tag_name(id) else {
            continue;
        };
        if !CANDIDATE_TAGS.iter().any(|t| tag.eq_ignore_ascii_case(t)) {
            continue;
        }
        let Some(m) = metrics.of(id) else { continue };
        let score = content_score(&m, classify(doc, id).is_some());
        match best {
            Some((_, top)) if top >= score => {}
            _ => best = Some((id, score)),
        }
    }
    best
}

/// What [`extract_main_content`] did to the document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtractOutcome {
    /// The top-scored candidate that was kept.
    pub top: NodeId,
    /// Siblings of the top candidate absorbed (kept) alongside it.
    pub absorbed: u32,
    /// Nodes detached on the way up from the candidate to the scope.
    pub removed: u32,
}

/// Extracts the main content under `scope`: finds the top candidate,
/// absorbs siblings whose score reaches 20% of the winner's (readability
/// sibling absorption — a multi-`div` article body survives whole), then
/// detaches every non-ancestor sibling on the path from the candidate up
/// to `scope`. Returns `None` (document untouched) when no candidate
/// exists.
pub fn extract_main_content(
    doc: &mut Document,
    scope: NodeId,
    metrics: &MetricsMap,
) -> Option<ExtractOutcome> {
    let (top, top_score) = top_candidate(doc, scope, metrics)?;
    let mut outcome = ExtractOutcome {
        top,
        absorbed: 0,
        removed: 0,
    };
    let sibling_threshold = (top_score * 0.2).max(PARAGRAPH_BONUS);
    // Keep set: the winner plus absorbed siblings under the same parent.
    let mut keep = vec![top];
    if let Some(parent) = doc.node(top).parent() {
        for child in doc.children(parent).collect::<Vec<_>>() {
            if child == top {
                continue;
            }
            let qualifies = doc.tag_name(child).is_some()
                && metrics
                    .of(child)
                    .map(|m| content_score(&m, classify(doc, child).is_some()))
                    .is_some_and(|s| s >= sibling_threshold);
            if qualifies {
                keep.push(child);
                outcome.absorbed += 1;
            }
        }
        for child in doc.children(parent).collect::<Vec<_>>() {
            if !keep.contains(&child) {
                doc.detach(child);
                outcome.removed += 1;
            }
        }
        // Walk up: at every level between the candidate's parent and the
        // scope, only the path node survives.
        let mut cursor = parent;
        while cursor != scope {
            let Some(up) = doc.node(cursor).parent() else {
                break;
            };
            for child in doc.children(up).collect::<Vec<_>>() {
                if child != cursor {
                    doc.detach(child);
                    outcome.removed += 1;
                }
            }
            cursor = up;
        }
    }
    Some(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msite_html::{measure, parse_document};

    const PAGE: &str = "<html><body>\
        <div id=\"nav\" class=\"menu\"><a href=\"/\">home</a> <a href=\"/b\">boards</a> \
        <a href=\"/c\">classifieds</a></div>\
        <div id=\"story\"><p>The grain runs true along this board and the finish \
        coats cure hard overnight in the shop.</p><p>Clamps hold the joints square \
        until the glue sets; scrape the squeeze-out before it skins over.</p></div>\
        <div id=\"promo\" class=\"ad banner\"><p>Buy the premium plan now, best \
        prices of the season, limited stock, order today and save big money.</p></div>\
        <div id=\"footer\">contact us</div>\
        </body></html>";

    #[test]
    fn story_out_scores_nav_and_ads() {
        let doc = parse_document(PAGE);
        let m = measure(&doc);
        let (top, score) = top_candidate(&doc, doc.root(), &m).unwrap();
        assert_eq!(doc.attr(top, "id"), Some("story"));
        assert!(score > 0.0);
    }

    #[test]
    fn boiler_penalty_buries_ad_shaped_prose() {
        let doc = parse_document(PAGE);
        let m = measure(&doc);
        let promo = doc.element_by_id("promo").unwrap();
        let story = doc.element_by_id("story").unwrap();
        let promo_score = content_score(&m.of(promo).unwrap(), true);
        let story_score = content_score(&m.of(story).unwrap(), false);
        assert!(
            promo_score < story_score * 0.2,
            "{promo_score} {story_score}"
        );
    }

    #[test]
    fn extraction_keeps_story_and_drops_the_rest() {
        let mut doc = parse_document(PAGE);
        let m = measure(&doc);
        let root = doc.root();
        let outcome = extract_main_content(&mut doc, root, &m).unwrap();
        assert_eq!(doc.attr(outcome.top, "id"), Some("story"));
        assert!(outcome.removed >= 3, "{outcome:?}");
        let html = doc.to_html();
        assert!(html.contains("grain runs true"));
        assert!(!html.contains("Buy the premium plan"));
        assert!(!html.contains("classifieds"));
    }

    #[test]
    fn no_candidate_is_a_no_op() {
        let mut doc = parse_document("<html><body><p>just text</p></body></html>");
        let before = doc.to_html();
        let m = measure(&doc);
        let root = doc.root();
        assert!(extract_main_content(&mut doc, root, &m).is_none());
        assert_eq!(doc.to_html(), before);
    }
}
