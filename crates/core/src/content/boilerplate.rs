//! Boilerplate classification and the strip plan.
//!
//! Classification reads only what the markup declares about itself —
//! the tag name and the `id`/`class` tokens — never the text, so a page
//! that *talks about* advertising is safe while a block that *is* an ad
//! slot (`<div class="ad banner">`) is caught. The strip plan turns the
//! classification into an ordered list of detachments honoring two
//! invariants the property suite pins: the top-scored content candidate
//! (and its ancestors) are never stripped, and aggressiveness 0 is the
//! identity.

use super::score::top_candidate;
use msite_html::{Document, MetricsMap, NodeId};

/// Why a block was classified as boilerplate. The variant name is the
/// `kind` label on `msite_blocks_stripped_total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoilerKind {
    /// Ad-shaped: `ad`, `ads`, `advert*`, `sponsor*`, `banner`, `promo`,
    /// `adsense`, `doubleclick` tokens.
    Ad,
    /// Navigation: the `<nav>` tag or `nav*`, `menu`, `breadcrumb*`,
    /// `topbar` tokens.
    Nav,
    /// Footer: the `<footer>` tag or `footer`, `copyright`, `legal`
    /// tokens.
    Footer,
    /// Sidebar: the `<aside>` tag or `sidebar`, `rail`, `widget` tokens.
    Sidebar,
    /// Social chrome: `social`, `share`, `sharing`, `follow` tokens.
    Social,
    /// Comment threads: `comment`, `comments`, `disqus`, `respond`
    /// tokens.
    Comment,
}

impl BoilerKind {
    /// All kinds, in stripping-priority order (ads first).
    pub const ALL: [BoilerKind; 6] = [
        BoilerKind::Ad,
        BoilerKind::Nav,
        BoilerKind::Footer,
        BoilerKind::Sidebar,
        BoilerKind::Social,
        BoilerKind::Comment,
    ];

    /// Stable lower-case label (the metric label value).
    pub const fn name(self) -> &'static str {
        match self {
            BoilerKind::Ad => "ad",
            BoilerKind::Nav => "nav",
            BoilerKind::Footer => "footer",
            BoilerKind::Sidebar => "sidebar",
            BoilerKind::Social => "social",
            BoilerKind::Comment => "comment",
        }
    }

    /// The minimum `strip-boilerplate` aggressiveness that strips this
    /// kind: 1 removes only ads, 2 adds structural chrome (nav, footer,
    /// sidebar, social), 3 adds comment threads.
    pub const fn min_aggressiveness(self) -> u8 {
        match self {
            BoilerKind::Ad => 1,
            BoilerKind::Nav | BoilerKind::Footer | BoilerKind::Sidebar | BoilerKind::Social => 2,
            BoilerKind::Comment => 3,
        }
    }
}

/// Token tables: a block is classified by the first kind (in
/// [`BoilerKind::ALL`] order) any of its id/class tokens matches.
fn token_kind(token: &str) -> Option<BoilerKind> {
    Some(match token {
        "ad" | "ads" | "advert" | "adverts" | "advertisement" | "advertising" | "sponsor"
        | "sponsored" | "banner" | "promo" | "adsense" | "doubleclick" => BoilerKind::Ad,
        "nav" | "navbar" | "navigation" | "menu" | "breadcrumb" | "breadcrumbs" | "topbar" => {
            BoilerKind::Nav
        }
        "footer" | "copyright" | "legal" => BoilerKind::Footer,
        "sidebar" | "rail" | "widget" | "widgets" => BoilerKind::Sidebar,
        "social" | "share" | "sharing" | "follow" => BoilerKind::Social,
        "comment" | "comments" | "disqus" | "respond" => BoilerKind::Comment,
        _ => return None,
    })
}

/// Classifies one element from its tag name and `id`/`class` tokens
/// (split on any non-alphanumeric character, lower-cased). Non-elements
/// and unclassified elements return `None`.
pub fn classify(doc: &Document, id: NodeId) -> Option<BoilerKind> {
    let tag = doc.tag_name(id)?;
    match tag.to_ascii_lowercase().as_str() {
        "nav" => return Some(BoilerKind::Nav),
        "footer" => return Some(BoilerKind::Footer),
        "aside" => return Some(BoilerKind::Sidebar),
        _ => {}
    }
    let mut found: Option<BoilerKind> = None;
    let mut consider = |kind: BoilerKind| {
        let rank = |k: BoilerKind| BoilerKind::ALL.iter().position(|&x| x == k).unwrap_or(6);
        if found.is_none_or(|current| rank(kind) < rank(current)) {
            found = Some(kind);
        }
    };
    for attr in ["id", "class"] {
        let Some(value) = doc.attr(id, attr) else {
            continue;
        };
        for token in value
            .split(|c: char| !c.is_ascii_alphanumeric())
            .filter(|t| !t.is_empty())
        {
            if let Some(kind) = token_kind(&token.to_ascii_lowercase()) {
                consider(kind);
            }
        }
    }
    found
}

/// One block the strip plan will detach.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripAction {
    /// The boilerplate block's root.
    pub node: NodeId,
    /// Why it is stripped (the metric label).
    pub kind: BoilerKind,
}

/// Builds the ordered list of boilerplate blocks to detach under
/// `scope` at the given aggressiveness (0 = identity, 1 = ads, 2 = +
/// nav/footer/sidebar/social, 3+ = + comments).
///
/// Invariants:
/// - only top-most classified blocks appear (a stripped block's
///   descendants are not listed again);
/// - the top-scored content candidate and every one of its ancestors
///   are protected, even when ad-shaped — stripping never deletes the
///   content the reader came for;
/// - actions come back in document order, so applying them is
///   deterministic.
pub fn strip_plan(
    doc: &Document,
    scope: NodeId,
    metrics: &MetricsMap,
    aggressiveness: u8,
) -> Vec<StripAction> {
    if aggressiveness == 0 {
        return Vec::new();
    }
    // Protected path: the top candidate and its ancestors up to the
    // document root (the scope check below only sees nodes under the
    // scope anyway).
    let mut protected = Vec::new();
    if let Some((top, _)) = top_candidate(doc, scope, metrics) {
        let mut cursor = Some(top);
        while let Some(id) = cursor {
            protected.push(id);
            cursor = doc.node(id).parent();
        }
    }
    let mut plan = Vec::new();
    let mut walk: Vec<NodeId> = vec![scope];
    while let Some(id) = walk.pop() {
        // Manual DFS so a stripped block's subtree is skipped whole;
        // children are pushed in reverse to keep document order.
        let is_scope = id == scope;
        let stripped = !is_scope
            && !protected.contains(&id)
            && classify(doc, id)
                .filter(|kind| kind.min_aggressiveness() <= aggressiveness)
                .map(|kind| {
                    plan.push(StripAction { node: id, kind });
                })
                .is_some();
        if !stripped {
            let children: Vec<NodeId> = doc.children(id).collect();
            walk.extend(children.into_iter().rev());
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use msite_html::{measure, parse_document};

    const PAGE: &str = "<html><body>\
        <nav id=\"top\"><a href=\"/\">home</a></nav>\
        <div class=\"ad banner\"><div class=\"ad-inner\">buy now</div></div>\
        <div id=\"story\" class=\"ad\"><p>Real prose the protection invariant must \
        keep even though the id tokens look ad-shaped to the classifier, because \
        it is the top scored candidate on this page by a wide margin.</p></div>\
        <aside class=\"widget\">related</aside>\
        <div id=\"thread\" class=\"comments\"><p>first!</p></div>\
        </body></html>";

    #[test]
    fn classification_reads_tags_and_tokens() {
        let doc = parse_document(PAGE);
        let kind = |id: &str| classify(&doc, doc.element_by_id(id).unwrap());
        assert_eq!(kind("top"), Some(BoilerKind::Nav));
        assert_eq!(kind("thread"), Some(BoilerKind::Comment));
        let aside = doc
            .descendants(doc.root())
            .find(|&n| doc.is_element_named(n, "aside"))
            .unwrap();
        assert_eq!(classify(&doc, aside), Some(BoilerKind::Sidebar));
    }

    #[test]
    fn aggressiveness_zero_is_identity() {
        let doc = parse_document(PAGE);
        let m = measure(&doc);
        assert!(strip_plan(&doc, doc.root(), &m, 0).is_empty());
    }

    #[test]
    fn levels_widen_the_plan() {
        let doc = parse_document(PAGE);
        let m = measure(&doc);
        let kinds = |agg: u8| -> Vec<BoilerKind> {
            strip_plan(&doc, doc.root(), &m, agg)
                .iter()
                .map(|a| a.kind)
                .collect()
        };
        assert_eq!(kinds(1), vec![BoilerKind::Ad]);
        assert_eq!(
            kinds(2),
            vec![BoilerKind::Nav, BoilerKind::Ad, BoilerKind::Sidebar]
        );
        assert_eq!(
            kinds(3),
            vec![
                BoilerKind::Nav,
                BoilerKind::Ad,
                BoilerKind::Sidebar,
                BoilerKind::Comment
            ]
        );
    }

    #[test]
    fn top_candidate_is_protected_despite_ad_tokens() {
        let doc = parse_document(PAGE);
        let m = measure(&doc);
        let story = doc.element_by_id("story").unwrap();
        for agg in 1..=3u8 {
            assert!(
                strip_plan(&doc, doc.root(), &m, agg)
                    .iter()
                    .all(|a| a.node != story),
                "story stripped at aggressiveness {agg}"
            );
        }
    }

    #[test]
    fn nested_boiler_listed_once() {
        let doc = parse_document(PAGE);
        let m = measure(&doc);
        let plan = strip_plan(&doc, doc.root(), &m, 1);
        assert_eq!(plan.len(), 1, "{plan:?}");
        assert_eq!(doc.attr(plan[0].node, "class"), Some("ad banner"));
    }
}
