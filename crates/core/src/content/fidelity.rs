//! Bandwidth-aware fidelity tiers: the tier → image-caps table and
//! request-time tier resolution.
//!
//! The `fidelity-tier` attribute re-encodes a target's images under
//! per-tier quality and dimension caps. Which tier applies is resolved
//! per request: an explicit tier in the spec wins; otherwise the
//! client's `x-msite-bandwidth` header (`2g`/`3g`/`wifi`, as set by
//! carrier gateways or the device simulator); otherwise the User-Agent's
//! device class via [`msite_device::detect_device`] — the same
//! profile-level default link the page-load simulator uses, so the bytes
//! the proxy sends match the link the simulation assumes.

use msite_device::detect_device;
use msite_net::BandwidthClass;
use msite_render::FidelityCaps;

/// Header a client (or the device simulator) sets to pin its bandwidth
/// class, e.g. `x-msite-bandwidth: 2g`.
pub const BANDWIDTH_HEADER: &str = "x-msite-bandwidth";

/// The tier table: image caps per bandwidth class. A 2G link gets
/// thumbnail-sized, heavily quantized images; WiFi keeps near-full
/// fidelity. Monotone in the class order, which the conformance bench
/// checks by comparing bytes on the wire.
pub const fn tier_caps(class: BandwidthClass) -> FidelityCaps {
    match class {
        BandwidthClass::TwoG => FidelityCaps {
            max_width: 160,
            quality: 20,
        },
        BandwidthClass::ThreeG => FidelityCaps {
            max_width: 320,
            quality: 40,
        },
        BandwidthClass::Wifi => FidelityCaps {
            max_width: 1_024,
            quality: 70,
        },
    }
}

/// Resolves the tier for one request: `explicit` (a pinned tier in the
/// spec) wins, then a parseable `x-msite-bandwidth` header value, then
/// the User-Agent's device class default.
pub fn resolve_tier(
    explicit: Option<BandwidthClass>,
    header: Option<&str>,
    user_agent: &str,
) -> BandwidthClass {
    if let Some(tier) = explicit {
        return tier;
    }
    if let Some(tier) = header.and_then(BandwidthClass::parse) {
        return tier;
    }
    detect_device(user_agent).default_bandwidth()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caps_are_monotone_in_class_order() {
        let mut last: Option<FidelityCaps> = None;
        for class in BandwidthClass::ALL {
            let caps = tier_caps(class);
            if let Some(prev) = last {
                assert!(caps.max_width > prev.max_width);
                assert!(caps.quality > prev.quality);
            }
            last = Some(caps);
        }
    }

    #[test]
    fn resolution_precedence() {
        let bb = msite_device::DeviceProfile::blackberry_tour();
        // Explicit beats everything.
        assert_eq!(
            resolve_tier(Some(BandwidthClass::Wifi), Some("2g"), &bb.user_agent),
            BandwidthClass::Wifi
        );
        // Header beats the UA.
        assert_eq!(
            resolve_tier(None, Some("3g"), &bb.user_agent),
            BandwidthClass::ThreeG
        );
        // Unparseable header falls back to the UA's device class.
        assert_eq!(
            resolve_tier(None, Some("carrier-pigeon"), &bb.user_agent),
            BandwidthClass::TwoG
        );
        assert_eq!(
            resolve_tier(None, None, &bb.user_agent),
            BandwidthClass::TwoG
        );
        // Unknown UA = desktop class = wifi.
        assert_eq!(resolve_tier(None, None, "curl/8.0"), BandwidthClass::Wifi);
    }
}
