//! Crash-safe persistent second tier for the render cache.
//!
//! The in-memory [`RenderCache`](crate::cache::RenderCache) dies with
//! the process, and with it the working set whose amortized rendering
//! cost the paper's economics depend on (§3.3). This module adds a
//! content-checksummed on-disk artifact store underneath it:
//!
//! - **Segments** (`seg-<n>.dat`): append-only files of raw artifact
//!   bytes. Rotated at a size threshold; the oldest segment is dropped
//!   whole when the tier exceeds its byte budget.
//! - **Index journal** (`index.journal`): an append-only log of fixed-
//!   framed records (`MAGIC | len | FNV-64(payload) | payload`) mapping
//!   cache keys to `(segment, offset, len, artifact checksum, absolute
//!   expiry, render cost)`. Replay tolerates arbitrary corruption:
//!   torn or bit-flipped records fail their checksum, are *quarantined*
//!   (counted, never trusted), and the scanner resynchronizes on the
//!   next magic marker — a damaged journal degrades to a smaller warm
//!   set, never a panic.
//! - **Write-behind**: `put` enqueues; a background writer drains the
//!   queue so the serving path never blocks on disk. [`DiskTier::flush`]
//!   waits for the queue to drain (tests and orderly shutdown).
//!
//! Artifact bytes carry their own FNV-64, verified on every read, so a
//! torn segment append (crash mid-write) is detected at `get` time and
//! quarantined the same way.
//!
//! The [`DiskBackend`] trait abstracts the byte store: [`FsDisk`] is
//! the real directory-backed implementation, [`MemDisk`] an in-memory
//! one whose contents survive a simulated process restart (tests share
//! the `Arc`), and [`FlakyDisk`] a fault-injection wrapper in the
//! spirit of `FlakyOrigin` — seeded torn writes, bit flips, `ENOSPC`,
//! and slow fsync.

use msite_support::bytes::Bytes;
use msite_support::sync::{Condvar, Mutex};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, SystemTime};

/// Per-record framing marker in the index journal (`b"MSJ1"`).
pub const JOURNAL_MAGIC: [u8; 4] = *b"MSJ1";
/// Upper bound on a single journal record's payload; anything larger is
/// treated as corruption during replay.
pub const MAX_RECORD_BYTES: usize = 1 << 20;
const JOURNAL: &str = "index.journal";

fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0100_0000_01B3);
    }
    hash
}

fn unix_millis_now() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

// ---------------------------------------------------------------------------
// DiskBackend: the byte store under the tier
// ---------------------------------------------------------------------------

/// A flat namespace of append-only byte files. Implementations must be
/// safe for concurrent use; the tier serializes writes itself.
pub trait DiskBackend: Send + Sync {
    /// Reads an entire file.
    ///
    /// # Errors
    ///
    /// `NotFound` when the file does not exist, or the backend's I/O
    /// error.
    fn read(&self, path: &str) -> io::Result<Vec<u8>>;
    /// Reads `len` bytes at `offset`.
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` when the range extends past the file, or the
    /// backend's I/O error.
    fn read_at(&self, path: &str, offset: u64, len: usize) -> io::Result<Vec<u8>>;
    /// Appends to a file, creating it if needed. A crashing or faulty
    /// device may persist only a prefix — callers learn the truth from
    /// [`size`](DiskBackend::size), not the return value.
    ///
    /// # Errors
    ///
    /// The backend's I/O error (e.g. `ENOSPC`).
    fn append(&self, path: &str, data: &[u8]) -> io::Result<()>;
    /// Current size of a file (0 when absent).
    ///
    /// # Errors
    ///
    /// The backend's I/O error.
    fn size(&self, path: &str) -> io::Result<u64>;
    /// Durably flushes a file.
    ///
    /// # Errors
    ///
    /// The backend's I/O error.
    fn sync(&self, path: &str) -> io::Result<()>;
    /// Deletes a file (idempotent).
    ///
    /// # Errors
    ///
    /// The backend's I/O error (not `NotFound`).
    fn remove(&self, path: &str) -> io::Result<()>;
    /// Names of all files present.
    ///
    /// # Errors
    ///
    /// The backend's I/O error.
    fn list(&self) -> io::Result<Vec<String>>;
}

/// Directory-backed [`DiskBackend`] — the production implementation.
#[derive(Debug)]
pub struct FsDisk {
    root: std::path::PathBuf,
}

impl FsDisk {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates the `create_dir_all` failure.
    pub fn open(dir: impl Into<std::path::PathBuf>) -> io::Result<FsDisk> {
        let root = dir.into();
        std::fs::create_dir_all(&root)?;
        Ok(FsDisk { root })
    }

    fn path_of(&self, name: &str) -> std::path::PathBuf {
        self.root.join(name)
    }
}

impl DiskBackend for FsDisk {
    fn read(&self, path: &str) -> io::Result<Vec<u8>> {
        std::fs::read(self.path_of(path))
    }

    fn read_at(&self, path: &str, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = std::fs::File::open(self.path_of(path))?;
        file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        file.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn append(&self, path: &str, data: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path_of(path))?;
        file.write_all(data)
    }

    fn size(&self, path: &str) -> io::Result<u64> {
        match std::fs::metadata(self.path_of(path)) {
            Ok(meta) => Ok(meta.len()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(e),
        }
    }

    fn sync(&self, path: &str) -> io::Result<()> {
        match std::fs::OpenOptions::new()
            .read(true)
            .open(self.path_of(path))
        {
            Ok(file) => file.sync_all(),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        match std::fs::remove_file(self.path_of(path)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Some(name) = entry.file_name().to_str() {
                    names.push(name.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }
}

/// In-memory [`DiskBackend`]. Cloning shares the underlying files, so a
/// test can hand the same `MemDisk` to a "restarted" tier and exercise
/// warm-start recovery without touching the real filesystem.
#[derive(Clone, Default)]
pub struct MemDisk {
    files: Arc<Mutex<HashMap<String, Vec<u8>>>>,
}

impl MemDisk {
    /// An empty in-memory store.
    pub fn new() -> MemDisk {
        MemDisk::default()
    }

    /// Total bytes across all files (test introspection).
    pub fn total_bytes(&self) -> u64 {
        self.files.lock().values().map(|v| v.len() as u64).sum()
    }

    /// Overwrites a byte in an existing file — a harness hook for
    /// deterministic corruption tests.
    pub fn corrupt(&self, path: &str, offset: usize) {
        let mut files = self.files.lock();
        if let Some(data) = files.get_mut(path) {
            if let Some(byte) = data.get_mut(offset) {
                *byte ^= 0xFF;
            }
        }
    }

    /// Truncates an existing file to `len` bytes — models a torn tail.
    pub fn truncate(&self, path: &str, len: usize) {
        let mut files = self.files.lock();
        if let Some(data) = files.get_mut(path) {
            data.truncate(len);
        }
    }
}

impl std::fmt::Debug for MemDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemDisk")
            .field("files", &self.files.lock().len())
            .finish()
    }
}

impl DiskBackend for MemDisk {
    fn read(&self, path: &str) -> io::Result<Vec<u8>> {
        self.files
            .lock()
            .get(path)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, path.to_string()))
    }

    fn read_at(&self, path: &str, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        let files = self.files.lock();
        let data = files
            .get(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, path.to_string()))?;
        let start = offset as usize;
        let end = start
            .checked_add(len)
            .filter(|&e| e <= data.len())
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "read past end"))?;
        Ok(data[start..end].to_vec())
    }

    fn append(&self, path: &str, data: &[u8]) -> io::Result<()> {
        self.files
            .lock()
            .entry(path.to_string())
            .or_default()
            .extend_from_slice(data);
        Ok(())
    }

    fn size(&self, path: &str) -> io::Result<u64> {
        Ok(self.files.lock().get(path).map_or(0, |d| d.len() as u64))
    }

    fn sync(&self, _path: &str) -> io::Result<()> {
        Ok(())
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        self.files.lock().remove(path);
        Ok(())
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let mut names: Vec<String> = self.files.lock().keys().cloned().collect();
        names.sort();
        Ok(names)
    }
}

// ---------------------------------------------------------------------------
// FlakyDisk: seeded fault injection, FlakyOrigin's sibling
// ---------------------------------------------------------------------------

/// Counters a [`FlakyDisk`] accumulates (test assertions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskFaultStats {
    /// Append calls observed.
    pub appends: u64,
    /// Appends that persisted only a prefix (torn write).
    pub torn: u64,
    /// Appends whose payload had a bit flipped before landing.
    pub flipped: u64,
    /// Appends rejected with `ENOSPC`-style errors.
    pub enospc: u64,
    /// Syncs that were artificially slowed.
    pub slow_syncs: u64,
}

/// Fault-injecting wrapper over a [`DiskBackend`]: seeded torn writes,
/// bit flips, out-of-space errors, and slow fsync, in the builder style
/// of `FlakyOrigin`. Faults are a deterministic function of
/// `(seed, operation sequence)`, so a failing schedule replays exactly.
pub struct FlakyDisk {
    inner: Arc<dyn DiskBackend>,
    seed: u64,
    torn_rate: f64,
    flip_rate: f64,
    enospc_rate: f64,
    sync_delay: Duration,
    sequence: AtomicU64,
    appends: AtomicU64,
    torn: AtomicU64,
    flipped: AtomicU64,
    enospc: AtomicU64,
    slow_syncs: AtomicU64,
}

impl FlakyDisk {
    /// Wraps `inner` with no faults enabled; use the builder methods.
    pub fn new(inner: Arc<dyn DiskBackend>, seed: u64) -> FlakyDisk {
        FlakyDisk {
            inner,
            seed,
            torn_rate: 0.0,
            flip_rate: 0.0,
            enospc_rate: 0.0,
            sync_delay: Duration::ZERO,
            sequence: AtomicU64::new(0),
            appends: AtomicU64::new(0),
            torn: AtomicU64::new(0),
            flipped: AtomicU64::new(0),
            enospc: AtomicU64::new(0),
            slow_syncs: AtomicU64::new(0),
        }
    }

    /// Fraction of appends that persist only a prefix (crash mid-write).
    #[must_use]
    pub fn with_torn_writes(mut self, rate: f64) -> FlakyDisk {
        self.torn_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Fraction of appends whose payload gets one bit flipped.
    #[must_use]
    pub fn with_bit_flips(mut self, rate: f64) -> FlakyDisk {
        self.flip_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Fraction of appends that fail with an out-of-space error.
    #[must_use]
    pub fn with_enospc(mut self, rate: f64) -> FlakyDisk {
        self.enospc_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Every sync sleeps this long first (slow fsync).
    #[must_use]
    pub fn with_slow_sync(mut self, delay: Duration) -> FlakyDisk {
        self.sync_delay = delay;
        self
    }

    /// Fault counters so far.
    pub fn stats(&self) -> DiskFaultStats {
        DiskFaultStats {
            appends: self.appends.load(Ordering::Relaxed),
            torn: self.torn.load(Ordering::Relaxed),
            flipped: self.flipped.load(Ordering::Relaxed),
            enospc: self.enospc.load(Ordering::Relaxed),
            slow_syncs: self.slow_syncs.load(Ordering::Relaxed),
        }
    }

    /// Seeded coin in `[0, 1)` for operation `sequence` with `salt`
    /// separating fault kinds (the `FlakyOrigin` recipe: FNV mix plus a
    /// SplitMix finalizer).
    fn coin(&self, sequence: u64, salt: u64) -> f64 {
        let mut h = self.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= sequence.wrapping_mul(0xA24B_AED4_963E_E407);
        h ^= h >> 30;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        (h >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl std::fmt::Debug for FlakyDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlakyDisk")
            .field("seed", &self.seed)
            .field("stats", &self.stats())
            .finish()
    }
}

impl DiskBackend for FlakyDisk {
    fn read(&self, path: &str) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }

    fn read_at(&self, path: &str, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        self.inner.read_at(path, offset, len)
    }

    fn append(&self, path: &str, data: &[u8]) -> io::Result<()> {
        let sequence = self.sequence.fetch_add(1, Ordering::Relaxed);
        self.appends.fetch_add(1, Ordering::Relaxed);
        if self.coin(sequence, 1) < self.enospc_rate {
            self.enospc.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "injected: no space left on device",
            ));
        }
        if self.coin(sequence, 2) < self.torn_rate && !data.is_empty() {
            // Persist only a prefix and *report success* — the caller
            // finds out the way a crashed process would: at read time.
            self.torn.fetch_add(1, Ordering::Relaxed);
            let keep = 1 + (self.coin(sequence, 3) * (data.len() - 1) as f64) as usize;
            return self.inner.append(path, &data[..keep.min(data.len())]);
        }
        if self.coin(sequence, 4) < self.flip_rate && !data.is_empty() {
            self.flipped.fetch_add(1, Ordering::Relaxed);
            let mut garbled = data.to_vec();
            let pos = (self.coin(sequence, 5) * garbled.len() as f64) as usize;
            let pos = pos.min(garbled.len() - 1);
            garbled[pos] ^= 1 << (sequence % 8);
            return self.inner.append(path, &garbled);
        }
        self.inner.append(path, data)
    }

    fn size(&self, path: &str) -> io::Result<u64> {
        self.inner.size(path)
    }

    fn sync(&self, path: &str) -> io::Result<()> {
        if !self.sync_delay.is_zero() {
            self.slow_syncs.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(self.sync_delay);
        }
        self.inner.sync(path)
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        self.inner.remove(path)
    }

    fn list(&self) -> io::Result<Vec<String>> {
        self.inner.list()
    }
}

// ---------------------------------------------------------------------------
// DiskTier: segments + checksummed index journal
// ---------------------------------------------------------------------------

/// Sizing for a [`DiskTier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskTierConfig {
    /// Byte budget across all segment files. When exceeded, the oldest
    /// segment is dropped whole (its keys become cold misses).
    pub capacity_bytes: u64,
    /// Segment rotation threshold. Defaults to a quarter of the
    /// capacity so eviction granularity stays reasonable.
    pub segment_bytes: u64,
}

impl DiskTierConfig {
    /// A tier bounded to `capacity_bytes`, rotating segments at a
    /// quarter of that (minimum 4 KiB).
    pub fn with_capacity(capacity_bytes: u64) -> DiskTierConfig {
        DiskTierConfig {
            capacity_bytes,
            segment_bytes: (capacity_bytes / 4).max(4096),
        }
    }
}

impl Default for DiskTierConfig {
    fn default() -> Self {
        DiskTierConfig::with_capacity(64 << 20)
    }
}

/// Counters a [`DiskTier`] accumulates over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskTierStats {
    /// Reads answered from the tier with a checksum-verified artifact.
    pub hits: u64,
    /// Reads that found nothing usable.
    pub misses: u64,
    /// Artifacts durably recorded (journal record written).
    pub puts: u64,
    /// Writes abandoned because the backend errored (e.g. `ENOSPC`).
    pub put_errors: u64,
    /// Corrupt journal records or artifacts detected and skipped —
    /// torn writes, bit flips, truncated tails. Never served.
    pub quarantined: u64,
    /// Index records recovered by journal replay at open.
    pub replayed: u64,
    /// Whole segments dropped by the capacity bound.
    pub segments_dropped: u64,
    /// Artifact bytes currently indexed.
    pub live_bytes: u64,
}

/// Freshness of an artifact recovered from disk, judged against its
/// persisted absolute expiry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskFreshness {
    /// Not yet expired; remaining TTL (`None` = no expiry).
    Fresh(Option<Duration>),
    /// Past its expiry by this much — the memory tier decides whether
    /// its stale window still covers it.
    Expired(Duration),
}

/// An artifact recovered from the tier.
#[derive(Debug, Clone)]
pub struct DiskRecord {
    /// The artifact bytes (checksum-verified).
    pub value: Bytes,
    /// Freshness judged at read time.
    pub freshness: DiskFreshness,
    /// The render cost recorded at write time.
    pub cost: Duration,
}

#[derive(Clone)]
struct IndexEntry {
    segment: u32,
    offset: u64,
    len: u32,
    checksum: u64,
    /// Absolute expiry, unix millis; `u64::MAX` = no expiry.
    expires_unix_ms: u64,
    cost_micros: u64,
    /// Journal order, for most-recent-first warm loading.
    sequence: u64,
}

struct TierState {
    index: HashMap<String, IndexEntry>,
    /// Bytes appended per segment (including torn/garbled artifacts).
    segments: BTreeMap<u32, u64>,
    current_segment: u32,
    sequence: u64,
}

/// Sentinel segment id marking a journal record as a tombstone: replay
/// removes the key instead of indexing it.
const TOMBSTONE_SEGMENT: u32 = u32::MAX;

struct WriteJob {
    key: String,
    value: Bytes,
    expires_unix_ms: u64,
    cost_micros: u64,
    tombstone: bool,
}

struct WriteQueue {
    jobs: Mutex<VecDeque<WriteJob>>,
    ready: Condvar,
    drained: Condvar,
    stop: AtomicBool,
    in_flight: AtomicU64,
}

struct TierShared {
    backend: Arc<dyn DiskBackend>,
    config: DiskTierConfig,
    state: Mutex<TierState>,
    queue: WriteQueue,
    hits: AtomicU64,
    misses: AtomicU64,
    puts: AtomicU64,
    put_errors: AtomicU64,
    quarantined: AtomicU64,
    replayed: AtomicU64,
    segments_dropped: AtomicU64,
}

/// The persistent artifact tier: checksummed segments plus an
/// append-only index journal, with a write-behind queue.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use std::time::Duration;
/// use msite::persist::{DiskTier, DiskTierConfig, MemDisk};
///
/// let disk = MemDisk::new();
/// let tier = DiskTier::open(Arc::new(disk.clone()), DiskTierConfig::default());
/// tier.put("entry:html", b"<html/>".to_vec(), None, Duration::from_millis(40));
/// tier.flush();
///
/// // A "restarted" tier over the same bytes recovers the artifact.
/// let revived = DiskTier::open(Arc::new(disk), DiskTierConfig::default());
/// let record = revived.get("entry:html").expect("survived restart");
/// assert_eq!(record.value.as_ref(), b"<html/>");
/// ```
pub struct DiskTier {
    shared: Arc<TierShared>,
    writer: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl DiskTier {
    /// Opens the tier over `backend`, replaying the index journal.
    /// Corrupt records are quarantined and skipped; replay never
    /// panics and never fails — worst case the tier starts cold.
    pub fn open(backend: Arc<dyn DiskBackend>, config: DiskTierConfig) -> DiskTier {
        let mut quarantined = 0u64;
        let mut replayed = 0u64;
        let journal = backend.read(JOURNAL).unwrap_or_default();
        let (records, bad) = replay_journal(&journal);
        quarantined += bad;
        let mut index: HashMap<String, IndexEntry> = HashMap::new();
        let mut sequence = 0u64;
        for (key, entry) in records {
            sequence = sequence.max(entry.sequence);
            replayed += 1;
            if entry.segment == TOMBSTONE_SEGMENT {
                index.remove(&key);
            } else {
                index.insert(key, entry);
            }
        }
        // Drop index entries whose segment no longer exists, and learn
        // the on-disk segment sizes (append offsets must continue from
        // the *actual* file end — a torn tail shifts it).
        let mut segments: BTreeMap<u32, u64> = BTreeMap::new();
        for name in backend.list().unwrap_or_default() {
            if let Some(id) = segment_id(&name) {
                segments.insert(id, backend.size(&name).unwrap_or(0));
            }
        }
        index.retain(|_, e| segments.contains_key(&e.segment));
        let current_segment = segments.keys().next_back().copied().unwrap_or(0);
        let shared = Arc::new(TierShared {
            backend,
            config,
            state: Mutex::new(TierState {
                index,
                segments,
                current_segment,
                sequence,
            }),
            queue: WriteQueue {
                jobs: Mutex::new(VecDeque::new()),
                ready: Condvar::new(),
                drained: Condvar::new(),
                stop: AtomicBool::new(false),
                in_flight: AtomicU64::new(0),
            },
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            puts: AtomicU64::new(0),
            put_errors: AtomicU64::new(0),
            quarantined: AtomicU64::new(quarantined),
            replayed: AtomicU64::new(replayed),
            segments_dropped: AtomicU64::new(0),
        });
        let writer = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("msite-disk-writer".into())
                .spawn(move || writer_loop(&shared))
                .expect("spawn disk writer")
        };
        DiskTier {
            shared,
            writer: Mutex::new(Some(writer)),
        }
    }

    /// Enqueues an artifact for write-behind persistence. Never blocks
    /// on disk; failures surface in [`DiskTierStats::put_errors`].
    pub fn put(&self, key: &str, value: impl Into<Bytes>, ttl: Option<Duration>, cost: Duration) {
        let expires_unix_ms = match ttl {
            Some(t) => unix_millis_now().saturating_add(t.as_millis() as u64),
            None => u64::MAX,
        };
        self.enqueue(WriteJob {
            key: key.to_string(),
            value: value.into(),
            expires_unix_ms,
            cost_micros: cost.as_micros() as u64,
            tombstone: false,
        });
    }

    /// Drops an artifact: the index forgets it immediately (reads miss)
    /// and a tombstone record is journaled so a restart does not
    /// resurrect it. The segment bytes are reclaimed only when their
    /// segment rotates out.
    pub fn forget(&self, key: &str) {
        self.shared.state.lock().index.remove(key);
        self.enqueue(WriteJob {
            key: key.to_string(),
            value: Bytes::new(),
            expires_unix_ms: u64::MAX,
            cost_micros: 0,
            tombstone: true,
        });
    }

    /// Drops every indexed artifact (tombstoning each).
    pub fn forget_all(&self) {
        let keys: Vec<String> = self.shared.state.lock().index.keys().cloned().collect();
        for key in keys {
            self.forget(&key);
        }
    }

    fn enqueue(&self, job: WriteJob) {
        let queue = &self.shared.queue;
        if queue.stop.load(Ordering::Relaxed) {
            return;
        }
        queue.in_flight.fetch_add(1, Ordering::Relaxed);
        queue.jobs.lock().push_back(job);
        queue.ready.notify_one();
    }

    /// Reads an artifact, verifying its checksum. Corruption (torn
    /// append, flipped bit) quarantines the record and reports a miss.
    pub fn get(&self, key: &str) -> Option<DiskRecord> {
        let entry = {
            let state = self.shared.state.lock();
            state.index.get(key).cloned()
        };
        let Some(entry) = entry else {
            self.shared.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let name = segment_name(entry.segment);
        let bytes = self
            .shared
            .backend
            .read_at(&name, entry.offset, entry.len as usize)
            .ok();
        let verified = bytes.filter(|b| fnv64(b) == entry.checksum);
        let Some(bytes) = verified else {
            // Quarantine: drop the index entry so we never trust it
            // again, count it, and report a miss.
            let mut state = self.shared.state.lock();
            if state
                .index
                .get(key)
                .is_some_and(|e| e.sequence == entry.sequence)
            {
                state.index.remove(key);
            }
            drop(state);
            self.shared.quarantined.fetch_add(1, Ordering::Relaxed);
            self.shared.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let freshness = if entry.expires_unix_ms == u64::MAX {
            DiskFreshness::Fresh(None)
        } else {
            let now = unix_millis_now();
            if now <= entry.expires_unix_ms {
                DiskFreshness::Fresh(Some(Duration::from_millis(entry.expires_unix_ms - now)))
            } else {
                DiskFreshness::Expired(Duration::from_millis(now - entry.expires_unix_ms))
            }
        };
        self.shared.hits.fetch_add(1, Ordering::Relaxed);
        Some(DiskRecord {
            value: Bytes::from(bytes),
            freshness,
            cost: Duration::from_micros(entry.cost_micros),
        })
    }

    /// Keys in most-recently-written-first order (warm-restart seeding).
    pub fn hot_keys(&self, limit: usize) -> Vec<String> {
        let state = self.shared.state.lock();
        let mut keyed: Vec<(&String, u64)> =
            state.index.iter().map(|(k, e)| (k, e.sequence)).collect();
        keyed.sort_by_key(|&(_, seq)| std::cmp::Reverse(seq));
        keyed
            .into_iter()
            .take(limit)
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Number of indexed artifacts.
    pub fn len(&self) -> usize {
        self.shared.state.lock().index.len()
    }

    /// True when no artifacts are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocks until every queued write has been attempted.
    pub fn flush(&self) {
        let queue = &self.shared.queue;
        let mut jobs = queue.jobs.lock();
        while queue.in_flight.load(Ordering::Acquire) > 0 {
            jobs = queue.drained.wait(jobs);
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> DiskTierStats {
        let live_bytes = {
            let state = self.shared.state.lock();
            state.index.values().map(|e| u64::from(e.len)).sum()
        };
        DiskTierStats {
            hits: self.shared.hits.load(Ordering::Relaxed),
            misses: self.shared.misses.load(Ordering::Relaxed),
            puts: self.shared.puts.load(Ordering::Relaxed),
            put_errors: self.shared.put_errors.load(Ordering::Relaxed),
            quarantined: self.shared.quarantined.load(Ordering::Relaxed),
            replayed: self.shared.replayed.load(Ordering::Relaxed),
            segments_dropped: self.shared.segments_dropped.load(Ordering::Relaxed),
            live_bytes,
        }
    }
}

impl Drop for DiskTier {
    fn drop(&mut self) {
        self.flush();
        self.shared.queue.stop.store(true, Ordering::Relaxed);
        self.shared.queue.ready.notify_all();
        if let Some(handle) = self.writer.lock().take() {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for DiskTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskTier")
            .field("len", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

fn segment_name(id: u32) -> String {
    format!("seg-{id}.dat")
}

fn segment_id(name: &str) -> Option<u32> {
    name.strip_prefix("seg-")?
        .strip_suffix(".dat")?
        .parse()
        .ok()
}

/// Drains the write-behind queue: append artifact bytes to the current
/// segment, then append a checksummed index record to the journal.
fn writer_loop(shared: &TierShared) {
    loop {
        let job = {
            let mut jobs = shared.queue.jobs.lock();
            loop {
                if let Some(job) = jobs.pop_front() {
                    break job;
                }
                if shared.queue.stop.load(Ordering::Relaxed) {
                    return;
                }
                jobs = shared.queue.ready.wait(jobs);
            }
        };
        persist_one(shared, &job);
        // Decrement under the queue lock so a `flush` caller cannot
        // miss the notification between its check and its wait.
        let _guard = shared.queue.jobs.lock();
        shared.queue.in_flight.fetch_sub(1, Ordering::AcqRel);
        shared.queue.drained.notify_all();
    }
}

fn persist_one(shared: &TierShared, job: &WriteJob) {
    if job.tombstone {
        let record = {
            let mut state = shared.state.lock();
            state.sequence += 1;
            let entry = IndexEntry {
                segment: TOMBSTONE_SEGMENT,
                offset: 0,
                len: 0,
                checksum: 0,
                expires_unix_ms: u64::MAX,
                cost_micros: 0,
                sequence: state.sequence,
            };
            encode_record(&job.key, &entry)
        };
        if shared.backend.append(JOURNAL, &record).is_err() {
            shared.put_errors.fetch_add(1, Ordering::Relaxed);
        }
        return;
    }
    // Rotate / evict under the state lock, but do the appends outside
    // it so readers are never blocked on disk latency.
    let segment = {
        let mut state = shared.state.lock();
        let current_len = state
            .segments
            .get(&state.current_segment)
            .copied()
            .unwrap_or(0);
        if current_len >= shared.config.segment_bytes {
            state.current_segment += 1;
            let id = state.current_segment;
            state.segments.insert(id, 0);
        }
        // Capacity: drop oldest segments until the new artifact fits.
        while state.segments.len() > 1
            && state.segments.values().sum::<u64>() + job.value.len() as u64
                > shared.config.capacity_bytes
        {
            let Some((&oldest, _)) = state.segments.iter().next() else {
                break;
            };
            if oldest == state.current_segment {
                break;
            }
            state.segments.remove(&oldest);
            state.index.retain(|_, e| e.segment != oldest);
            let _ = shared.backend.remove(&segment_name(oldest));
            shared.segments_dropped.fetch_add(1, Ordering::Relaxed);
        }
        state.current_segment
    };
    let name = segment_name(segment);
    // The offset is the *actual* file end: a previously torn append
    // must not shift this record onto garbage silently — its checksum
    // already covers that artifact's corruption.
    let offset = match shared.backend.size(&name) {
        Ok(size) => size,
        Err(_) => {
            shared.put_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    if shared.backend.append(&name, job.value.as_ref()).is_err() {
        shared.put_errors.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let written = shared.backend.size(&name).unwrap_or(offset);
    let record = {
        let mut state = shared.state.lock();
        state.sequence += 1;
        let sequence = state.sequence;
        state.segments.insert(segment, written);
        let entry = IndexEntry {
            segment,
            offset,
            len: job.value.len() as u32,
            checksum: fnv64(job.value.as_ref()),
            expires_unix_ms: job.expires_unix_ms,
            cost_micros: job.cost_micros,
            sequence,
        };
        let record = encode_record(&job.key, &entry);
        state.index.insert(job.key.clone(), entry);
        record
    };
    if shared.backend.append(JOURNAL, &record).is_err() {
        // The artifact landed but its index record did not: the current
        // process can still serve it (index updated above); a restart
        // simply will not know about it.
        shared.put_errors.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let _ = shared.backend.sync(&name);
    let _ = shared.backend.sync(JOURNAL);
    shared.puts.fetch_add(1, Ordering::Relaxed);
}

/// `MAGIC | payload_len(u32) | fnv64(payload) | payload`, little endian.
fn encode_record(key: &str, entry: &IndexEntry) -> Vec<u8> {
    let key_bytes = key.as_bytes();
    let mut payload = Vec::with_capacity(key_bytes.len() + 40);
    payload.extend_from_slice(&(key_bytes.len() as u16).to_le_bytes());
    payload.extend_from_slice(key_bytes);
    payload.extend_from_slice(&entry.segment.to_le_bytes());
    payload.extend_from_slice(&entry.offset.to_le_bytes());
    payload.extend_from_slice(&entry.len.to_le_bytes());
    payload.extend_from_slice(&entry.checksum.to_le_bytes());
    payload.extend_from_slice(&entry.expires_unix_ms.to_le_bytes());
    payload.extend_from_slice(&entry.cost_micros.to_le_bytes());
    payload.extend_from_slice(&entry.sequence.to_le_bytes());
    let mut record = Vec::with_capacity(payload.len() + 16);
    record.extend_from_slice(&JOURNAL_MAGIC);
    record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    record.extend_from_slice(&fnv64(&payload).to_le_bytes());
    record.extend_from_slice(&payload);
    record
}

fn decode_payload(payload: &[u8]) -> Option<(String, IndexEntry)> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
        let slice = payload.get(*pos..*pos + n)?;
        *pos += n;
        Some(slice)
    };
    let key_len = u16::from_le_bytes(take(&mut pos, 2)?.try_into().ok()?) as usize;
    let key = String::from_utf8(take(&mut pos, key_len)?.to_vec()).ok()?;
    let segment = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?);
    let offset = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?);
    let len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?);
    let checksum = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?);
    let expires_unix_ms = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?);
    let cost_micros = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?);
    let sequence = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?);
    if pos != payload.len() {
        return None;
    }
    Some((
        key,
        IndexEntry {
            segment,
            offset,
            len,
            checksum,
            expires_unix_ms,
            cost_micros,
            sequence,
        },
    ))
}

/// Scans a journal buffer, returning the decoded records in order plus
/// the count of quarantined (corrupt/torn) regions. On corruption the
/// scanner advances to the next magic marker — one quarantine count per
/// resync, not per scanned byte.
fn replay_journal(buf: &[u8]) -> (Vec<(String, IndexEntry)>, u64) {
    let mut records = Vec::new();
    let mut quarantined = 0u64;
    let mut pos = 0usize;
    let mut in_bad_region = false;
    while pos < buf.len() {
        let header_ok = buf.len() - pos >= 16 && buf[pos..pos + 4] == JOURNAL_MAGIC;
        if !header_ok {
            if !in_bad_region {
                quarantined += 1;
                in_bad_region = true;
            }
            pos += 1;
            continue;
        }
        let len = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap()) as usize;
        let checksum = u64::from_le_bytes(buf[pos + 8..pos + 16].try_into().unwrap());
        let body_start = pos + 16;
        let valid = len <= MAX_RECORD_BYTES
            && body_start + len <= buf.len()
            && fnv64(&buf[body_start..body_start + len]) == checksum;
        let decoded = if valid {
            decode_payload(&buf[body_start..body_start + len])
        } else {
            None
        };
        match decoded {
            Some(record) => {
                records.push(record);
                in_bad_region = false;
                pos = body_start + len;
            }
            None => {
                // Bad frame: quarantine once, resync at the next byte
                // (the scanner will hunt for the next magic marker).
                if !in_bad_region {
                    quarantined += 1;
                    in_bad_region = true;
                }
                pos += 1;
            }
        }
    }
    (records, quarantined)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open_mem(disk: &MemDisk) -> DiskTier {
        DiskTier::open(
            Arc::new(disk.clone()),
            DiskTierConfig::with_capacity(1 << 20),
        )
    }

    #[test]
    fn roundtrip_and_restart() {
        let disk = MemDisk::new();
        let tier = open_mem(&disk);
        tier.put("a", b"alpha".to_vec(), None, Duration::from_millis(5));
        tier.put(
            "b",
            b"beta".to_vec(),
            Some(Duration::from_secs(3600)),
            Duration::ZERO,
        );
        tier.flush();
        assert_eq!(tier.get("a").unwrap().value.as_ref(), b"alpha");
        drop(tier);

        let revived = open_mem(&disk);
        assert_eq!(revived.len(), 2);
        let b = revived.get("b").unwrap();
        assert_eq!(b.value.as_ref(), b"beta");
        assert!(matches!(b.freshness, DiskFreshness::Fresh(Some(_))));
        assert_eq!(revived.stats().replayed, 2);
        assert_eq!(revived.stats().quarantined, 0);
    }

    #[test]
    fn latest_record_wins() {
        let disk = MemDisk::new();
        let tier = open_mem(&disk);
        tier.put("k", b"v1".to_vec(), None, Duration::ZERO);
        tier.put("k", b"v2".to_vec(), None, Duration::ZERO);
        tier.flush();
        drop(tier);
        let revived = open_mem(&disk);
        assert_eq!(revived.get("k").unwrap().value.as_ref(), b"v2");
    }

    #[test]
    fn corrupt_journal_record_is_quarantined_not_fatal() {
        let disk = MemDisk::new();
        let tier = open_mem(&disk);
        tier.put("a", b"alpha".to_vec(), None, Duration::ZERO);
        tier.put("b", b"beta".to_vec(), None, Duration::ZERO);
        tier.flush();
        drop(tier);
        // Flip a byte in the middle of the first record's payload.
        disk.corrupt(JOURNAL, 20);
        let revived = open_mem(&disk);
        let stats = revived.stats();
        assert_eq!(stats.quarantined, 1, "one corrupt region");
        assert_eq!(revived.len(), 1, "the undamaged record survives");
        assert!(revived.get("b").is_some());
    }

    #[test]
    fn truncated_journal_tail_is_quarantined() {
        let disk = MemDisk::new();
        let tier = open_mem(&disk);
        tier.put("a", b"alpha".to_vec(), None, Duration::ZERO);
        tier.put("b", b"beta".to_vec(), None, Duration::ZERO);
        tier.flush();
        drop(tier);
        let len = disk.files.lock().get(JOURNAL).unwrap().len();
        disk.truncate(JOURNAL, len - 3);
        let revived = open_mem(&disk);
        assert_eq!(revived.stats().quarantined, 1);
        assert_eq!(revived.len(), 1);
        assert!(revived.get("a").is_some());
    }

    #[test]
    fn torn_artifact_fails_checksum_at_read() {
        let disk = MemDisk::new();
        let flaky = Arc::new(FlakyDisk::new(Arc::new(disk.clone()), 7).with_torn_writes(1.0));
        let tier = DiskTier::open(
            Arc::clone(&flaky) as Arc<dyn DiskBackend>,
            DiskTierConfig::with_capacity(1 << 20),
        );
        tier.put("k", b"twelve bytes".to_vec(), None, Duration::ZERO);
        tier.flush();
        // Every append tears, so the artifact (and likely the journal
        // record) is a prefix; the read path must quarantine, not panic.
        assert!(tier.get("k").is_none());
        assert!(tier.stats().quarantined >= 1);
        assert!(flaky.stats().torn >= 1);
    }

    #[test]
    fn enospc_counts_put_error_and_serving_continues() {
        let disk = MemDisk::new();
        let flaky = Arc::new(FlakyDisk::new(Arc::new(disk.clone()), 3).with_enospc(1.0));
        let tier = DiskTier::open(
            Arc::clone(&flaky) as Arc<dyn DiskBackend>,
            DiskTierConfig::with_capacity(1 << 20),
        );
        tier.put("k", b"value".to_vec(), None, Duration::ZERO);
        tier.flush();
        assert!(tier.get("k").is_none());
        assert_eq!(tier.stats().puts, 0);
        assert!(tier.stats().put_errors >= 1);
    }

    #[test]
    fn capacity_drops_oldest_segment() {
        let disk = MemDisk::new();
        let tier = DiskTier::open(
            Arc::new(disk.clone()),
            DiskTierConfig {
                capacity_bytes: 4096,
                segment_bytes: 1024,
            },
        );
        for i in 0..32 {
            tier.put(&format!("k{i}"), vec![i as u8; 512], None, Duration::ZERO);
        }
        tier.flush();
        let stats = tier.stats();
        assert!(stats.segments_dropped > 0, "old segments rotate out");
        assert!(stats.live_bytes <= 4096 + 512);
        // Recent keys survive; the tier still round-trips.
        assert!(tier.get("k31").is_some());
    }

    #[test]
    fn hot_keys_most_recent_first() {
        let disk = MemDisk::new();
        let tier = open_mem(&disk);
        tier.put("old", b"1".to_vec(), None, Duration::ZERO);
        tier.put("mid", b"2".to_vec(), None, Duration::ZERO);
        tier.put("new", b"3".to_vec(), None, Duration::ZERO);
        tier.flush();
        assert_eq!(tier.hot_keys(2), vec!["new".to_string(), "mid".to_string()]);
    }

    #[test]
    fn expired_records_report_age() {
        let disk = MemDisk::new();
        let tier = open_mem(&disk);
        tier.put("k", b"v".to_vec(), Some(Duration::ZERO), Duration::ZERO);
        tier.flush();
        std::thread::sleep(Duration::from_millis(2));
        match tier.get("k").unwrap().freshness {
            DiskFreshness::Expired(age) => assert!(age >= Duration::from_millis(1)),
            other => panic!("expected expired, got {other:?}"),
        }
    }

    #[test]
    fn fs_disk_roundtrip() {
        let dir = std::env::temp_dir().join(format!(
            "msite-persist-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let fs = FsDisk::open(&dir).unwrap();
        let tier = DiskTier::open(Arc::new(fs), DiskTierConfig::with_capacity(1 << 20));
        tier.put("k", b"fs bytes".to_vec(), None, Duration::from_millis(1));
        tier.flush();
        drop(tier);
        let fs = FsDisk::open(&dir).unwrap();
        let revived = DiskTier::open(Arc::new(fs), DiskTierConfig::with_capacity(1 << 20));
        assert_eq!(revived.get("k").unwrap().value.as_ref(), b"fs bytes");
        drop(revived);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
