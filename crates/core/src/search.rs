//! The searchable pre-rendered image attribute (§3.3 "Search").
//!
//! "At rendering time, a sorted word index is built on the server from
//! the textual content read from the web page. The rendered location of
//! each word is stored in a Javascript array along with the word list,
//! and the ordered search index is then inserted into the subpage along
//! with a Javascript binary search function." This module builds that
//! index from layout geometry, emits the JS payload, and provides a Rust
//! query API mirroring the client-side binary search for testing.

use msite_render::{LayoutTree, Rect};

/// One indexed word occurrence.
#[derive(Debug, Clone, PartialEq)]
pub struct WordHit {
    /// Lowercased word.
    pub word: String,
    /// Location on the rendered page, in *rendered* (pre-scale) px.
    pub rect: Rect,
}

/// A sorted word index over a rendered page.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchIndex {
    /// Hits sorted by word (then document order).
    entries: Vec<WordHit>,
}

impl SearchIndex {
    /// Builds the index from a layout tree, scaling recorded rectangles
    /// by `scale` to match the served snapshot image.
    pub fn build(layout: &LayoutTree, scale: f32) -> SearchIndex {
        let mut entries: Vec<WordHit> = layout
            .word_positions()
            .into_iter()
            .map(|(word, rect)| WordHit {
                word,
                rect: rect.scaled(scale),
            })
            .collect();
        entries.sort_by(|a, b| {
            a.word.cmp(&b.word).then(
                a.rect
                    .y
                    .partial_cmp(&b.rect.y)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        SearchIndex { entries }
    }

    /// Number of indexed occurrences.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was indexed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Binary search: all locations of `word` (case-insensitive).
    pub fn find(&self, word: &str) -> Vec<Rect> {
        let needle = word.to_lowercase();
        let start = self.entries.partition_point(|e| e.word < needle);
        self.entries[start..]
            .iter()
            .take_while(|e| e.word == needle)
            .map(|e| e.rect)
            .collect()
    }

    /// All locations of words starting with `prefix` (the jump-to-word
    /// experience while typing).
    pub fn find_prefix(&self, prefix: &str) -> Vec<(String, Rect)> {
        let needle = prefix.to_lowercase();
        let start = self
            .entries
            .partition_point(|e| e.word.as_str() < needle.as_str());
        self.entries[start..]
            .iter()
            .take_while(|e| e.word.starts_with(&needle))
            .map(|e| (e.word.clone(), e.rect))
            .collect()
    }

    /// Emits the client-side payload: the sorted array plus a binary
    /// search function bound to `msiteSearch(word)`, which returns the
    /// `[x, y]` of the first hit or `null`.
    pub fn to_javascript(&self) -> String {
        let mut out = String::from("var msiteIndex = [");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "[\"{}\",{},{},{},{}]",
                e.word,
                e.rect.x.round() as i64,
                e.rect.y.round() as i64,
                e.rect.w.round() as i64,
                e.rect.h.round() as i64
            ));
        }
        out.push_str("];\n");
        out.push_str(SEARCH_FUNCTION);
        out
    }
}

/// The client-side binary search over `msiteIndex`.
const SEARCH_FUNCTION: &str = r#"function msiteSearch(word) {
  word = word.toLowerCase();
  var lo = 0, hi = msiteIndex.length;
  while (lo < hi) {
    var mid = (lo + hi) >> 1;
    if (msiteIndex[mid][0] < word) { lo = mid + 1; } else { hi = mid; }
  }
  if (lo < msiteIndex.length && msiteIndex[lo][0] === word) {
    return [msiteIndex[lo][1], msiteIndex[lo][2]];
  }
  return null;
}
function msiteScrollTo(word) {
  var hit = msiteSearch(word);
  if (hit) { window.scrollTo(hit[0], hit[1]); }
  return hit !== null;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use msite_html::parse_document;
    use msite_render::{compute_styles, layout_document, Stylesheet};

    fn index_for(html: &str, scale: f32) -> SearchIndex {
        let doc = parse_document(html);
        let styles = compute_styles(&doc, &Stylesheet::parse("body{margin:0}"));
        let layout = layout_document(&doc, &styles, 640.0);
        SearchIndex::build(&layout, scale)
    }

    #[test]
    fn finds_words_case_insensitively() {
        let index = index_for("<body><p>General Woodworking Discussion</p></body>", 1.0);
        assert_eq!(index.find("woodworking").len(), 1);
        assert_eq!(index.find("WOODWORKING").len(), 1);
        assert_eq!(index.find("absent").len(), 0);
    }

    #[test]
    fn repeated_words_all_found() {
        let index = index_for("<body><p>saw</p><p>saw</p><p>saw</p></body>", 1.0);
        let hits = index.find("saw");
        assert_eq!(hits.len(), 3);
        // Occurrences at distinct vertical positions, sorted.
        assert!(hits[0].y < hits[1].y && hits[1].y < hits[2].y);
    }

    #[test]
    fn scale_applies_to_coordinates() {
        let full = index_for("<body><p>needle</p></body>", 1.0);
        let half = index_for("<body><p>needle</p></body>", 0.5);
        let f = full.find("needle")[0];
        let h = half.find("needle")[0];
        assert!((h.w - f.w / 2.0).abs() < 0.01);
    }

    #[test]
    fn prefix_search() {
        let index = index_for("<body><p>sanding sander sawdust plane</p></body>", 1.0);
        let hits = index.find_prefix("san");
        let words: Vec<&str> = hits.iter().map(|(w, _)| w.as_str()).collect();
        assert_eq!(words, ["sander", "sanding"]);
        assert!(index.find_prefix("zz").is_empty());
    }

    #[test]
    fn javascript_payload_shape() {
        let index = index_for("<body><p>alpha beta</p></body>", 1.0);
        let js = index.to_javascript();
        assert!(js.starts_with("var msiteIndex = ["));
        assert!(js.contains("[\"alpha\","));
        assert!(js.contains("[\"beta\","));
        assert!(js.contains("function msiteSearch"));
        assert!(js.contains("function msiteScrollTo"));
        // Sorted: alpha before beta.
        assert!(js.find("alpha").unwrap() < js.find("beta").unwrap());
    }

    #[test]
    fn empty_page_yields_empty_index() {
        let index = index_for("<body></body>", 1.0);
        assert!(index.is_empty());
        assert_eq!(index.len(), 0);
        assert!(index.to_javascript().contains("msiteIndex = []"));
    }

    #[test]
    fn index_is_sorted_for_binary_search() {
        let index = index_for("<body><p>zebra apple mango apple cherry</p></body>", 1.0);
        let words: Vec<&String> = index.entries.iter().map(|e| &e.word).collect();
        let mut sorted = words.clone();
        sorted.sort();
        assert_eq!(words, sorted);
    }
}
