//! The multi-session m.Site proxy server.
//!
//! This is the artifact the paper's code generator produces: a
//! lightweight proxy, colocated with the origin, that "handles user
//! session authentication, cookie jars, and high-level session
//! administration", fetches origin pages on behalf of mobile clients,
//! runs the adaptation pipeline, writes per-user subpages into protected
//! session directories, serves a shared cached snapshot, satisfies
//! rewritten AJAX calls, and proxies form posts back to the origin.
//!
//! It implements [`Origin`], so it can be composed in-process for
//! benchmarks or served over real TCP by `msite_net::HttpServer`.
//!
//! # Observability
//!
//! Every counter the proxy keeps lives in a
//! [`MetricsRegistry`](msite_support::telemetry::MetricsRegistry)
//! (shareable with the HTTP server and resilience layer through
//! [`ProxyConfig::telemetry`]); [`ProxyStats`] is a view over it. Each
//! request gets a seeded-deterministic trace id, carried on the
//! response in the `x-msite-trace` header; pipeline stages, cache
//! flights, resilience events, and (over TCP) the server worker hop
//! record timed spans under that id. Three endpoints expose the state:
//! `GET /metrics` (text exposition), `GET /healthz` (breaker + pool +
//! cache summary), and `GET /trace/<id>` (the request's spans). The
//! observability endpoints are answered before any counter moves, so
//! scraping never perturbs the numbers being scraped.
//!
//! # Resilience
//!
//! Every origin fetch goes through a [`ResilientOrigin`]: bounded
//! retries with seeded jittered backoff, a per-request deadline budget
//! shared with the adaptation pipeline, and a per-host circuit breaker.
//! When the origin (or its breaker) makes the entry page unbuildable,
//! the proxy degrades to the last rendered snapshot still inside the
//! cache's stale window — marked with a `Warning` header — instead of
//! answering 5xx per request; the stale copy is replaced by the next
//! successful rebuild. Failures are classified by
//! [`ProxyError`](crate::error::ProxyError) and counted in
//! [`ProxyStats`].

use crate::ajax::AjaxRegistry;
use crate::attributes::AdaptationSpec;
use crate::cache::{Flight, Lookup, RenderCache};
use crate::dsl;
use crate::engine::{CachedRender, EngineRegistry};
use crate::error::{ProxyError, DEGRADED_HEADER};
use crate::pipeline::{adapt, adapt_with_report, AdaptedBundle, PipelineContext, PipelineReport};
use crate::session::{Session, SessionFs, SessionManager, SESSION_COOKIE};
use msite_net::resilience::{
    is_breaker_rejection, BreakerState, Deadline, ResilienceStats, ResilientOrigin, DEADLINE_HEADER,
};
use msite_net::{Cookie, Method, Origin, OriginRef, Request, ResiliencePolicy, Response, Url};
use msite_render::browser::BrowserConfig;
use msite_support::bytes::Bytes;
use msite_support::sync::Mutex;
use msite_support::telemetry::{
    metrics::LATENCY_MICROS_BOUNDS, Counter, Gauge, Histogram, Telemetry, Trace, TraceIdSeq,
    TRACE_HEADER,
};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Proxy configuration.
#[derive(Debug, Clone)]
pub struct ProxyConfig {
    /// Extra CPU burned per scripted (non-browser) request, modeling the
    /// paper's PHP interpreter + filesystem overhead. Zero by default;
    /// the Figure 7 harness sets ~3.5 ms to reproduce the paper's
    /// absolute throughput scale.
    pub scripted_overhead: Duration,
    /// Shared render-cache capacity (entries).
    pub cache_capacity: usize,
    /// Seed for session-id generation.
    pub seed: u64,
    /// Browser configuration used by the pipeline.
    pub browser_config: BrowserConfig,
    /// Fault-tolerance policy for origin fetches: retry budget, backoff
    /// shape, per-request deadline, breaker thresholds.
    pub resilience: ResiliencePolicy,
    /// How long expired cache entries stay servable as degraded
    /// (stale) output when the origin is unavailable.
    pub stale_window: Duration,
    /// Worker-crew width for the adaptation pipeline's fan-out stages
    /// (subpage assembly, image pre-renders, imagemap geometry). `1`
    /// runs the pipeline serially; output is byte-identical either way.
    pub pipeline_parallelism: usize,
    /// Telemetry destination. `None` (the default) gives the proxy a
    /// private registry + trace ring; pass a shared handle (the one the
    /// HTTP server binds with) so proxy, server, and resilience
    /// counters land in one scrapeable registry.
    pub telemetry: Option<Telemetry>,
}

impl Default for ProxyConfig {
    fn default() -> Self {
        ProxyConfig {
            scripted_overhead: Duration::ZERO,
            cache_capacity: 256,
            seed: 0x6d_73_69_74_65, // "msite"
            browser_config: BrowserConfig::default(),
            resilience: ResiliencePolicy::default(),
            stale_window: Duration::from_secs(600),
            pipeline_parallelism: msite_support::thread::default_parallelism(),
            telemetry: None,
        }
    }
}

/// Proxy request counters. Since the telemetry refactor this is a
/// *view*: every field is read back from the proxy's metrics registry
/// (`msite_proxy_*` series; `overload_rejections` is the serving
/// tier's `msite_server_rejected_overload_total`), so [`ProxyStats`]
/// and a `/metrics` scrape can never disagree.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProxyStats {
    /// Requests handled.
    pub requests: u64,
    /// Requests that needed a full browser render (snapshot rebuilds,
    /// per-user pipeline runs with pre-render attributes).
    pub full_renders: u64,
    /// Requests satisfied by the lightweight scripted path alone.
    pub lightweight: u64,
    /// Origin sub-requests issued.
    pub origin_fetches: u64,
    /// Sessions created.
    pub sessions_created: u64,
    /// Requests answered with a [`ProxyError`] response.
    pub failures: u64,
    /// Requests answered with stale cache content because the origin
    /// was unavailable (serve-stale degradation).
    pub stale_served: u64,
    /// Renders served by a fallback engine after the requested engine
    /// failed.
    pub engine_fallbacks: u64,
    /// Requests that shared another request's in-flight render instead
    /// of launching their own (single-flight coalescing).
    pub renders_coalesced: u64,
    /// Connections the serving tier shed with `503` +
    /// `x-msite-error: overloaded` because the executor's bounded queue
    /// was full. The rejected connections never reach the proxy's
    /// request handler: this reads the HTTP server's
    /// `msite_server_rejected_overload_total` counter, which a server
    /// sharing this proxy's [`Telemetry`] updates directly — no
    /// embedder-side folding needed. (Embedders running a server with
    /// a *separate* registry can still fold via
    /// [`ProxyServer::record_overload_rejections`].)
    pub overload_rejections: u64,
}

struct UserBundle {
    ajax: AjaxRegistry,
    auth_subpages: Vec<String>,
}

/// Pre-interned registry handles for the proxy's hot path: every
/// counter bump below is a single relaxed atomic op.
struct ProxyMetrics {
    requests: Arc<Counter>,
    full_renders: Arc<Counter>,
    lightweight: Arc<Counter>,
    origin_fetches: Arc<Counter>,
    sessions_created: Arc<Counter>,
    stale_served: Arc<Counter>,
    engine_fallbacks: Arc<Counter>,
    renders_coalesced: Arc<Counter>,
    /// The serving tier's shed counter — the *same* series an
    /// `HttpServer` sharing this registry increments, so embedders get
    /// consistent numbers without folding.
    overload_rejections: Arc<Counter>,
    sessions_live: Arc<Gauge>,
    request_micros: Arc<Histogram>,
}

impl ProxyMetrics {
    fn new(telemetry: &Telemetry) -> ProxyMetrics {
        let m = &telemetry.metrics;
        ProxyMetrics {
            request_micros: m.histogram("msite_proxy_request_micros", &[], LATENCY_MICROS_BOUNDS),
            requests: m.counter("msite_proxy_requests_total", &[]),
            full_renders: m.counter("msite_proxy_full_renders_total", &[]),
            lightweight: m.counter("msite_proxy_lightweight_total", &[]),
            origin_fetches: m.counter("msite_proxy_origin_fetches_total", &[]),
            sessions_created: m.counter("msite_proxy_sessions_created_total", &[]),
            stale_served: m.counter("msite_proxy_stale_served_total", &[]),
            engine_fallbacks: m.counter("msite_proxy_engine_fallbacks_total", &[]),
            renders_coalesced: m.counter("msite_proxy_renders_coalesced_total", &[]),
            overload_rejections: m.counter("msite_server_rejected_overload_total", &[]),
            sessions_live: m.gauge("msite_proxy_sessions_live", &[]),
        }
    }
}

/// The generated multi-session proxy for one adapted page.
pub struct ProxyServer {
    spec: AdaptationSpec,
    origin: Arc<ResilientOrigin>,
    sessions: SessionManager,
    fs: SessionFs,
    cache: Arc<RenderCache>,
    config: ProxyConfig,
    telemetry: Telemetry,
    metrics: ProxyMetrics,
    trace_ids: TraceIdSeq,
    shared_ajax: Mutex<Option<AjaxRegistry>>,
    user_bundles: Mutex<HashMap<String, Arc<UserBundle>>>,
    wants_cookie_clear: Mutex<bool>,
    engines: EngineRegistry,
    last_entry_report: Mutex<Option<PipelineReport>>,
}

impl ProxyServer {
    /// Creates a proxy for `spec`, forwarding to `origin` through the
    /// configured resilience policy (retries, deadline, breaker).
    pub fn new(spec: AdaptationSpec, origin: OriginRef, config: ProxyConfig) -> ProxyServer {
        let telemetry = config.telemetry.clone().unwrap_or_default();
        ProxyServer {
            sessions: SessionManager::new(config.seed),
            fs: SessionFs::new(),
            cache: Arc::new(RenderCache::with_stale_window(
                config.cache_capacity,
                config.stale_window,
            )),
            metrics: ProxyMetrics::new(&telemetry),
            trace_ids: TraceIdSeq::new(config.seed ^ 0x0074_7261_6365), // "trace"
            shared_ajax: Mutex::new(None),
            user_bundles: Mutex::new(HashMap::new()),
            wants_cookie_clear: Mutex::new(false),
            engines: EngineRegistry::with_builtins(),
            last_entry_report: Mutex::new(None),
            origin: Arc::new(ResilientOrigin::with_metrics(
                origin,
                config.resilience.clone(),
                Arc::clone(&telemetry.metrics),
            )),
            telemetry,
            spec,
            config,
        }
    }

    /// Registers an additional rendering engine (the paper's "pluggable
    /// content adaptation system ... extended with multiple rendering
    /// engines"). Later registrations shadow built-ins by name.
    pub fn register_engine(&mut self, engine: Box<dyn crate::engine::RenderEngine>) {
        self.engines.register(engine);
    }

    /// Names of the available rendering engines.
    pub fn engine_names(&self) -> Vec<&str> {
        self.engines.names()
    }

    /// Loads a proxy from generated DSL script text — the deployment
    /// path: the admin tool writes the script, the server runs it.
    ///
    /// # Errors
    ///
    /// Returns the script parse error.
    pub fn from_script(
        script: &str,
        origin: OriginRef,
        config: ProxyConfig,
    ) -> Result<ProxyServer, dsl::ParseScriptError> {
        Ok(ProxyServer::new(dsl::parse_script(script)?, origin, config))
    }

    /// URL prefix this proxy serves, e.g. `/m/forum`.
    pub fn base(&self) -> String {
        format!("/m/{}", self.spec.page_id)
    }

    /// The adaptation spec in effect.
    pub fn spec(&self) -> &AdaptationSpec {
        &self.spec
    }

    /// Counters so far — a view reconstructed from the registry.
    pub fn stats(&self) -> ProxyStats {
        ProxyStats {
            requests: self.metrics.requests.get(),
            full_renders: self.metrics.full_renders.get(),
            lightweight: self.metrics.lightweight.get(),
            origin_fetches: self.metrics.origin_fetches.get(),
            sessions_created: self.metrics.sessions_created.get(),
            failures: self
                .telemetry
                .metrics
                .counter_sum("msite_proxy_errors_total"),
            stale_served: self.metrics.stale_served.get(),
            engine_fallbacks: self.metrics.engine_fallbacks.get(),
            renders_coalesced: self.metrics.renders_coalesced.get(),
            overload_rejections: self.metrics.overload_rejections.get(),
        }
    }

    /// The telemetry handle (registry + trace ring) this proxy
    /// publishes into — pass the same handle to
    /// `HttpServer::bind_with_telemetry` so serving-tier counters and
    /// worker spans land in the same place.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Folds connection-level overload rejections (counted by an HTTP
    /// server with a registry *separate* from this proxy's) into
    /// [`ProxyStats::overload_rejections`]. `n` is the server's
    /// cumulative counter; the fold is a monotonic max, so repeated
    /// polling stays idempotent. A server sharing this proxy's
    /// [`Telemetry`] updates the counter directly and never needs this.
    pub fn record_overload_rejections(&self, n: u64) {
        self.metrics.overload_rejections.fold_to(n);
    }

    /// Retry/breaker/deadline counters from the resilient fetch layer.
    pub fn resilience_stats(&self) -> ResilienceStats {
        self.origin.stats()
    }

    /// The circuit-breaker state for an origin host (the spec's origin
    /// host unless AJAX actions fan out elsewhere).
    pub fn breaker_state(&self, host: &str) -> BreakerState {
        self.origin.breaker_state(host)
    }

    /// The shared render cache (amortization accounting lives here).
    pub fn cache(&self) -> &RenderCache {
        &self.cache
    }

    /// The pipeline report from the most recent shared entry rebuild,
    /// including how many concurrent requests that run's output was
    /// shared with ([`PipelineReport::coalesced_waiters`]). `None`
    /// before the first build.
    pub fn last_entry_report(&self) -> Option<PipelineReport> {
        self.last_entry_report.lock().clone()
    }

    /// Live session count.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Generated files currently stored (subpages + images).
    pub fn stored_files(&self) -> Vec<String> {
        self.fs.paths()
    }

    /// Exports every generated artifact (session directories + public
    /// cache) to a real directory, mirroring the paper's on-disk layout.
    ///
    /// # Errors
    ///
    /// Returns IO errors from the export.
    pub fn export_files(&self, dir: &std::path::Path) -> std::io::Result<usize> {
        // Shared cached images live in the cache, not the fs; write the
        // snapshot too when present.
        if let Some(snapshot) = self.cache.get("img:snapshot.png") {
            self.fs
                .write(&SessionFs::public_path("img/snapshot.png"), snapshot);
        }
        self.fs.export(dir)
    }

    // ------------------------------------------------------------------

    fn pipeline_context(&self) -> PipelineContext {
        PipelineContext {
            base: self.base(),
            browser_config: self.config.browser_config.clone(),
            parallelism: self.config.pipeline_parallelism,
            schedule_stagger: None,
            trace: Trace::current(),
        }
    }

    /// Fetches `url` from the origin with the session's cookie jar and
    /// stored HTTP-auth credentials applied, recording Set-Cookie
    /// responses back into the jar. The fetch goes through the
    /// resilience layer (retries, breaker) within `deadline`.
    fn origin_fetch(
        &self,
        session: &Arc<Mutex<Session>>,
        request: &mut Request,
        deadline: Deadline,
    ) -> Response {
        self.metrics.origin_fetches.inc();
        {
            let s = session.lock();
            s.jar.apply(request, 0);
            if let Some((user, pass)) = &s.http_auth {
                request.headers.set(
                    "authorization",
                    &msite_net::auth::basic_auth_header(user, pass),
                );
            }
        }
        let response = self.origin.handle_within(request, deadline);
        session
            .lock()
            .jar
            .store_from_response(&response, &request.url, 0);
        response
    }

    /// Builds (or reuses) the shared entry page + snapshot, which are
    /// user-independent: the snapshot shows the public view of the page
    /// and is "stored in a public cache" with the spec's TTL.
    ///
    /// Concurrent misses coalesce into one pipeline run through the
    /// cache's single-flight layer: the first request leads the rebuild,
    /// the rest share its output (counted in
    /// [`ProxyStats::renders_coalesced`]). A waiter whose deadline
    /// expires mid-flight degrades to a stale copy when one exists.
    ///
    /// When the origin is unavailable (final 5xx, breaker open, deadline
    /// exhausted) and a rebuild is impossible, the previous entry page is
    /// served as long as it is within the cache's stale window — the
    /// serve-stale degradation. The stale copy stays in place until the
    /// next successful rebuild replaces it.
    fn shared_entry(
        &self,
        session: &Arc<Mutex<Session>>,
        deadline: Deadline,
    ) -> Result<(Bytes, Option<Duration>), ProxyError> {
        let ttl = self
            .spec
            .snapshot
            .as_ref()
            .map(|s| Duration::from_secs(s.cache_ttl_secs));
        let flight_started = Instant::now();
        let flight = self.cache.render_flight::<ProxyError>(
            "entry:html",
            ttl,
            Some(deadline.remaining()),
            || self.build_entry(session, deadline),
        );
        let mut role_fields = Vec::new();
        let outcome = match flight {
            Flight::Hit(entry) => {
                self.metrics.lightweight.inc();
                role_fields.push(("role".to_string(), "hit".to_string()));
                Ok((entry, None))
            }
            Flight::Led { value, shared_with } => {
                if shared_with > 0 {
                    if let Some(report) = self.last_entry_report.lock().as_mut() {
                        report.coalesced_waiters += shared_with;
                    }
                }
                role_fields.push(("role".to_string(), "led".to_string()));
                role_fields.push(("shared_with".to_string(), shared_with.to_string()));
                Ok((value, None))
            }
            Flight::Shared(entry) => {
                self.metrics.lightweight.inc();
                self.metrics.renders_coalesced.inc();
                role_fields.push(("role".to_string(), "shared".to_string()));
                Ok((entry, None))
            }
            Flight::Stale { value, age } => {
                role_fields.push(("role".to_string(), "stale".to_string()));
                Ok((value, Some(age)))
            }
            Flight::TimedOut => {
                role_fields.push(("role".to_string(), "timed-out".to_string()));
                Err(ProxyError::DeadlineExceeded)
            }
            Flight::Failed(err) => {
                role_fields.push(("role".to_string(), "failed".to_string()));
                if err.is_unavailability() {
                    if let Lookup::Stale { value, age } = self.cache.lookup("entry:html") {
                        role_fields.push(("fallback".to_string(), "stale".to_string()));
                        Ok((value, Some(age)))
                    } else {
                        Err(err)
                    }
                } else {
                    Err(err)
                }
            }
        };
        if let Some(trace) = Trace::current() {
            role_fields.push(("key".to_string(), "entry:html".to_string()));
            trace.log().record_raw(
                trace.id(),
                "cache.flight",
                flight_started,
                flight_started.elapsed(),
                role_fields,
            );
        }
        outcome
    }

    /// Leader body of the entry-page flight: fetch the origin page, run
    /// the full adaptation pipeline, store the generated artifacts, and
    /// return the entry HTML plus its production cost.
    fn build_entry(
        &self,
        session: &Arc<Mutex<Session>>,
        deadline: Deadline,
    ) -> Result<(Bytes, Duration), ProxyError> {
        let start = Instant::now();
        let mut page_request =
            Request::get(&self.spec.page_url).map_err(|e| ProxyError::BadOriginUrl {
                detail: e.to_string(),
            })?;
        let page = self.origin_fetch(session, &mut page_request, deadline);
        if !page.status.is_success() {
            return Err(ProxyError::from_origin_failure(&page));
        }
        let (bundle, report) =
            adapt_with_report(&self.spec, &page.body_text(), &self.pipeline_context())?;
        if bundle.stats.browser_used {
            self.metrics.full_renders.inc();
        } else {
            self.metrics.lightweight.inc();
        }
        self.publish_stage_timings(&report);
        self.store_bundle(&bundle, None, start.elapsed());
        *self.shared_ajax.lock() = Some(bundle.ajax.clone());
        *self.wants_cookie_clear.lock() = bundle.wants_cookie_clear;
        *self.last_entry_report.lock() = Some(report);
        Ok((Bytes::from(bundle.entry_html), start.elapsed()))
    }

    /// Builds the per-user subpages with the user's authenticated view.
    fn user_bundle(
        &self,
        session: &Arc<Mutex<Session>>,
        deadline: Deadline,
    ) -> Result<Arc<UserBundle>, ProxyError> {
        let session_id = session.lock().id.clone();
        if let Some(existing) = self.user_bundles.lock().get(&session_id) {
            return Ok(Arc::clone(existing));
        }
        let mut page_request =
            Request::get(&self.spec.page_url).map_err(|e| ProxyError::BadOriginUrl {
                detail: e.to_string(),
            })?;
        let page = self.origin_fetch(session, &mut page_request, deadline);
        if !page.status.is_success() {
            return Err(ProxyError::from_origin_failure(&page));
        }
        // Subpage generation does not re-render the snapshot.
        let mut spec = self.spec.clone();
        spec.snapshot = None;
        let start = Instant::now();
        let bundle = adapt(&spec, &page.body_text(), &self.pipeline_context())?;
        if bundle.stats.browser_used {
            self.metrics.full_renders.inc();
        } else {
            self.metrics.lightweight.inc();
        }
        self.store_bundle(&bundle, Some(&session_id), start.elapsed());
        let auth_subpages = auth_subpage_ids(&self.spec);
        let user = Arc::new(UserBundle {
            ajax: bundle.ajax.clone(),
            auth_subpages,
        });
        self.user_bundles
            .lock()
            .insert(session_id, Arc::clone(&user));
        Ok(user)
    }

    /// Writes a bundle's artifacts: shared images into the public cache,
    /// per-user files into the session directory. The entry page itself
    /// is *not* stored here — the single-flight layer inserts it when
    /// the leading request's flight completes.
    fn store_bundle(&self, bundle: &AdaptedBundle, session_id: Option<&str>, cost: Duration) {
        for image in &bundle.images {
            match (&image.cache_ttl, session_id) {
                (Some(ttl), _) => {
                    self.cache.put(
                        &format!("img:{}", image.name),
                        image.bytes.clone(),
                        Some(*ttl),
                        cost,
                    );
                }
                (None, Some(sid)) => {
                    self.fs.write(
                        &SessionFs::user_path(sid, &format!("img/{}", image.name)),
                        image.bytes.clone(),
                    );
                }
                (None, None) => {
                    self.fs.write(
                        &SessionFs::public_path(&format!("img/{}", image.name)),
                        image.bytes.clone(),
                    );
                }
            }
        }
        if let Some(sid) = session_id {
            for subpage in &bundle.subpages {
                self.fs.write(
                    &SessionFs::user_path(sid, &format!("s/{}", subpage.name)),
                    rewrite_form_actions(&subpage.html, &self.base()),
                );
            }
        }
    }

    fn serve_image(
        &self,
        session_id: &str,
        name: &str,
        deadline: Deadline,
    ) -> Result<Response, ProxyError> {
        // Expired shared snapshots are still served (marked stale) when
        // within the stale window; a fresh copy appears with the next
        // successful entry rebuild.
        let key = format!("img:{name}");
        match self.cache.lookup(&key) {
            Lookup::Fresh(shared) => return Ok(Response::bytes("image/png", shared)),
            Lookup::Stale { value, age } => {
                return Ok(self.mark_stale(Response::bytes("image/png", value), age));
            }
            Lookup::Miss => {}
        }
        // A shared image can be seconds away: snapshot images land when
        // the entry pipeline's flight completes, so join an in-flight
        // rebuild (within the request deadline) instead of answering
        // 404 mid-render. No-op when nothing is in flight.
        if self
            .cache
            .join_flight("entry:html", Some(deadline.remaining()))
            .is_some()
        {
            match self.cache.lookup(&key) {
                Lookup::Fresh(shared) => return Ok(Response::bytes("image/png", shared)),
                Lookup::Stale { value, age } => {
                    return Ok(self.mark_stale(Response::bytes("image/png", value), age));
                }
                Lookup::Miss => {}
            }
        }
        if let Some(user) = self
            .fs
            .read(&SessionFs::user_path(session_id, &format!("img/{name}")))
        {
            return Ok(Response::bytes("image/png", user));
        }
        if let Some(public) = self
            .fs
            .read(&SessionFs::public_path(&format!("img/{name}")))
        {
            return Ok(Response::bytes("image/png", public));
        }
        Err(ProxyError::NotFound { what: "image" })
    }

    /// Publishes per-stage pipeline timings into the registry's
    /// `msite_stage_micros{stage=...}` histograms. Cold path: only
    /// entry rebuilds (not cache hits) get here.
    fn publish_stage_timings(&self, report: &PipelineReport) {
        for stage in &report.stages {
            self.telemetry
                .metrics
                .histogram(
                    "msite_stage_micros",
                    &[("stage", stage.kind.name())],
                    LATENCY_MICROS_BOUNDS,
                )
                .observe(stage.elapsed.as_micros() as u64);
        }
    }

    /// Stamps a degraded (stale) response: an RFC 7234 `Warning` plus
    /// the machine-readable degradation marker, and counts it.
    fn mark_stale(&self, mut response: Response, age: Duration) -> Response {
        response
            .headers
            .set("warning", "110 msite \"Response is stale\"");
        response
            .headers
            .set(DEGRADED_HEADER, &format!("stale; age={}s", age.as_secs()));
        self.metrics.stale_served.inc();
        if let Some(trace) = Trace::current() {
            trace.record(
                "degraded.stale",
                Duration::ZERO,
                vec![("age_secs".to_string(), age.as_secs().to_string())],
            );
        }
        response
    }

    /// Leader body of a `/render/<engine>` flight: fetch the page, run
    /// the engine (degrading down the fallback chain), and return the
    /// encoded [`CachedRender`] envelope plus its production cost.
    fn render_engine_page(
        &self,
        session: &Arc<Mutex<Session>>,
        engine_name: &str,
        deadline: Deadline,
    ) -> Result<(Bytes, Duration), ProxyError> {
        let start = Instant::now();
        let mut page_request =
            Request::get(&self.spec.page_url).map_err(|e| ProxyError::BadOriginUrl {
                detail: e.to_string(),
            })?;
        let page = self.origin_fetch(session, &mut page_request, deadline);
        if !page.status.is_success() {
            return Err(ProxyError::from_origin_failure(&page));
        }
        match self
            .engines
            .render_with_fallback(engine_name, &page.body_text())
        {
            Ok(render) => {
                if render.engine == "image" {
                    self.metrics.full_renders.inc();
                } else {
                    self.metrics.lightweight.inc();
                }
                if !render.degraded.is_empty() {
                    self.metrics.engine_fallbacks.inc();
                }
                Ok((Bytes::from(render.to_cached().encode()), start.elapsed()))
            }
            Err(Some(failures)) => Err(ProxyError::RenderFailed {
                detail: failures
                    .iter()
                    .map(|f| f.to_string())
                    .collect::<Vec<_>>()
                    .join("; "),
            }),
            Err(None) => Err(ProxyError::UnknownEngine {
                name: engine_name.to_string(),
            }),
        }
    }

    fn serve_subpage(
        &self,
        session: &Arc<Mutex<Session>>,
        name: &str,
        deadline: Deadline,
    ) -> Result<Response, ProxyError> {
        let bundle = self.user_bundle(session, deadline)?;
        let stem = name.trim_end_matches(".html");
        if bundle.auth_subpages.iter().any(|s| s == stem) && session.lock().http_auth.is_none() {
            return Ok(Response::redirect(&format!(
                "{}/auth?next={}",
                self.base(),
                msite_net::url::percent_encode(name)
            )));
        }
        let session_id = session.lock().id.clone();
        match self
            .fs
            .read(&SessionFs::user_path(&session_id, &format!("s/{name}")))
        {
            Some(contents) => Ok(Response::bytes("text/html; charset=utf-8", contents)),
            None => Err(ProxyError::NotFound { what: "subpage" }),
        }
    }

    fn satisfy_ajax(
        &self,
        session: &Arc<Mutex<Session>>,
        request: &Request,
        deadline: Deadline,
    ) -> Result<Response, ProxyError> {
        let Some(action_id) = request.param("action").and_then(|a| a.parse::<u32>().ok()) else {
            return Err(ProxyError::MissingParameter { name: "action" });
        };
        let p = request.param("p").unwrap_or_default();
        let registry = {
            let session_id = session.lock().id.clone();
            self.user_bundles
                .lock()
                .get(&session_id)
                .map(|b| b.ajax.clone())
                .or_else(|| self.shared_ajax.lock().clone())
                .unwrap_or_default()
        };
        let Some(action) = registry.get(action_id).cloned() else {
            return Err(ProxyError::UnknownAction {
                id: action_id.to_string(),
            });
        };
        // Resolve the action's origin URL against the adapted page.
        let base_url = Url::parse(&self.spec.page_url).map_err(|e| ProxyError::BadOriginUrl {
            detail: e.to_string(),
        })?;
        let target =
            base_url
                .join(&action.origin_url(&p))
                .map_err(|e| ProxyError::BadOriginUrl {
                    detail: e.to_string(),
                })?;
        let mut sub_request = Request {
            method: Method::Get,
            url: target,
            headers: msite_net::Headers::new(),
            body: Bytes::new(),
        };
        let response = self.origin_fetch(session, &mut sub_request, deadline);
        if !response.status.is_success() {
            return Err(ProxyError::from_origin_failure(&response));
        }
        // Fragment responses pass through; full pages are cut to <body>.
        let text = response.body_text();
        let fragment = extract_fragment(&text);
        Ok(Response::html(fragment))
    }

    fn auth_form(&self, message: &str, next: &str) -> Response {
        Response::html(format!(
            "<!DOCTYPE html><html><head><title>Authentication required</title></head><body>\
             <h3>Authentication required</h3><p>{message}</p>\
             <form method=\"post\" action=\"{}/auth?next={}\">\
             <input type=\"text\" name=\"user\" placeholder=\"user\"> \
             <input type=\"password\" name=\"pass\" placeholder=\"password\"> \
             <input type=\"submit\" value=\"Continue\"></form></body></html>",
            self.base(),
            msite_net::url::percent_encode(next)
        ))
    }

    /// Copies registry-external counters (cache stats, live sessions)
    /// into the registry so a scrape sees one consistent surface. The
    /// cache keeps its own counters for lock-striping reasons; the
    /// monotonic `fold_to` makes this sync idempotent.
    fn sync_derived_metrics(&self) {
        let m = &self.telemetry.metrics;
        let cache = self.cache.stats();
        m.counter("msite_cache_hits_total", &[]).fold_to(cache.hits);
        m.counter("msite_cache_misses_total", &[])
            .fold_to(cache.misses);
        m.counter("msite_cache_evictions_total", &[])
            .fold_to(cache.evictions);
        m.counter("msite_cache_expirations_total", &[])
            .fold_to(cache.expirations);
        m.counter("msite_cache_stale_hits_total", &[])
            .fold_to(cache.stale_hits);
        m.counter("msite_cache_coalesced_total", &[])
            .fold_to(cache.coalesced);
        self.metrics.sessions_live.set(self.sessions.len() as i64);
    }

    /// Routes the observability endpoints — `GET /metrics`,
    /// `GET /healthz`, `GET /trace/<id>` — which are answered before
    /// any request counter or trace id moves, so scraping never
    /// perturbs the numbers being scraped. Returns `None` for ordinary
    /// proxy traffic.
    fn handle_observability(&self, request: &Request) -> Option<Response> {
        let path = request.url.path();
        match path {
            "/metrics" => Some(self.serve_metrics()),
            "/healthz" => Some(self.serve_healthz()),
            _ => path.strip_prefix("/trace/").map(|id| self.serve_trace(id)),
        }
    }

    /// `GET /metrics`: the registry's stable text exposition.
    fn serve_metrics(&self) -> Response {
        self.sync_derived_metrics();
        let text = self.telemetry.metrics.render_text();
        Response::bytes(
            "text/plain; version=0.0.4; charset=utf-8",
            Bytes::from(text.into_bytes()),
        )
    }

    /// `GET /healthz`: breaker + pool + cache summary. `200` with
    /// `"status":"ok"` when healthy; `200` + `x-msite-degraded` when
    /// the origin breaker is not closed; `503` + `x-msite-error:
    /// overloaded` when the serving tier's queue is at its depth.
    fn serve_healthz(&self) -> Response {
        use crate::error::ERROR_HEADER;
        self.sync_derived_metrics();
        let m = &self.telemetry.metrics;
        let host = Url::parse(&self.spec.page_url)
            .map(|u| u.host().to_string())
            .unwrap_or_default();
        let breaker = self.origin.breaker_state(&host);
        let queue_len = m.gauge_value("msite_server_queue_len", &[]);
        let queue_depth = m.gauge_value("msite_server_queue_depth", &[]);
        let overloaded = queue_depth > 0 && queue_len >= queue_depth;
        let degraded = breaker != BreakerState::Closed;
        let status = if overloaded {
            "overloaded"
        } else if degraded {
            "degraded"
        } else {
            "ok"
        };
        let cache = self.cache.stats();
        let body = format!(
            "{{\"status\":\"{status}\",\
             \"breaker\":{{\"host\":\"{host}\",\"state\":\"{}\"}},\
             \"pool\":{{\"queue_len\":{queue_len},\"queue_depth\":{queue_depth},\"workers\":{}}},\
             \"cache\":{{\"hits\":{},\"misses\":{},\"stale_hits\":{},\"coalesced\":{}}},\
             \"sessions\":{}}}",
            breaker.name(),
            m.gauge_value("msite_server_workers", &[]),
            cache.hits,
            cache.misses,
            cache.stale_hits,
            cache.coalesced,
            self.sessions.len(),
        );
        let mut response = Response::bytes("application/json", Bytes::from(body.into_bytes()));
        if overloaded {
            response.status = msite_net::Status::SERVICE_UNAVAILABLE;
            response.headers.set(ERROR_HEADER, "overloaded");
        } else if degraded {
            response.headers.set(
                DEGRADED_HEADER,
                &format!("breaker; host={host}; state={}", breaker.name()),
            );
        }
        response
    }

    /// `GET /trace/<id>`: the retained spans for one trace id as a
    /// JSON array, oldest first; `404` when the id is unknown (or has
    /// aged out of the ring).
    fn serve_trace(&self, id: &str) -> Response {
        let spans = Trace::parse_id(id)
            .map(|id| self.telemetry.trace_log.spans_for(id))
            .unwrap_or_default();
        if spans.is_empty() {
            return ProxyError::NotFound { what: "trace" }.into_response();
        }
        let body = format!(
            "[{}]",
            spans
                .iter()
                .map(|s| s.to_json())
                .collect::<Vec<_>>()
                .join(",")
        );
        Response::bytes("application/json", Bytes::from(body.into_bytes()))
    }

    fn handle_inner(&self, request: &Request) -> Response {
        let base = self.base();
        // One wall-clock budget per request, shared by the retry loop
        // and everything downstream of the fetch.
        let deadline = Deadline::within(self.config.resilience.deadline.0);
        let fail = |err: ProxyError| -> Response {
            // Labeled by machine-readable reason; ProxyStats::failures is
            // the sum over all reasons. Cold path, so the series lookup
            // is fine.
            self.telemetry
                .metrics
                .counter("msite_proxy_errors_total", &[("reason", err.reason())])
                .inc();
            err.into_response()
        };
        let path = request.url.path().to_string();
        let Some(rest) = path.strip_prefix(&base) else {
            return fail(ProxyError::NotFound { what: "proxy path" });
        };
        let rest = if rest.is_empty() { "/" } else { rest };

        // Session handling: issue a cookie on first contact.
        // Sessions are maintained even when the spec does not require
        // them: subpages and jars still need a home (the spec flag only
        // controls whether origin auth flows are attempted).
        let cookie_value = request.cookie(SESSION_COOKIE);
        let (session, created) = self.sessions.get_or_create(cookie_value.as_deref());
        if created {
            self.metrics.sessions_created.inc();
        }
        self.metrics.sessions_live.set(self.sessions.len() as i64);
        let session_id = session.lock().id.clone();
        let attach_cookie = |mut response: Response| -> Response {
            if created {
                let mut cookie = Cookie::new(SESSION_COOKIE, &session_id);
                cookie.http_only = true;
                cookie.path = base.clone();
                response = response.with_cookie(&cookie);
            }
            response
        };

        // Cookie clearing entry point (logout-button replacement).
        if rest == "/"
            && request.param("msite").as_deref() == Some("clearcookies")
            && *self.wants_cookie_clear.lock()
        {
            session.lock().jar.clear();
            return attach_cookie(Response::redirect(&format!("{base}/")));
        }

        let response = match rest {
            "/" => {
                burn(self.config.scripted_overhead);
                match self.shared_entry(&session, deadline) {
                    Ok((entry, None)) => Response::bytes("text/html; charset=utf-8", entry),
                    Ok((entry, Some(age))) => {
                        self.mark_stale(Response::bytes("text/html; charset=utf-8", entry), age)
                    }
                    Err(err) => fail(err),
                }
            }
            "/logout" => {
                self.fs.remove_session(&session_id);
                self.sessions.destroy(&session_id);
                self.user_bundles.lock().remove(&session_id);
                let mut kill = Cookie::new(SESSION_COOKIE, "");
                kill.expires_at = Some(0);
                kill.path = base.clone();
                return Response::redirect(&format!("{base}/")).with_cookie(&kill);
            }
            "/auth" => match request.method {
                Method::Get => self.auth_form("", &request.param("next").unwrap_or_default()),
                Method::Post => {
                    let user = request.param("user").unwrap_or_default();
                    let pass = request.param("pass").unwrap_or_default();
                    if user.is_empty() {
                        self.auth_form(
                            "User name required.",
                            &request.param("next").unwrap_or_default(),
                        )
                    } else {
                        session.lock().http_auth = Some((user, pass));
                        let next = request.param("next").unwrap_or_default();
                        Response::redirect(&format!("{base}/s/{next}"))
                    }
                }
                _ => fail(ProxyError::UnsupportedMethod),
            },
            "/proxy" => {
                burn(self.config.scripted_overhead);
                self.metrics.lightweight.inc();
                match self.satisfy_ajax(&session, request, deadline) {
                    Ok(r) => r,
                    Err(err) => fail(err),
                }
            }
            _ if rest.starts_with("/s/") => {
                burn(self.config.scripted_overhead);
                match self.serve_subpage(&session, &rest[3..], deadline) {
                    Ok(r) => r,
                    Err(err) => fail(err),
                }
            }
            _ if rest.starts_with("/img/") => {
                burn(self.config.scripted_overhead);
                self.metrics.lightweight.inc();
                match self.serve_image(&session_id, &rest[5..], deadline) {
                    Ok(r) => r,
                    Err(err) => fail(err),
                }
            }
            _ if rest.starts_with("/render/") => {
                // Alternate-engine rendering of the adapted entry page:
                // /render/text, /render/pdf, /render/image, /render/html.
                // A panicking engine degrades down the fallback chain
                // (image -> html -> text) instead of erroring. Renders
                // are cached under `render:<engine>` and concurrent
                // requests coalesce into one engine run, like the entry
                // page.
                let engine_name = &rest[8..];
                if self.engines.get(engine_name).is_none() {
                    return attach_cookie(fail(ProxyError::UnknownEngine {
                        name: engine_name.to_string(),
                    }));
                }
                let ttl = self
                    .spec
                    .snapshot
                    .as_ref()
                    .map(|s| Duration::from_secs(s.cache_ttl_secs));
                let flight = self.cache.render_flight::<ProxyError>(
                    &format!("render:{engine_name}"),
                    ttl,
                    Some(deadline.remaining()),
                    || self.render_engine_page(&session, engine_name, deadline),
                );
                let (bytes, stale_age) = match flight {
                    Flight::Hit(bytes) => {
                        self.metrics.lightweight.inc();
                        (bytes, None)
                    }
                    Flight::Led { value, .. } => (value, None),
                    Flight::Shared(bytes) => {
                        self.metrics.lightweight.inc();
                        self.metrics.renders_coalesced.inc();
                        (bytes, None)
                    }
                    Flight::Stale { value, age } => (value, Some(age)),
                    Flight::TimedOut => return attach_cookie(fail(ProxyError::DeadlineExceeded)),
                    Flight::Failed(err) => return attach_cookie(fail(err)),
                };
                match CachedRender::decode(&bytes) {
                    Some(cached) => {
                        let mut response = Response::bytes(&cached.content_type, cached.bytes);
                        response.headers.set("x-msite-engine", &cached.engine);
                        if cached.degraded {
                            response.headers.set(
                                DEGRADED_HEADER,
                                &format!("engine-fallback; from={engine_name}"),
                            );
                        }
                        match stale_age {
                            Some(age) => self.mark_stale(response, age),
                            None => response,
                        }
                    }
                    None => fail(ProxyError::RenderFailed {
                        detail: "corrupt cached render".into(),
                    }),
                }
            }
            _ if rest.starts_with("/o/") => {
                // Origin passthrough for form posts and follow-up
                // navigation out of subpages.
                let target = match Url::parse(&self.spec.page_url)
                    .and_then(|u| u.join(&format!("/{}", &rest[3..])))
                {
                    Ok(mut u) => {
                        if let Some(q) = request.url.query() {
                            u = u.join(&format!("?{q}")).unwrap_or(u);
                        }
                        u
                    }
                    Err(e) => {
                        return attach_cookie(fail(ProxyError::BadOriginUrl {
                            detail: e.to_string(),
                        }))
                    }
                };
                let mut forwarded = Request {
                    method: request.method,
                    url: target,
                    headers: request.headers.clone(),
                    body: request.body.clone(),
                };
                forwarded.headers.remove("cookie"); // jar replaces client cookies
                let response = self.origin_fetch(&session, &mut forwarded, deadline);
                // Breaker/deadline rejections are the proxy's failures,
                // not origin output; origin statuses pass through.
                if is_breaker_rejection(&response)
                    || response.headers.get(DEADLINE_HEADER).is_some()
                {
                    return attach_cookie(fail(ProxyError::from_origin_failure(&response)));
                }
                // Rewrite origin redirects back into the proxy namespace.
                if response.status.is_redirect() {
                    return attach_cookie(Response::redirect(&format!("{base}/")));
                }
                response
            }
            _ => fail(ProxyError::NotFound { what: "proxy path" }),
        };
        attach_cookie(response)
    }
}

impl Origin for ProxyServer {
    fn handle(&self, request: &Request) -> Response {
        if let Some(response) = self.handle_observability(request) {
            return response;
        }
        self.metrics.requests.inc();
        let trace = Trace::new(
            self.trace_ids.next_id(),
            Arc::clone(&self.telemetry.trace_log),
        );
        // Thread-local entry: layers without a trace parameter (cache
        // flights, resilience, stale marking) pick it up from here.
        let _entered = trace.enter();
        let started = Instant::now();
        let mut response = self.handle_inner(request);
        let elapsed = started.elapsed();
        self.metrics
            .request_micros
            .observe(elapsed.as_micros() as u64);
        trace.log().record_raw(
            trace.id(),
            "request",
            started,
            elapsed,
            vec![
                ("path".to_string(), request.url.path().to_string()),
                ("status".to_string(), response.status.0.to_string()),
            ],
        );
        response.headers.set(TRACE_HEADER, &trace.id_hex());
        response
    }

    fn name(&self) -> &str {
        "msite-proxy"
    }
}

/// Burns CPU for `duration` (models scripted-interpreter overhead).
fn burn(duration: Duration) {
    if duration.is_zero() {
        return;
    }
    let start = Instant::now();
    let mut acc = 0u64;
    while start.elapsed() < duration {
        for i in 0..512u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc);
    }
}

/// Rewrites root-relative form actions to the proxy's origin-passthrough
/// namespace so subpage forms keep working.
fn rewrite_form_actions(html: &str, base: &str) -> String {
    html.replace("action=\"/", &format!("action=\"{base}/o/"))
}

/// Subpage ids protected by the HTTP-auth attribute.
fn auth_subpage_ids(spec: &AdaptationSpec) -> Vec<String> {
    use crate::attributes::Attribute;
    let mut out = Vec::new();
    for rule in &spec.rules {
        let has_auth = rule
            .attributes
            .iter()
            .any(|a| matches!(a, Attribute::HttpAuth));
        if has_auth {
            for attr in &rule.attributes {
                if let Attribute::Subpage { id, .. } = attr {
                    out.push(id.clone());
                }
            }
        }
    }
    out
}

/// Cuts a full HTML page down to its body fragment for AJAX responses;
/// fragments pass through unchanged.
fn extract_fragment(text: &str) -> String {
    let lower = text.to_ascii_lowercase();
    let Some(open) = lower.find("<body") else {
        return text.to_string();
    };
    let Some(start) = text[open..].find('>').map(|i| open + i + 1) else {
        return text.to_string();
    };
    let end = lower.rfind("</body>").unwrap_or(text.len());
    text[start..end].to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::{Attribute, SnapshotSpec, SourceFilter, Target};
    use msite_net::Status;
    use msite_sites::{ForumConfig, ForumSite};

    fn forum_spec(site: &ForumSite) -> AdaptationSpec {
        let mut spec = AdaptationSpec::new("forum", &format!("{}/index.php", site.base_url()));
        spec.snapshot = Some(SnapshotSpec {
            scale: 0.5,
            quality: 40,
            cache_ttl_secs: 3_600,
            viewport_width: 1_024,
        });
        spec.filters.push(SourceFilter::SetTitle {
            title: "Sawmill Creek Mobile".into(),
        });
        spec = spec
            .rule(
                Target::Css("#loginform".into()),
                vec![
                    Attribute::Subpage {
                        id: "login".into(),
                        title: "Log in".into(),
                        ajax: false,
                        prerender: false,
                    },
                    Attribute::Dependency {
                        selector: "head link".into(),
                    },
                ],
            )
            .rule(
                Target::Css("#forumbits".into()),
                vec![Attribute::Subpage {
                    id: "forums".into(),
                    title: "Forums".into(),
                    ajax: false,
                    prerender: false,
                }],
            );
        spec
    }

    fn proxy_with_forum() -> (Arc<ForumSite>, ProxyServer) {
        let site = Arc::new(ForumSite::new(ForumConfig::default()));
        let spec = forum_spec(&site);
        let proxy = ProxyServer::new(spec, Arc::clone(&site) as OriginRef, ProxyConfig::default());
        (site, proxy)
    }

    fn get(proxy: &ProxyServer, path: &str) -> Response {
        proxy.handle(&Request::get(&format!("http://proxy.test{path}")).unwrap())
    }

    fn get_with_cookie(proxy: &ProxyServer, path: &str, cookie: &str) -> Response {
        proxy.handle(
            &Request::get(&format!("http://proxy.test{path}"))
                .unwrap()
                .with_header("cookie", cookie),
        )
    }

    fn session_cookie(response: &Response) -> String {
        response
            .headers
            .get("set-cookie")
            .expect("session cookie issued")
            .split(';')
            .next()
            .unwrap()
            .to_string()
    }

    #[test]
    fn entry_page_serves_snapshot_and_map() {
        let (_site, proxy) = proxy_with_forum();
        let entry = get(&proxy, "/m/forum/");
        assert!(entry.status.is_success());
        let html = entry.body_text();
        assert!(html.contains("snapshot.png"));
        assert!(html.contains("/m/forum/s/login.html"));
        assert!(html.contains("/m/forum/s/forums.html"));
        // Session cookie issued on first contact.
        assert!(entry
            .headers
            .get("set-cookie")
            .unwrap()
            .contains(SESSION_COOKIE));
    }

    #[test]
    fn snapshot_image_served_from_shared_cache() {
        let (_site, proxy) = proxy_with_forum();
        let entry = get(&proxy, "/m/forum/");
        let cookie = session_cookie(&entry);
        let img = get_with_cookie(&proxy, "/m/forum/img/snapshot.png", &cookie);
        assert!(img.status.is_success());
        assert!(img.body.starts_with(&[0x89, b'P', b'N', b'G']));
    }

    #[test]
    fn entry_caching_amortizes_rendering() {
        let (_site, proxy) = proxy_with_forum();
        let first = get(&proxy, "/m/forum/");
        let cookie = session_cookie(&first);
        for _ in 0..5 {
            let again = get_with_cookie(&proxy, "/m/forum/", &cookie);
            assert!(again.status.is_success());
        }
        let stats = proxy.stats();
        assert_eq!(stats.full_renders, 1, "snapshot rendered once");
        assert!(stats.lightweight >= 5);
        assert!(proxy.cache().amortized_savings() > Duration::ZERO);
    }

    #[test]
    fn subpages_generated_per_user() {
        let (_site, proxy) = proxy_with_forum();
        let entry = get(&proxy, "/m/forum/");
        let cookie = session_cookie(&entry);
        let login = get_with_cookie(&proxy, "/m/forum/s/login.html", &cookie);
        assert!(login.status.is_success());
        let html = login.body_text();
        assert!(html.contains("vb_login_username"));
        // Dependency copied into head.
        assert!(html.contains("vbulletin.css"));
        // Form actions rewritten through the passthrough.
        assert!(html.contains("action=\"/m/forum/o/login.php\""));
    }

    #[test]
    fn sessions_are_isolated() {
        let (_site, proxy) = proxy_with_forum();
        let a = session_cookie(&get(&proxy, "/m/forum/"));
        let b = session_cookie(&get(&proxy, "/m/forum/"));
        assert_ne!(a, b);
        let _ = get_with_cookie(&proxy, "/m/forum/s/login.html", &a);
        // User A has files, user B does not (until they ask).
        let paths = proxy.stored_files();
        let a_id = a.split('=').nth(1).unwrap();
        let b_id = b.split('=').nth(1).unwrap();
        assert!(paths.iter().any(|p| p.contains(a_id)));
        assert!(!paths.iter().any(|p| p.contains(b_id)));
        assert_eq!(proxy.session_count(), 2);
    }

    #[test]
    fn login_via_passthrough_authenticates_jar() {
        let (_site, proxy) = proxy_with_forum();
        let entry = get(&proxy, "/m/forum/");
        let cookie = session_cookie(&entry);
        let (user, pass) = ForumSite::demo_credentials();
        let login = proxy.handle(
            &Request::post_form(
                "http://proxy.test/m/forum/o/login.php",
                &[("vb_login_username", user), ("vb_login_password", pass)],
            )
            .unwrap()
            .with_header("cookie", &cookie),
        );
        // Origin redirect is rewritten into the proxy namespace.
        assert!(login.status.is_redirect());
        assert_eq!(login.headers.get("location"), Some("/m/forum/"));
        // The jar now holds the vBulletin session: private origin area
        // reachable through the passthrough.
        let private = get_with_cookie(&proxy, "/m/forum/o/private/index.php", &cookie);
        assert!(private.status.is_success());
        assert!(private.body_text().contains("Moderator Lounge"));
    }

    #[test]
    fn logout_destroys_session_files() {
        let (_site, proxy) = proxy_with_forum();
        let entry = get(&proxy, "/m/forum/");
        let cookie = session_cookie(&entry);
        let _ = get_with_cookie(&proxy, "/m/forum/s/login.html", &cookie);
        assert!(!proxy.stored_files().is_empty());
        let out = get_with_cookie(&proxy, "/m/forum/logout", &cookie);
        assert!(out.status.is_redirect());
        let id = cookie.split('=').nth(1).unwrap();
        assert!(!proxy.stored_files().iter().any(|p| p.contains(id)));
        assert_eq!(proxy.session_count(), 0);
    }

    #[test]
    fn ajax_action_satisfied_through_proxy() {
        let site = Arc::new(ForumSite::new(ForumConfig::default()));
        let mut spec = AdaptationSpec::new(
            "thread",
            &format!("{}/showthread.php?t=5555", site.base_url()),
        );
        spec.snapshot = None;
        spec = spec.rule(Target::Css("#posts".into()), vec![Attribute::AjaxRewrite]);
        let proxy = ProxyServer::new(spec, Arc::clone(&site) as OriginRef, ProxyConfig::default());
        // Entry adapts the thread page, rewriting showpic handlers.
        let entry = get(&proxy, "/m/thread/");
        let cookie = session_cookie(&entry);
        assert!(entry.body_text().contains("msiteLoad('/m/thread/proxy'"));
        // The AJAX endpoint requires an origin session; log in first.
        let (user, pass) = ForumSite::demo_credentials();
        let _ = proxy.handle(
            &Request::post_form(
                "http://proxy.test/m/thread/o/login.php",
                &[("vb_login_username", user), ("vb_login_password", pass)],
            )
            .unwrap()
            .with_header("cookie", &cookie),
        );
        let frag = get_with_cookie(&proxy, "/m/thread/proxy?action=1&p=7", &cookie);
        assert!(frag.status.is_success(), "{}", frag.body_text());
        assert!(frag.body_text().contains("/images/pic7.jpg"));
    }

    #[test]
    fn ajax_unknown_action_404() {
        let (_site, proxy) = proxy_with_forum();
        let entry = get(&proxy, "/m/forum/");
        let cookie = session_cookie(&entry);
        let r = get_with_cookie(&proxy, "/m/forum/proxy?action=99&p=1", &cookie);
        assert_eq!(r.status, Status::NOT_FOUND);
        let r = get_with_cookie(&proxy, "/m/forum/proxy", &cookie);
        assert_eq!(r.status, Status::BAD_REQUEST);
    }

    #[test]
    fn http_auth_flow() {
        let site = Arc::new(ForumSite::new(ForumConfig::default()));
        let mut spec = AdaptationSpec::new("forum", &format!("{}/index.php", site.base_url()));
        spec.snapshot = None;
        spec = spec.rule(
            Target::Css("#stats".into()),
            vec![
                Attribute::Subpage {
                    id: "stats".into(),
                    title: "Statistics".into(),
                    ajax: false,
                    prerender: false,
                },
                Attribute::HttpAuth,
            ],
        );
        let proxy = ProxyServer::new(spec, Arc::clone(&site) as OriginRef, ProxyConfig::default());
        let entry = get(&proxy, "/m/forum/");
        let cookie = session_cookie(&entry);
        // Unauthenticated: redirected to the lightweight auth page.
        let r = get_with_cookie(&proxy, "/m/forum/s/stats.html", &cookie);
        assert!(r.status.is_redirect());
        assert!(r.headers.get("location").unwrap().contains("/m/forum/auth"));
        // The form stores credentials, then the subpage serves.
        let auth = proxy.handle(
            &Request::post_form(
                "http://proxy.test/m/forum/auth?next=stats.html",
                &[("user", "admin"), ("pass", "pw")],
            )
            .unwrap()
            .with_header("cookie", &cookie),
        );
        assert!(auth.status.is_redirect());
        let r = get_with_cookie(&proxy, "/m/forum/s/stats.html", &cookie);
        assert!(r.status.is_success());
        assert!(r.body_text().contains("Statistics"));
    }

    #[test]
    fn origin_failure_returns_bad_gateway() {
        let failing: OriginRef = Arc::new(|_req: &Request| {
            Response::error(Status::SERVICE_UNAVAILABLE, "down for maintenance")
        });
        let mut spec = AdaptationSpec::new("down", "http://down.test/index.php");
        spec.snapshot = None;
        let proxy = ProxyServer::new(spec, failing, ProxyConfig::default());
        let r = get(&proxy, "/m/down/");
        assert_eq!(r.status, Status::BAD_GATEWAY);
    }

    #[test]
    fn unknown_paths_rejected() {
        let (_site, proxy) = proxy_with_forum();
        assert_eq!(get(&proxy, "/other/").status, Status::NOT_FOUND);
        assert_eq!(get(&proxy, "/m/forum/nope").status, Status::NOT_FOUND);
        assert_eq!(
            get(&proxy, "/m/forum/img/ghost.png").status,
            Status::NOT_FOUND
        );
    }

    #[test]
    fn from_script_deploys() {
        let site = Arc::new(ForumSite::new(ForumConfig::default()));
        let script = format!(
            "page forum \"{}/index.php\"\nsession required\nsnapshot scale=0.5 quality=40 ttl=60 viewport=800\n\
             rule css \"#loginform\" {{\n  subpage login \"Log in\" ajax=no prerender=no\n}}\n",
            site.base_url()
        );
        let proxy = ProxyServer::from_script(
            &script,
            Arc::clone(&site) as OriginRef,
            ProxyConfig::default(),
        )
        .unwrap();
        let entry = get(&proxy, "/m/forum/");
        assert!(entry.status.is_success());
        assert!(entry.body_text().contains("login.html"));
        assert!(
            ProxyServer::from_script("garbage", site as OriginRef, ProxyConfig::default()).is_err()
        );
    }

    #[test]
    fn pluggable_engines_render_alternate_formats() {
        let (_site, proxy) = proxy_with_forum();
        assert_eq!(proxy.engine_names(), vec!["html", "image", "text", "pdf"]);
        let entry = get(&proxy, "/m/forum/");
        let cookie = session_cookie(&entry);
        let text = get_with_cookie(&proxy, "/m/forum/render/text", &cookie);
        assert!(text.status.is_success());
        assert!(text
            .headers
            .get("content-type")
            .unwrap()
            .starts_with("text/plain"));
        assert!(text.body_text().contains("Currently Active Users"));
        let pdf = get_with_cookie(&proxy, "/m/forum/render/pdf", &cookie);
        assert!(pdf.body.starts_with(b"%PDF-1.4"));
        let image = get_with_cookie(&proxy, "/m/forum/render/image", &cookie);
        assert!(image.body.starts_with(&[0x89, b'P', b'N', b'G']));
        let missing = get_with_cookie(&proxy, "/m/forum/render/flash", &cookie);
        assert_eq!(missing.status, Status::NOT_FOUND);
    }

    #[test]
    fn stats_distinguish_render_paths() {
        let (_site, proxy) = proxy_with_forum();
        let entry = get(&proxy, "/m/forum/");
        let cookie = session_cookie(&entry);
        for _ in 0..10 {
            let _ = get_with_cookie(&proxy, "/m/forum/img/snapshot.png", &cookie);
        }
        let stats = proxy.stats();
        assert_eq!(stats.requests, 11);
        assert_eq!(stats.full_renders, 1);
        assert_eq!(stats.lightweight, 10);
    }

    #[test]
    fn overload_rejections_fold_idempotently() {
        let (_site, proxy) = proxy_with_forum();
        assert_eq!(proxy.stats().overload_rejections, 0);
        proxy.record_overload_rejections(3);
        proxy.record_overload_rejections(3); // same cumulative counter
        assert_eq!(proxy.stats().overload_rejections, 3);
        proxy.record_overload_rejections(7);
        assert_eq!(proxy.stats().overload_rejections, 7);
    }
}
