//! AJAX support (§4.4): rewriting a page's asynchronous calls so the
//! proxy satisfies them, and the registry of proxy-side actions.
//!
//! The paper's key observation: a "remote browser in a proxy" is not
//! needed to keep AJAX interactivity — "rewrite the link that gets sent
//! to the device, and embed an additional function for the proxy to
//! satisfy the request." The original handler
//!
//! ```text
//! $("#picframe").load('site.php?do=showpic&id=1')
//! ```
//!
//! becomes a static call to the proxy,
//!
//! ```text
//! proxy.php?action=1&p=1
//! ```
//!
//! where action `1` is a registered function that performs the origin
//! sub-request (with the user's cookie jar), massages the result, and
//! returns the fragment.

use msite_html::{Document, NodeId};
use msite_support::json::{obj, FromJson, JsonError, ToJson, Value};

/// A proxy-side action registered while rewriting a page.
#[derive(Debug, Clone, PartialEq)]
pub struct AjaxAction {
    /// Action number (the `action=` parameter).
    pub id: u32,
    /// Origin URL template; `{p}` is substituted with the `p` parameter.
    pub origin_url_template: String,
    /// CSS selector of the target container on the client.
    pub target_selector: String,
}

impl AjaxAction {
    /// Resolves the origin URL for a parameter value.
    pub fn origin_url(&self, p: &str) -> String {
        self.origin_url_template.replace("{p}", p)
    }
}

impl ToJson for AjaxAction {
    fn to_json_value(&self) -> Value {
        obj([
            ("id", self.id.to_json_value()),
            (
                "origin_url_template",
                self.origin_url_template.to_json_value(),
            ),
            ("target_selector", self.target_selector.to_json_value()),
        ])
    }
}

impl FromJson for AjaxAction {
    fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        Ok(AjaxAction {
            id: value.req("id")?,
            origin_url_template: value.req("origin_url_template")?,
            target_selector: value.req("target_selector")?,
        })
    }
}

/// The actions extracted from one page, in registration order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AjaxRegistry {
    /// Registered actions; ids are 1-based indexes.
    pub actions: Vec<AjaxAction>,
}

impl AjaxRegistry {
    /// Creates an empty registry.
    pub fn new() -> AjaxRegistry {
        AjaxRegistry::default()
    }

    /// Looks up an action by id.
    pub fn get(&self, id: u32) -> Option<&AjaxAction> {
        self.actions.iter().find(|a| a.id == id)
    }

    /// Registers (or reuses) an action; returns its id.
    pub fn register(&mut self, origin_url_template: String, target_selector: String) -> u32 {
        // Reuse an identical registration.
        if let Some(existing) = self.actions.iter().find(|a| {
            a.origin_url_template == origin_url_template && a.target_selector == target_selector
        }) {
            return existing.id;
        }
        let id = self.actions.len() as u32 + 1;
        self.actions.push(AjaxAction {
            id,
            origin_url_template,
            target_selector,
        });
        id
    }
}

impl ToJson for AjaxRegistry {
    fn to_json_value(&self) -> Value {
        obj([("actions", self.actions.to_json_value())])
    }
}

impl FromJson for AjaxRegistry {
    fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        Ok(AjaxRegistry {
            actions: value.req("actions")?,
        })
    }
}

/// Statistics from one rewriting pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// `onclick` handlers rewritten.
    pub handlers_rewritten: usize,
    /// Actions newly registered.
    pub actions_registered: usize,
}

/// Rewrites every `$(sel).load('url?query&id=N')`-style `onclick`
/// handler under `scope` into a proxy call
/// `proxyLoad(<action>, '<p>', '<target>')`, registering the actions.
/// `proxy_base` names the proxy endpoint the injected helper calls.
///
/// Returns per-pass statistics.
pub fn rewrite_handlers(
    doc: &mut Document,
    scope: NodeId,
    registry: &mut AjaxRegistry,
    proxy_base: &str,
) -> RewriteStats {
    let mut stats = RewriteStats::default();
    let nodes: Vec<NodeId> = std::iter::once(scope)
        .chain(doc.descendants(scope))
        .collect();
    for node in nodes {
        let Some(onclick) = doc.attr(node, "onclick").map(str::to_string) else {
            continue;
        };
        let Some(parsed) = parse_load_call(&onclick) else {
            continue;
        };
        let before = registry.actions.len();
        let action = registry.register(parsed.url_template, parsed.target_selector.clone());
        if registry.actions.len() > before {
            stats.actions_registered += 1;
        }
        let rewritten = format!(
            "msiteLoad('{proxy_base}', {action}, '{}', '{}'); return false;",
            js_escape(&parsed.p),
            js_escape(&parsed.target_selector),
        );
        doc.set_attr(node, "onclick", &rewritten);
        stats.handlers_rewritten += 1;
    }
    stats
}

/// The client-side helper injected alongside rewritten handlers: a
/// minimal XHR that loads the proxy's fragment response into the target
/// container.
pub fn client_helper_script() -> &'static str {
    r#"function msiteLoad(base, action, p, target) {
  var xhr = new XMLHttpRequest();
  xhr.open('GET', base + '?action=' + action + '&p=' + encodeURIComponent(p), true);
  xhr.onreadystatechange = function () {
    if (xhr.readyState === 4 && xhr.status === 200) {
      var el = document.querySelector(target);
      if (el) { el.innerHTML = xhr.responseText; el.style.display = 'block'; }
    }
  };
  xhr.send();
}
"#
}

struct ParsedLoad {
    url_template: String,
    p: String,
    target_selector: String,
}

/// Parses `$("#target").load('url')` handlers. The `id=`/`p=`-style last
/// query parameter becomes the action parameter `{p}`; when no query
/// exists the whole URL is the template and `p` is empty.
fn parse_load_call(onclick: &str) -> Option<ParsedLoad> {
    let dollar = onclick.find("$(")?;
    let after = &onclick[dollar + 2..];
    let (target_selector, rest) = read_js_string(after)?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix(')')?;
    let load_at = rest.find(".load(")?;
    let (url, _) = read_js_string(&rest[load_at + 6..])?;
    // Entity-decoded markup may still carry &amp;.
    let url = url.replace("&amp;", "&");
    // Split the trailing id-like parameter.
    match url.rsplit_once('=') {
        Some((prefix, value))
            if !value.is_empty() && value.chars().all(|c| c.is_ascii_alphanumeric()) =>
        {
            Some(ParsedLoad {
                url_template: format!("{prefix}={{p}}"),
                p: value.to_string(),
                target_selector,
            })
        }
        _ => Some(ParsedLoad {
            url_template: url,
            p: String::new(),
            target_selector,
        }),
    }
}

/// Reads a leading `'...'` or `"..."` JS string, returning it and the
/// remainder.
fn read_js_string(s: &str) -> Option<(String, &str)> {
    let mut chars = s.char_indices();
    let (_, quote) = chars.next()?;
    if quote != '\'' && quote != '"' {
        return None;
    }
    let mut out = String::new();
    for (i, ch) in chars {
        if ch == quote {
            return Some((out, &s[i + 1..]));
        }
        out.push(ch);
    }
    None
}

fn js_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\'', "\\'")
}

/// Converts every plain `<a href>` under `scope` into an asynchronous
/// proxy load into `target` — the §4.5 CraigsList adaptation ("rather
/// than designing a platform specific application ... we develop a
/// browser-based content adaptation application ... which simplifies
/// navigation by adding asynchronous data loads"). Links sharing a URL
/// shape (same string once its last digit run is parameterized) share
/// one action.
pub fn linkify_to_ajax(
    doc: &mut Document,
    scope: NodeId,
    registry: &mut AjaxRegistry,
    proxy_base: &str,
    target: &str,
) -> RewriteStats {
    let mut stats = RewriteStats::default();
    let links: Vec<NodeId> = std::iter::once(scope)
        .chain(doc.descendants(scope))
        .filter(|&n| {
            doc.is_element_named(n, "a")
                && doc
                    .attr(n, "href")
                    .map(|h| !h.is_empty() && !h.starts_with('#'))
                    .unwrap_or(false)
        })
        .collect();
    for link in links {
        let href = doc.attr(link, "href").expect("filtered above").to_string();
        let (template, p) = parameterize_digits(&href);
        let before = registry.actions.len();
        let action = registry.register(template, target.to_string());
        if registry.actions.len() > before {
            stats.actions_registered += 1;
        }
        let onclick = format!(
            "msiteLoad('{proxy_base}', {action}, '{}', '{}'); return false;",
            js_escape(&p),
            js_escape(target),
        );
        doc.set_attr(link, "onclick", &onclick);
        stats.handlers_rewritten += 1;
    }
    stats
}

/// Replaces the last run of ASCII digits in `url` with `{p}`, returning
/// the template and the extracted value. URLs without digits become
/// parameterless actions.
fn parameterize_digits(url: &str) -> (String, String) {
    let bytes = url.as_bytes();
    let mut end = bytes.len();
    while end > 0 {
        if bytes[end - 1].is_ascii_digit() {
            let mut start = end;
            while start > 0 && bytes[start - 1].is_ascii_digit() {
                start -= 1;
            }
            return (
                format!("{}{{p}}{}", &url[..start], &url[end..]),
                url[start..end].to_string(),
            );
        }
        end -= 1;
    }
    (url.to_string(), String::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use msite_html::parse_document;

    #[test]
    fn rewrites_paper_example() {
        // The paper's exact illustration.
        let mut doc = parse_document(
            r##"<a href="#" onclick="$('#picframe').load('site.php?do=showpic&amp;id=1')">Show Picture</a>"##,
        );
        let mut registry = AjaxRegistry::new();
        let root = doc.root();
        let stats = rewrite_handlers(&mut doc, root, &mut registry, "/m/forum/proxy");
        assert_eq!(stats.handlers_rewritten, 1);
        assert_eq!(registry.actions.len(), 1);
        let action = &registry.actions[0];
        assert_eq!(action.id, 1);
        assert_eq!(action.origin_url_template, "site.php?do=showpic&id={p}");
        assert_eq!(action.target_selector, "#picframe");
        assert_eq!(action.origin_url("1"), "site.php?do=showpic&id=1");
        let a = doc.elements_by_tag(doc.root(), "a")[0];
        let onclick = doc.attr(a, "onclick").unwrap();
        assert!(onclick.contains("msiteLoad('/m/forum/proxy', 1, '1', '#picframe')"));
    }

    #[test]
    fn identical_calls_share_one_action() {
        let mut doc = parse_document(
            r#"<a onclick="$('#f').load('x.php?id=1')">a</a>
               <a onclick="$('#f').load('x.php?id=2')">b</a>
               <a onclick="$('#g').load('x.php?id=3')">c</a>"#,
        );
        let mut registry = AjaxRegistry::new();
        let root = doc.root();
        let stats = rewrite_handlers(&mut doc, root, &mut registry, "/p");
        assert_eq!(stats.handlers_rewritten, 3);
        // Same template+target dedups; different target is a new action.
        assert_eq!(registry.actions.len(), 2);
        assert_eq!(registry.get(1).unwrap().target_selector, "#f");
        assert_eq!(registry.get(2).unwrap().target_selector, "#g");
        assert!(registry.get(99).is_none());
    }

    #[test]
    fn non_load_handlers_untouched() {
        let mut doc = parse_document(r#"<a onclick="return confirm('sure?')">x</a>"#);
        let mut registry = AjaxRegistry::new();
        let root = doc.root();
        let stats = rewrite_handlers(&mut doc, root, &mut registry, "/p");
        assert_eq!(stats.handlers_rewritten, 0);
        let a = doc.elements_by_tag(doc.root(), "a")[0];
        assert_eq!(doc.attr(a, "onclick").unwrap(), "return confirm('sure?')");
    }

    #[test]
    fn url_without_query_parameter() {
        let mut doc =
            parse_document(r#"<a onclick="$('#pane').load('/static/help.html')">help</a>"#);
        let mut registry = AjaxRegistry::new();
        let root = doc.root();
        rewrite_handlers(&mut doc, root, &mut registry, "/p");
        let action = registry.get(1).unwrap();
        assert_eq!(action.origin_url_template, "/static/help.html");
        assert_eq!(action.origin_url(""), "/static/help.html");
    }

    #[test]
    fn double_quoted_strings_supported() {
        let mut doc = parse_document("<a onclick='$(\"#x\").load(\"f.php?p=9\")'>x</a>");
        let mut registry = AjaxRegistry::new();
        let root = doc.root();
        let stats = rewrite_handlers(&mut doc, root, &mut registry, "/p");
        assert_eq!(stats.handlers_rewritten, 1);
        assert_eq!(registry.get(1).unwrap().origin_url_template, "f.php?p={p}");
    }

    #[test]
    fn registry_serializes() {
        let mut registry = AjaxRegistry::new();
        registry.register("a.php?id={p}".into(), "#t".into());
        let json = registry.to_json_pretty();
        let parsed = AjaxRegistry::from_json_str(&json).unwrap();
        assert_eq!(registry, parsed);
    }

    #[test]
    fn linkify_rewrites_plain_links() {
        let mut doc = parse_document(
            r##"<ul id="results">
               <li><a class="l" href="/listing/1000005.html">Bandsaw</a></li>
               <li><a class="l" href="/listing/1000006.html">Table</a></li>
               <li><a href="#top">skip me</a></li>
               </ul>"##,
        );
        let mut registry = AjaxRegistry::new();
        let root = doc.root();
        let stats = linkify_to_ajax(&mut doc, root, &mut registry, "/m/cl/proxy", "#detail");
        assert_eq!(stats.handlers_rewritten, 2);
        // Same URL shape -> one shared action.
        assert_eq!(registry.actions.len(), 1);
        assert_eq!(registry.actions[0].origin_url_template, "/listing/{p}.html");
        assert_eq!(
            registry.actions[0].origin_url("1000005"),
            "/listing/1000005.html"
        );
        let html = doc.to_html();
        assert!(html.contains("msiteLoad('/m/cl/proxy', 1, '1000005', '#detail')"));
        assert!(html.contains("msiteLoad('/m/cl/proxy', 1, '1000006', '#detail')"));
        // The fragment link is untouched.
        assert!(html.contains("href=\"#top\""));
    }

    #[test]
    fn parameterize_digit_forms() {
        assert_eq!(
            parameterize_digits("/listing/123.html"),
            ("/listing/{p}.html".into(), "123".into())
        );
        assert_eq!(
            parameterize_digits("/x?page=2"),
            ("/x?page={p}".into(), "2".into())
        );
        assert_eq!(parameterize_digits("/plain"), ("/plain".into(), "".into()));
        assert_eq!(
            parameterize_digits("/a1/b22"),
            ("/a1/b{p}".into(), "22".into())
        );
    }

    #[test]
    fn helper_script_is_plain_js() {
        let js = client_helper_script();
        assert!(js.contains("function msiteLoad"));
        assert!(js.contains("XMLHttpRequest"));
    }
}
