//! Proxy configuration.

use crate::persist::{DiskBackend, FsDisk};
use crate::session::SessionStore;
use msite_net::ResiliencePolicy;
use msite_render::browser::BrowserConfig;
use msite_support::telemetry::Telemetry;
use std::sync::Arc;
use std::time::Duration;

/// Configuration for the crash-safe persistent cache tier: which disk
/// backend the [`DiskTier`](crate::persist::DiskTier) journals to and
/// how many bytes it may occupy. Constructed via [`PersistConfig::dir`]
/// (a real directory) or [`PersistConfig::with_backend`] (any
/// [`DiskBackend`], e.g. [`MemDisk`](crate::persist::MemDisk) in tests
/// or a [`FlakyDisk`](crate::persist::FlakyDisk) chaos wrapper).
#[derive(Clone)]
pub struct PersistConfig {
    /// The disk the tier journals artifacts to.
    pub backend: Arc<dyn DiskBackend>,
    /// Byte budget for segment files (`persist_capacity_bytes`); the
    /// oldest segment is dropped whole when exceeded.
    pub capacity_bytes: u64,
}

/// Default persistent-tier byte budget (64 MiB).
pub const DEFAULT_PERSIST_CAPACITY_BYTES: u64 = 64 * 1024 * 1024;

impl PersistConfig {
    /// Persists under `dir` on the real filesystem (`persist_dir`),
    /// creating it if needed.
    ///
    /// # Errors
    ///
    /// Returns the error from creating the directory.
    pub fn dir(dir: impl Into<std::path::PathBuf>) -> std::io::Result<PersistConfig> {
        Ok(PersistConfig {
            backend: Arc::new(FsDisk::open(dir)?),
            capacity_bytes: DEFAULT_PERSIST_CAPACITY_BYTES,
        })
    }

    /// Persists to an arbitrary backend — how tests share a
    /// [`MemDisk`](crate::persist::MemDisk) across simulated restarts
    /// and chaos runs inject a [`FlakyDisk`](crate::persist::FlakyDisk).
    pub fn with_backend(backend: Arc<dyn DiskBackend>, capacity_bytes: u64) -> PersistConfig {
        PersistConfig {
            backend,
            capacity_bytes,
        }
    }
}

impl std::fmt::Debug for PersistConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistConfig")
            .field("backend", &"dyn DiskBackend")
            .field("capacity_bytes", &self.capacity_bytes)
            .finish()
    }
}

/// Proxy configuration.
#[derive(Debug, Clone)]
pub struct ProxyConfig {
    /// Extra CPU burned per scripted (non-browser) request, modeling the
    /// paper's PHP interpreter + filesystem overhead. Zero by default;
    /// the Figure 7 harness sets ~3.5 ms to reproduce the paper's
    /// absolute throughput scale.
    pub scripted_overhead: Duration,
    /// Shared render-cache capacity (entries).
    pub cache_capacity: usize,
    /// Seed for session-id generation.
    pub seed: u64,
    /// Browser configuration used by the pipeline.
    pub browser_config: BrowserConfig,
    /// Fault-tolerance policy for origin fetches: retry budget, backoff
    /// shape, per-request deadline, breaker thresholds.
    pub resilience: ResiliencePolicy,
    /// How long expired cache entries stay servable as degraded
    /// (stale) output when the origin is unavailable.
    pub stale_window: Duration,
    /// Worker-crew width for the adaptation pipeline's fan-out stages
    /// (subpage assembly, image pre-renders, imagemap geometry). `1`
    /// runs the pipeline serially; output is byte-identical either way.
    pub pipeline_parallelism: usize,
    /// Telemetry destination. `None` (the default) gives the proxy a
    /// private registry + trace ring; pass a shared handle (the one the
    /// HTTP server binds with) so proxy, server, and resilience
    /// counters land in one scrapeable registry.
    pub telemetry: Option<Telemetry>,
    /// Enables incremental re-adaptation: when an entry rebuild runs,
    /// subpage artifacts whose source-subtree fingerprints (and
    /// assembly inputs) are unchanged are served from the
    /// fingerprint-keyed subtree cache instead of being re-assembled
    /// and re-rendered. Output is byte-identical either way.
    pub incremental: bool,
    /// Capacity (entries) of the fingerprint-keyed subtree artifact
    /// cache backing incremental re-adaptation.
    pub subtree_cache_capacity: usize,
    /// Enables progressive (chunked) delivery of the entry page for
    /// requests that opt in with the `x-msite-stream: chunked` header:
    /// the entry snapshot + imagemap HTML is flushed as the first
    /// chunk while subpage assembly is still running. The
    /// concatenation of all chunks is byte-identical to the batch
    /// response body.
    pub streaming: bool,
    /// Crash-safe persistent second cache tier. `None` (the default)
    /// keeps the render cache memory-only; `Some` journals rendered
    /// artifacts through a [`DiskTier`](crate::persist::DiskTier) so a
    /// restarted proxy warm-starts from disk instead of re-rendering
    /// its working set.
    pub persist: Option<PersistConfig>,
    /// Maximum live sessions the session store holds; past it the
    /// least-recently-used session (of the most occupied tenant) is
    /// evicted, its cookie jar dropped and its directory wiped.
    pub max_sessions: usize,
    /// Idle timeout for sessions (sliding, refreshed on every touched
    /// request). `None` disables expiry.
    pub session_ttl: Option<Duration>,
    /// Byte budget for per-session directories in the session
    /// filesystem; exceeding it evicts least-recently-used sessions
    /// that own bytes until back under.
    pub fs_byte_budget: usize,
    /// Fraction of `max_sessions` a single tenant (origin site) may
    /// occupy, in (0, 1]. At quota a tenant evicts its *own* LRU
    /// session, so one hot forum cannot push other tenants' jars out.
    pub tenant_share: f64,
    /// Session store to share between proxies. `None` (the default)
    /// gives this proxy a private [`SessionStore`] built from the
    /// knobs above; multi-tenant embedders pass one shared store (with
    /// its own `SessionStoreConfig`) to every tenant proxy so the
    /// global bound and per-tenant quotas span all of them.
    pub session_store: Option<Arc<SessionStore>>,
}

impl Default for ProxyConfig {
    fn default() -> Self {
        ProxyConfig {
            scripted_overhead: Duration::ZERO,
            cache_capacity: 256,
            seed: 0x6d_73_69_74_65, // "msite"
            browser_config: BrowserConfig::default(),
            resilience: ResiliencePolicy::default(),
            stale_window: Duration::from_secs(600),
            pipeline_parallelism: msite_support::thread::default_parallelism(),
            telemetry: None,
            incremental: true,
            subtree_cache_capacity: 512,
            streaming: true,
            persist: None,
            max_sessions: 4096,
            session_ttl: Some(Duration::from_secs(1800)),
            fs_byte_budget: 64 * 1024 * 1024,
            tenant_share: 1.0,
            session_store: None,
        }
    }
}
