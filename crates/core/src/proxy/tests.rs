use super::{ProxyConfig, ProxyServer};
use crate::attributes::{AdaptationSpec, Attribute, SnapshotSpec, SourceFilter, Target};
use crate::session::SESSION_COOKIE;
use msite_net::{Origin, OriginRef, Request, Response, Status};
use msite_sites::{ForumConfig, ForumSite};
use std::sync::Arc;
use std::time::Duration;

fn forum_spec(site: &ForumSite) -> AdaptationSpec {
    let mut spec = AdaptationSpec::new("forum", &format!("{}/index.php", site.base_url()));
    spec.snapshot = Some(SnapshotSpec {
        scale: 0.5,
        quality: 40,
        cache_ttl_secs: 3_600,
        viewport_width: 1_024,
    });
    spec.filters.push(SourceFilter::SetTitle {
        title: "Sawmill Creek Mobile".into(),
    });
    spec = spec
        .rule(
            Target::Css("#loginform".into()),
            vec![
                Attribute::Subpage {
                    id: "login".into(),
                    title: "Log in".into(),
                    ajax: false,
                    prerender: false,
                },
                Attribute::Dependency {
                    selector: "head link".into(),
                },
            ],
        )
        .rule(
            Target::Css("#forumbits".into()),
            vec![Attribute::Subpage {
                id: "forums".into(),
                title: "Forums".into(),
                ajax: false,
                prerender: false,
            }],
        );
    spec
}

fn proxy_with_forum() -> (Arc<ForumSite>, ProxyServer) {
    let site = Arc::new(ForumSite::new(ForumConfig::default()));
    let spec = forum_spec(&site);
    let proxy = ProxyServer::new(spec, Arc::clone(&site) as OriginRef, ProxyConfig::default());
    (site, proxy)
}

fn get(proxy: &ProxyServer, path: &str) -> Response {
    proxy.handle(&Request::get(&format!("http://proxy.test{path}")).unwrap())
}

fn get_with_cookie(proxy: &ProxyServer, path: &str, cookie: &str) -> Response {
    proxy.handle(
        &Request::get(&format!("http://proxy.test{path}"))
            .unwrap()
            .with_header("cookie", cookie),
    )
}

fn session_cookie(response: &Response) -> String {
    response
        .headers
        .get("set-cookie")
        .expect("session cookie issued")
        .split(';')
        .next()
        .unwrap()
        .to_string()
}

#[test]
fn entry_page_serves_snapshot_and_map() {
    let (_site, proxy) = proxy_with_forum();
    let entry = get(&proxy, "/m/forum/");
    assert!(entry.status.is_success());
    let html = entry.body_text();
    assert!(html.contains("snapshot.png"));
    assert!(html.contains("/m/forum/s/login.html"));
    assert!(html.contains("/m/forum/s/forums.html"));
    // Session cookie issued on first contact.
    assert!(entry
        .headers
        .get("set-cookie")
        .unwrap()
        .contains(SESSION_COOKIE));
}

#[test]
fn snapshot_image_served_from_shared_cache() {
    let (_site, proxy) = proxy_with_forum();
    let entry = get(&proxy, "/m/forum/");
    let cookie = session_cookie(&entry);
    let img = get_with_cookie(&proxy, "/m/forum/img/snapshot.png", &cookie);
    assert!(img.status.is_success());
    assert!(img.body.starts_with(&[0x89, b'P', b'N', b'G']));
}

#[test]
fn entry_caching_amortizes_rendering() {
    let (_site, proxy) = proxy_with_forum();
    let first = get(&proxy, "/m/forum/");
    let cookie = session_cookie(&first);
    for _ in 0..5 {
        let again = get_with_cookie(&proxy, "/m/forum/", &cookie);
        assert!(again.status.is_success());
    }
    let stats = proxy.stats();
    assert_eq!(stats.full_renders, 1, "snapshot rendered once");
    assert!(stats.lightweight >= 5);
    assert!(proxy.cache().amortized_savings() > Duration::ZERO);
}

#[test]
fn subpages_generated_per_user() {
    let (_site, proxy) = proxy_with_forum();
    let entry = get(&proxy, "/m/forum/");
    let cookie = session_cookie(&entry);
    let login = get_with_cookie(&proxy, "/m/forum/s/login.html", &cookie);
    assert!(login.status.is_success());
    let html = login.body_text();
    assert!(html.contains("vb_login_username"));
    // Dependency copied into head.
    assert!(html.contains("vbulletin.css"));
    // Form actions rewritten through the passthrough.
    assert!(html.contains("action=\"/m/forum/o/login.php\""));
}

#[test]
fn sessions_are_isolated() {
    let (_site, proxy) = proxy_with_forum();
    let a = session_cookie(&get(&proxy, "/m/forum/"));
    let b = session_cookie(&get(&proxy, "/m/forum/"));
    assert_ne!(a, b);
    let _ = get_with_cookie(&proxy, "/m/forum/s/login.html", &a);
    // User A has files, user B does not (until they ask).
    let paths = proxy.stored_files();
    let a_id = a.split('=').nth(1).unwrap();
    let b_id = b.split('=').nth(1).unwrap();
    assert!(paths.iter().any(|p| p.contains(a_id)));
    assert!(!paths.iter().any(|p| p.contains(b_id)));
    assert_eq!(proxy.session_count(), 2);
}

#[test]
fn login_via_passthrough_authenticates_jar() {
    let (_site, proxy) = proxy_with_forum();
    let entry = get(&proxy, "/m/forum/");
    let cookie = session_cookie(&entry);
    let (user, pass) = ForumSite::demo_credentials();
    let login = proxy.handle(
        &Request::post_form(
            "http://proxy.test/m/forum/o/login.php",
            &[("vb_login_username", user), ("vb_login_password", pass)],
        )
        .unwrap()
        .with_header("cookie", &cookie),
    );
    // Origin redirect is rewritten into the proxy namespace.
    assert!(login.status.is_redirect());
    assert_eq!(login.headers.get("location"), Some("/m/forum/"));
    // The jar now holds the vBulletin session: private origin area
    // reachable through the passthrough.
    let private = get_with_cookie(&proxy, "/m/forum/o/private/index.php", &cookie);
    assert!(private.status.is_success());
    assert!(private.body_text().contains("Moderator Lounge"));
}

#[test]
fn logout_destroys_session_files() {
    let (_site, proxy) = proxy_with_forum();
    let entry = get(&proxy, "/m/forum/");
    let cookie = session_cookie(&entry);
    let _ = get_with_cookie(&proxy, "/m/forum/s/login.html", &cookie);
    assert!(!proxy.stored_files().is_empty());
    let out = get_with_cookie(&proxy, "/m/forum/logout", &cookie);
    assert!(out.status.is_redirect());
    let id = cookie.split('=').nth(1).unwrap();
    assert!(!proxy.stored_files().iter().any(|p| p.contains(id)));
    assert_eq!(proxy.session_count(), 0);
}

#[test]
fn ajax_action_satisfied_through_proxy() {
    let site = Arc::new(ForumSite::new(ForumConfig::default()));
    let mut spec = AdaptationSpec::new(
        "thread",
        &format!("{}/showthread.php?t=5555", site.base_url()),
    );
    spec.snapshot = None;
    spec = spec.rule(Target::Css("#posts".into()), vec![Attribute::AjaxRewrite]);
    let proxy = ProxyServer::new(spec, Arc::clone(&site) as OriginRef, ProxyConfig::default());
    // Entry adapts the thread page, rewriting showpic handlers.
    let entry = get(&proxy, "/m/thread/");
    let cookie = session_cookie(&entry);
    assert!(entry.body_text().contains("msiteLoad('/m/thread/proxy'"));
    // The AJAX endpoint requires an origin session; log in first.
    let (user, pass) = ForumSite::demo_credentials();
    let _ = proxy.handle(
        &Request::post_form(
            "http://proxy.test/m/thread/o/login.php",
            &[("vb_login_username", user), ("vb_login_password", pass)],
        )
        .unwrap()
        .with_header("cookie", &cookie),
    );
    let frag = get_with_cookie(&proxy, "/m/thread/proxy?action=1&p=7", &cookie);
    assert!(frag.status.is_success(), "{}", frag.body_text());
    assert!(frag.body_text().contains("/images/pic7.jpg"));
}

#[test]
fn ajax_unknown_action_404() {
    let (_site, proxy) = proxy_with_forum();
    let entry = get(&proxy, "/m/forum/");
    let cookie = session_cookie(&entry);
    let r = get_with_cookie(&proxy, "/m/forum/proxy?action=99&p=1", &cookie);
    assert_eq!(r.status, Status::NOT_FOUND);
    let r = get_with_cookie(&proxy, "/m/forum/proxy", &cookie);
    assert_eq!(r.status, Status::BAD_REQUEST);
}

#[test]
fn http_auth_flow() {
    let site = Arc::new(ForumSite::new(ForumConfig::default()));
    let mut spec = AdaptationSpec::new("forum", &format!("{}/index.php", site.base_url()));
    spec.snapshot = None;
    spec = spec.rule(
        Target::Css("#stats".into()),
        vec![
            Attribute::Subpage {
                id: "stats".into(),
                title: "Statistics".into(),
                ajax: false,
                prerender: false,
            },
            Attribute::HttpAuth,
        ],
    );
    let proxy = ProxyServer::new(spec, Arc::clone(&site) as OriginRef, ProxyConfig::default());
    let entry = get(&proxy, "/m/forum/");
    let cookie = session_cookie(&entry);
    // Unauthenticated: redirected to the lightweight auth page.
    let r = get_with_cookie(&proxy, "/m/forum/s/stats.html", &cookie);
    assert!(r.status.is_redirect());
    assert!(r.headers.get("location").unwrap().contains("/m/forum/auth"));
    // The form stores credentials, then the subpage serves.
    let auth = proxy.handle(
        &Request::post_form(
            "http://proxy.test/m/forum/auth?next=stats.html",
            &[("user", "admin"), ("pass", "pw")],
        )
        .unwrap()
        .with_header("cookie", &cookie),
    );
    assert!(auth.status.is_redirect());
    let r = get_with_cookie(&proxy, "/m/forum/s/stats.html", &cookie);
    assert!(r.status.is_success());
    assert!(r.body_text().contains("Statistics"));
}

#[test]
fn origin_failure_returns_bad_gateway() {
    let failing: OriginRef = Arc::new(|_req: &Request| {
        Response::error(Status::SERVICE_UNAVAILABLE, "down for maintenance")
    });
    let mut spec = AdaptationSpec::new("down", "http://down.test/index.php");
    spec.snapshot = None;
    let proxy = ProxyServer::new(spec, failing, ProxyConfig::default());
    let r = get(&proxy, "/m/down/");
    assert_eq!(r.status, Status::BAD_GATEWAY);
}

#[test]
fn unknown_paths_rejected() {
    let (_site, proxy) = proxy_with_forum();
    assert_eq!(get(&proxy, "/other/").status, Status::NOT_FOUND);
    assert_eq!(get(&proxy, "/m/forum/nope").status, Status::NOT_FOUND);
    assert_eq!(
        get(&proxy, "/m/forum/img/ghost.png").status,
        Status::NOT_FOUND
    );
}

#[test]
fn from_script_deploys() {
    let site = Arc::new(ForumSite::new(ForumConfig::default()));
    let script = format!(
        "page forum \"{}/index.php\"\nsession required\nsnapshot scale=0.5 quality=40 ttl=60 viewport=800\n\
         rule css \"#loginform\" {{\n  subpage login \"Log in\" ajax=no prerender=no\n}}\n",
        site.base_url()
    );
    let proxy = ProxyServer::from_script(
        &script,
        Arc::clone(&site) as OriginRef,
        ProxyConfig::default(),
    )
    .unwrap();
    let entry = get(&proxy, "/m/forum/");
    assert!(entry.status.is_success());
    assert!(entry.body_text().contains("login.html"));
    assert!(
        ProxyServer::from_script("garbage", site as OriginRef, ProxyConfig::default()).is_err()
    );
}

#[test]
fn pluggable_engines_render_alternate_formats() {
    let (_site, proxy) = proxy_with_forum();
    assert_eq!(proxy.engine_names(), vec!["html", "image", "text", "pdf"]);
    let entry = get(&proxy, "/m/forum/");
    let cookie = session_cookie(&entry);
    let text = get_with_cookie(&proxy, "/m/forum/render/text", &cookie);
    assert!(text.status.is_success());
    assert!(text
        .headers
        .get("content-type")
        .unwrap()
        .starts_with("text/plain"));
    assert!(text.body_text().contains("Currently Active Users"));
    let pdf = get_with_cookie(&proxy, "/m/forum/render/pdf", &cookie);
    assert!(pdf.body.starts_with(b"%PDF-1.4"));
    let image = get_with_cookie(&proxy, "/m/forum/render/image", &cookie);
    assert!(image.body.starts_with(&[0x89, b'P', b'N', b'G']));
    let missing = get_with_cookie(&proxy, "/m/forum/render/flash", &cookie);
    assert_eq!(missing.status, Status::NOT_FOUND);
}

#[test]
fn stats_distinguish_render_paths() {
    let (_site, proxy) = proxy_with_forum();
    let entry = get(&proxy, "/m/forum/");
    let cookie = session_cookie(&entry);
    for _ in 0..10 {
        let _ = get_with_cookie(&proxy, "/m/forum/img/snapshot.png", &cookie);
    }
    let stats = proxy.stats();
    assert_eq!(stats.requests, 11);
    assert_eq!(stats.full_renders, 1);
    assert_eq!(stats.lightweight, 10);
}

#[test]
fn overload_rejections_fold_idempotently() {
    let (_site, proxy) = proxy_with_forum();
    assert_eq!(proxy.stats().overload_rejections, 0);
    proxy.record_overload_rejections(3);
    proxy.record_overload_rejections(3); // same cumulative counter
    assert_eq!(proxy.stats().overload_rejections, 3);
    proxy.record_overload_rejections(7);
    assert_eq!(proxy.stats().overload_rejections, 7);
}

#[test]
fn streamed_entry_concatenates_to_batch_body() {
    let (_site, proxy) = proxy_with_forum();
    // Batch first, on a fresh twin proxy, so both runs start cold.
    let (_site2, streamed_proxy) = proxy_with_forum();
    let batch = get(&proxy, "/m/forum/");
    let streamed = streamed_proxy.handle(
        &Request::get("http://proxy.test/m/forum/")
            .unwrap()
            .with_header(super::STREAM_HEADER, "chunked"),
    );
    assert!(streamed.status.is_success());
    let drained = streamed.into_collected();
    assert_eq!(
        drained.body_text(),
        batch.body_text(),
        "chunk concatenation must equal the batch entry body"
    );
    assert_eq!(streamed_proxy.stats().streamed_responses, 1);
}
