//! Request routing: the proxy-namespace dispatcher and the [`Origin`]
//! implementation (trace creation + request span).

use super::streaming;
use super::ProxyServer;
use crate::cache::Flight;
use crate::engine::CachedRender;
use crate::error::{ProxyError, DEGRADED_HEADER};
use crate::session::SESSION_COOKIE;
use msite_net::resilience::{is_breaker_rejection, Deadline, DEADLINE_HEADER};
use msite_net::{Cookie, Method, Origin, Request, Response, Url};
use msite_support::telemetry::{Trace, TRACE_HEADER};
use std::sync::Arc;
use std::time::{Duration, Instant};

impl ProxyServer {
    fn handle_inner(&self, request: &Request) -> Response {
        let base = self.base();
        // One wall-clock budget per request, shared by the retry loop
        // and everything downstream of the fetch.
        let deadline = Deadline::within(self.config.resilience.deadline.0);
        let fail = |err: ProxyError| -> Response {
            // Labeled by machine-readable reason; ProxyStats::failures is
            // the sum over all reasons. Cold path, so the series lookup
            // is fine.
            self.telemetry
                .metrics
                .counter("msite_proxy_errors_total", &[("reason", err.reason())])
                .inc();
            err.into_response()
        };
        let path = request.url.path().to_string();
        let Some(rest) = path.strip_prefix(&base) else {
            return fail(ProxyError::NotFound { what: "proxy path" });
        };
        let rest = if rest.is_empty() { "/" } else { rest };

        // Session handling: issue a cookie on first contact.
        // Sessions are maintained even when the spec does not require
        // them: subpages and jars still need a home (the spec flag only
        // controls whether origin auth flows are attempted).
        let cookie_value = request.cookie(SESSION_COOKIE);
        let (session, created) = self
            .sessions
            .get_or_create(cookie_value.as_deref(), &self.tenant);
        if created {
            self.metrics.sessions_created.inc();
        }
        self.metrics.sessions_live.set(self.sessions.len() as i64);
        self.metrics.session_live.set(self.sessions.len() as i64);
        let session_id = session.lock().id.clone();
        let attach_cookie = |mut response: Response| -> Response {
            if created {
                let mut cookie = Cookie::new(SESSION_COOKIE, &session_id);
                cookie.http_only = true;
                cookie.path = base.clone();
                response = response.with_cookie(&cookie);
            }
            response
        };

        // Cookie clearing entry point (logout-button replacement).
        if rest == "/"
            && request.param("msite").as_deref() == Some("clearcookies")
            && *self.wants_cookie_clear.lock()
        {
            session.lock().jar.clear();
            return attach_cookie(Response::redirect(&format!("{base}/")));
        }

        let response = match rest {
            "/" => {
                burn(self.config.scripted_overhead);
                // Resolve the fidelity tier up front when the spec
                // carries a fidelity-tier attribute: a pinned tier
                // wins, else the client's bandwidth header, else the
                // User-Agent's device class (see `content::fidelity`).
                let tier = self.spec.fidelity_request().map(|explicit| {
                    crate::content::resolve_tier(
                        explicit,
                        request
                            .headers
                            .get(crate::content::fidelity::BANDWIDTH_HEADER),
                        request.headers.get("user-agent").unwrap_or(""),
                    )
                });
                if let Some(class) = tier {
                    self.telemetry
                        .metrics
                        .counter("msite_fidelity_tier", &[("tier", class.name())])
                        .inc();
                }
                // Tiered entries are cached per tier and always built
                // on the batch path; the streaming producer's cache key
                // is tier-less, so it only serves tier-less specs.
                if tier.is_none() && self.config.streaming && streaming::wants_stream(request) {
                    match self.streamed_entry(&session, deadline) {
                        Ok(r) => r,
                        Err(err) => fail(err),
                    }
                } else {
                    let arrived = Instant::now();
                    match self.shared_entry(&session, deadline, tier) {
                        Ok((entry, stale_age)) => {
                            self.metrics
                                .ttfb_micros
                                .observe(arrived.elapsed().as_micros() as u64);
                            let response = Response::bytes("text/html; charset=utf-8", entry);
                            match stale_age {
                                None => response,
                                Some(age) => self.mark_stale(response, age),
                            }
                        }
                        Err(err) => fail(err),
                    }
                }
            }
            "/logout" => {
                // The store's teardown wipes the session directory and
                // runs the eviction hooks (dropping the user bundle).
                self.sessions.destroy(&session_id);
                let mut kill = Cookie::new(SESSION_COOKIE, "");
                kill.expires_at = Some(0);
                kill.path = base.clone();
                return Response::redirect(&format!("{base}/")).with_cookie(&kill);
            }
            "/auth" => match request.method {
                Method::Get => self.auth_form("", &request.param("next").unwrap_or_default()),
                Method::Post => {
                    let user = request.param("user").unwrap_or_default();
                    let pass = request.param("pass").unwrap_or_default();
                    if user.is_empty() {
                        self.auth_form(
                            "User name required.",
                            &request.param("next").unwrap_or_default(),
                        )
                    } else {
                        session.lock().http_auth = Some((user, pass));
                        let next = request.param("next").unwrap_or_default();
                        Response::redirect(&format!("{base}/s/{next}"))
                    }
                }
                _ => fail(ProxyError::UnsupportedMethod),
            },
            "/proxy" => {
                burn(self.config.scripted_overhead);
                self.metrics.lightweight.inc();
                match self.satisfy_ajax(&session, request, deadline) {
                    Ok(r) => r,
                    Err(err) => fail(err),
                }
            }
            _ if rest.starts_with("/s/") => {
                burn(self.config.scripted_overhead);
                match self.serve_subpage(&session, &rest[3..], deadline) {
                    Ok(r) => r,
                    Err(err) => fail(err),
                }
            }
            _ if rest.starts_with("/img/") => {
                burn(self.config.scripted_overhead);
                self.metrics.lightweight.inc();
                match self.serve_image(&session_id, &rest[5..], deadline) {
                    Ok(r) => r,
                    Err(err) => fail(err),
                }
            }
            _ if rest.starts_with("/render/") => {
                // Alternate-engine rendering of the adapted entry page:
                // /render/text, /render/pdf, /render/image, /render/html.
                // A panicking engine degrades down the fallback chain
                // (image -> html -> text) instead of erroring. Renders
                // are cached under `render:<engine>` and concurrent
                // requests coalesce into one engine run, like the entry
                // page.
                let engine_name = &rest[8..];
                if self.engines.get(engine_name).is_none() {
                    return attach_cookie(fail(ProxyError::UnknownEngine {
                        name: engine_name.to_string(),
                    }));
                }
                let ttl = self
                    .spec
                    .snapshot
                    .as_ref()
                    .map(|s| Duration::from_secs(s.cache_ttl_secs));
                let flight = self.cache.render_flight::<ProxyError>(
                    &format!("render:{engine_name}"),
                    ttl,
                    Some(deadline.remaining()),
                    || self.render_engine_page(&session, engine_name, deadline),
                );
                let (bytes, stale_age) = match flight {
                    Flight::Hit(bytes) => {
                        self.metrics.lightweight.inc();
                        (bytes, None)
                    }
                    Flight::Led { value, .. } => (value, None),
                    Flight::Shared(bytes) => {
                        self.metrics.lightweight.inc();
                        self.metrics.renders_coalesced.inc();
                        (bytes, None)
                    }
                    Flight::Stale { value, age } => (value, Some(age)),
                    Flight::TimedOut => return attach_cookie(fail(ProxyError::DeadlineExceeded)),
                    Flight::Failed(err) => return attach_cookie(fail(err)),
                };
                match CachedRender::decode(&bytes) {
                    Some(cached) => {
                        let mut response = Response::bytes(&cached.content_type, cached.bytes);
                        response.headers.set("x-msite-engine", &cached.engine);
                        if cached.degraded {
                            response.headers.set(
                                DEGRADED_HEADER,
                                &format!("engine-fallback; from={engine_name}"),
                            );
                        }
                        match stale_age {
                            Some(age) => self.mark_stale(response, age),
                            None => response,
                        }
                    }
                    None => fail(ProxyError::RenderFailed {
                        detail: "corrupt cached render".into(),
                    }),
                }
            }
            _ if rest.starts_with("/o/") => {
                // Origin passthrough for form posts and follow-up
                // navigation out of subpages.
                let target = match Url::parse(&self.spec.page_url)
                    .and_then(|u| u.join(&format!("/{}", &rest[3..])))
                {
                    Ok(mut u) => {
                        if let Some(q) = request.url.query() {
                            u = u.join(&format!("?{q}")).unwrap_or(u);
                        }
                        u
                    }
                    Err(e) => {
                        return attach_cookie(fail(ProxyError::BadOriginUrl {
                            detail: e.to_string(),
                        }))
                    }
                };
                let mut forwarded = Request {
                    method: request.method,
                    url: target,
                    headers: request.headers.clone(),
                    body: request.body.clone(),
                };
                forwarded.headers.remove("cookie"); // jar replaces client cookies
                let response = self.origin_fetch(&session, &mut forwarded, deadline);
                // Breaker/deadline rejections are the proxy's failures,
                // not origin output; origin statuses pass through.
                if is_breaker_rejection(&response)
                    || response.headers.get(DEADLINE_HEADER).is_some()
                {
                    return attach_cookie(fail(ProxyError::from_origin_failure(&response)));
                }
                // Rewrite origin redirects back into the proxy namespace.
                if response.status.is_redirect() {
                    return attach_cookie(Response::redirect(&format!("{base}/")));
                }
                response
            }
            _ => fail(ProxyError::NotFound { what: "proxy path" }),
        };
        attach_cookie(response)
    }
}

impl Origin for ProxyServer {
    fn handle(&self, request: &Request) -> Response {
        if let Some(response) = self.handle_observability(request) {
            return response;
        }
        self.metrics.requests.inc();
        let trace = Trace::new(
            self.trace_ids.next_id(),
            Arc::clone(&self.telemetry.trace_log),
        );
        // Thread-local entry: layers without a trace parameter (cache
        // flights, resilience, stale marking) pick it up from here.
        let _entered = trace.enter();
        let started = Instant::now();
        let mut response = self.handle_inner(request);
        let elapsed = started.elapsed();
        self.metrics
            .request_micros
            .observe(elapsed.as_micros() as u64);
        trace.log().record_raw(
            trace.id(),
            "request",
            started,
            elapsed,
            vec![
                ("path".to_string(), request.url.path().to_string()),
                ("status".to_string(), response.status.0.to_string()),
            ],
        );
        response.headers.set(TRACE_HEADER, &trace.id_hex());
        response
    }

    fn name(&self) -> &str {
        "msite-proxy"
    }
}

/// Burns CPU for `duration` (models scripted-interpreter overhead).
pub(super) fn burn(duration: Duration) {
    if duration.is_zero() {
        return;
    }
    let start = Instant::now();
    let mut acc = 0u64;
    while start.elapsed() < duration {
        for i in 0..512u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc);
    }
}
