//! Progressive (chunked) entry delivery.
//!
//! A client that sends `x-msite-stream: chunked` on `GET /` gets the
//! entry page over chunked transfer-encoding: the proxy fetches the
//! origin page up front (so origin failures keep their batch status
//! codes), then returns a [`Response`] carrying a deferred
//! [`ChunkProducer`]. The transport runs the producer *while writing*:
//! the adaptation pipeline executes in streaming mode
//! ([`adapt_streaming`]), the entry snapshot + imagemap page is flushed
//! as the first chunk the moment it is built, and subpage/image
//! artifacts are stored into the shared cache and public directory as
//! the parallel emit workers finish them — time-to-first-byte is the
//! entry-build time, not the whole-bundle time.
//!
//! The byte-concatenation of all chunks is exactly the batch entry
//! body; only the framing (and the client's TTFB) differs. In-process
//! consumers drain the stream with [`Response::into_collected`].
//!
//! Streamed rebuilds participate in the cache's single-flight layer:
//! the producer runs after `handle` returns, outside any closure-shaped
//! flight, so the miss path claims leadership with
//! [`RenderCache::try_lead`] and carries the resulting
//! [`ExternalFlight`] into the producer, which
//! [`complete`](ExternalFlight::complete)s it when the entry is built
//! (or abandons it on failure, releasing the waiters to retry).
//! Concurrent cold requests — streamed or batch — join that one flight
//! instead of rendering again; exactly one render runs per cold entry.

use super::observability::publish_stage_timings_to;
use super::ProxyServer;
use crate::ajax::AjaxRegistry;
use crate::attributes::AdaptationSpec;
use crate::cache::{ExternalFlight, Lookup, RenderCache};
use crate::error::ProxyError;
use crate::pipeline::{adapt_streaming, EmitUnit, PipelineContext, PipelineReport};
use crate::session::{Session, SessionFs};
use msite_net::resilience::Deadline;
use msite_net::{ChunkProducer, ChunkSink, Request, Response};
use msite_support::bytes::Bytes;
use msite_support::sync::Mutex;
use msite_support::telemetry::{Counter, Histogram, MetricsRegistry, Trace};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Request header that opts a `GET /` into progressive delivery; the
/// only recognized value is `chunked`.
pub const STREAM_HEADER: &str = "x-msite-stream";

/// True when the request opted into progressive delivery.
pub(super) fn wants_stream(request: &Request) -> bool {
    request
        .headers
        .get(STREAM_HEADER)
        .map(|v| v.eq_ignore_ascii_case("chunked"))
        .unwrap_or(false)
}

/// Everything a streamed entry rebuild needs to own: the producer runs
/// on the transport's writer thread after `handle` has returned, so it
/// cannot borrow the proxy.
struct StreamJob {
    spec: AdaptationSpec,
    ctx: PipelineContext,
    page_text: String,
    entry_ttl: Option<Duration>,
    /// Single-flight leadership for `entry:html`, claimed before the
    /// response was returned; completed with the built entry (waiters
    /// get the bytes) or dropped on failure (waiters retry).
    flight: ExternalFlight,
    cache: Arc<RenderCache>,
    fs: Arc<SessionFs>,
    shared_ajax: Arc<Mutex<Option<AjaxRegistry>>>,
    wants_cookie_clear: Arc<Mutex<bool>>,
    last_entry_report: Arc<Mutex<Option<PipelineReport>>>,
    registry: Arc<MetricsRegistry>,
    full_renders: Arc<Counter>,
    lightweight: Arc<Counter>,
    ttfb_micros: Arc<Histogram>,
    arrived: Instant,
}

impl StreamJob {
    /// Runs the adaptation pipeline in streaming mode against the sink:
    /// entry page as the first chunk, artifacts stored as workers
    /// finish, bookkeeping published at the end.
    fn run(self, sink: &mut dyn ChunkSink) {
        let start = Instant::now();
        let trace = self.ctx.trace.clone();
        let record_chunk = |kind: &str, bytes: usize, started: Instant| {
            if let Some(trace) = &trace {
                trace.log().record_raw(
                    trace.id(),
                    "stream.chunk",
                    started,
                    started.elapsed(),
                    vec![
                        ("kind".to_string(), kind.to_string()),
                        ("bytes".to_string(), bytes.to_string()),
                    ],
                );
            }
        };
        let sink = Mutex::new(sink);
        let mut on_unit = |unit: EmitUnit| match unit {
            EmitUnit::Entry(html) => {
                let chunk_started = Instant::now();
                sink.lock().chunk(html.as_bytes());
                // TTFB: request arrival to the first flushed chunk.
                self.ttfb_micros
                    .observe(self.arrived.elapsed().as_micros() as u64);
                record_chunk("entry", html.len(), chunk_started);
            }
            EmitUnit::Image(image) => {
                // Same placement store_bundle uses for a shared
                // (session-less) run: TTL'd images into the public
                // cache, the rest into the public directory.
                let chunk_started = Instant::now();
                let size = image.bytes.len();
                match image.cache_ttl {
                    Some(ttl) => self.cache.put(
                        &format!("img:{}", image.name),
                        image.bytes,
                        Some(ttl),
                        start.elapsed(),
                    ),
                    None => self.fs.write(
                        &SessionFs::public_path(&format!("img/{}", image.name)),
                        image.bytes,
                    ),
                }
                record_chunk("image", size, chunk_started);
            }
            EmitUnit::Subpage(file) => {
                // Shared entry runs never store subpage files (they are
                // per-session artifacts); the unit still marks the
                // worker's completion on the trace timeline.
                record_chunk("subpage", file.html.len(), Instant::now());
            }
        };
        match adapt_streaming(&self.spec, &self.page_text, &self.ctx, &mut on_unit) {
            Ok((bundle, report)) => {
                if bundle.stats.browser_used {
                    self.full_renders.inc();
                } else {
                    self.lightweight.inc();
                }
                publish_stage_timings_to(&self.registry, &report);
                // Publishing through the flight (rather than a raw
                // `put`) inserts the entry AND wakes every request that
                // joined this rebuild with the same bytes.
                self.flight.complete(
                    Bytes::from(bundle.entry_html),
                    self.entry_ttl,
                    start.elapsed(),
                );
                *self.shared_ajax.lock() = Some(bundle.ajax.clone());
                *self.wants_cookie_clear.lock() = bundle.wants_cookie_clear;
                *self.last_entry_report.lock() = Some(report);
            }
            Err(err) => {
                // Headers are already on the wire; the best we can do
                // is a diagnosable body. Spec errors are caught by the
                // admin tool long before a streamed request sees them.
                // Dropping `self.flight` here abandons the flight, so
                // joined waiters retry instead of hanging.
                sink.lock()
                    .chunk(format!("<!-- msite adaptation failed: {err} -->").as_bytes());
            }
        }
    }
}

impl ProxyServer {
    /// `GET /` with `x-msite-stream: chunked`: progressive entry
    /// delivery. Cache hits stream the cached entry as a single chunk;
    /// misses claim single-flight leadership of the `entry:html`
    /// rebuild — or join the render already in flight (led by either a
    /// batch or a streamed request) — so a cold stampede of streamed
    /// requests runs exactly one pipeline. The leader fetches the
    /// origin page up front (failures keep their batch status codes,
    /// including the serve-stale degradation) and defers the pipeline
    /// run to the transport's writer via the response's chunk producer.
    pub(super) fn streamed_entry(
        &self,
        session: &Arc<Mutex<Session>>,
        deadline: Deadline,
    ) -> Result<Response, ProxyError> {
        let arrived = Instant::now();
        self.metrics.streamed_responses.inc();

        let flight = loop {
            // Fresh cached entry: stream it straight out.
            if let Lookup::Fresh(entry) = self.cache.lookup("entry:html") {
                self.metrics.lightweight.inc();
                return Ok(self.stream_bytes(entry, arrived, "entry-cached"));
            }

            // Claim the rebuild, or join whoever already leads it.
            match self.cache.try_lead("entry:html") {
                Some(flight) => break flight,
                None => {
                    if let Some(entry) = self
                        .cache
                        .join_flight("entry:html", Some(deadline.remaining()))
                    {
                        self.metrics.renders_coalesced.inc();
                        return Ok(self.stream_bytes(entry, arrived, "entry-coalesced"));
                    }
                    // The flight vanished (leader finished or abandoned
                    // before we parked, or a fresh entry raced in) or
                    // our budget ran out. Re-check the cache; with the
                    // budget gone, degrade rather than spin.
                    if deadline.expired() {
                        if let Lookup::Fresh(entry) = self.cache.lookup("entry:html") {
                            self.metrics.lightweight.inc();
                            return Ok(self.stream_bytes(entry, arrived, "entry-cached"));
                        }
                        if let Lookup::Stale { value, age } = self.cache.lookup("entry:html") {
                            let response = self.stream_bytes(value, arrived, "entry-stale");
                            return Ok(self.mark_stale(response, age));
                        }
                        return Err(ProxyError::DeadlineExceeded);
                    }
                }
            }
        };

        // Leader path. Fetch before committing to a 200 so origin
        // failures keep their batch-path status codes and stale
        // fallback; dropping `flight` on those returns abandons the
        // rebuild so joined waiters retry instead of hanging.
        let mut page_request =
            Request::get(&self.spec.page_url).map_err(|e| ProxyError::BadOriginUrl {
                detail: e.to_string(),
            })?;
        let page = self.origin_fetch(session, &mut page_request, deadline);
        if !page.status.is_success() {
            let err = ProxyError::from_origin_failure(&page);
            drop(flight);
            if err.is_unavailability() {
                if let Lookup::Stale { value, age } = self.cache.lookup("entry:html") {
                    let response = self.stream_bytes(value, arrived, "entry-stale");
                    return Ok(self.mark_stale(response, age));
                }
            }
            return Err(err);
        }

        let job = StreamJob {
            spec: self.spec.clone(),
            ctx: self.pipeline_context(),
            page_text: page.body_text(),
            entry_ttl: self
                .spec
                .snapshot
                .as_ref()
                .map(|s| Duration::from_secs(s.cache_ttl_secs)),
            flight,
            cache: Arc::clone(&self.cache),
            fs: Arc::clone(&self.fs),
            shared_ajax: Arc::clone(&self.shared_ajax),
            wants_cookie_clear: Arc::clone(&self.wants_cookie_clear),
            last_entry_report: Arc::clone(&self.last_entry_report),
            registry: Arc::clone(&self.telemetry.metrics),
            full_renders: Arc::clone(&self.metrics.full_renders),
            lightweight: Arc::clone(&self.metrics.lightweight),
            ttfb_micros: Arc::clone(&self.metrics.ttfb_micros),
            arrived,
        };
        let producer: ChunkProducer = Box::new(move |sink| job.run(sink));
        Ok(Response::streaming("text/html; charset=utf-8", producer))
    }

    /// Wraps already-built entry bytes in a single-chunk stream,
    /// observing TTFB at the flush and recording the chunk span.
    fn stream_bytes(&self, entry: Bytes, arrived: Instant, kind: &'static str) -> Response {
        let ttfb = Arc::clone(&self.metrics.ttfb_micros);
        let trace = Trace::current();
        let producer: ChunkProducer = Box::new(move |sink| {
            let chunk_started = Instant::now();
            sink.chunk(&entry);
            ttfb.observe(arrived.elapsed().as_micros() as u64);
            if let Some(trace) = &trace {
                trace.log().record_raw(
                    trace.id(),
                    "stream.chunk",
                    chunk_started,
                    chunk_started.elapsed(),
                    vec![
                        ("kind".to_string(), kind.to_string()),
                        ("bytes".to_string(), entry.len().to_string()),
                    ],
                );
            }
        });
        Response::streaming("text/html; charset=utf-8", producer)
    }
}
