//! The multi-session m.Site proxy server.
//!
//! This is the artifact the paper's code generator produces: a
//! lightweight proxy, colocated with the origin, that "handles user
//! session authentication, cookie jars, and high-level session
//! administration", fetches origin pages on behalf of mobile clients,
//! runs the adaptation pipeline, writes per-user subpages into protected
//! session directories, serves a shared cached snapshot, satisfies
//! rewritten AJAX calls, and proxies form posts back to the origin.
//!
//! It implements [`Origin`], so it can be composed in-process for
//! benchmarks or served over real TCP by `msite_net::HttpServer`.
//!
//! The module tree mirrors the request path: [`routing`] dispatches,
//! [`handlers`] build and serve artifacts, [`streaming`] implements
//! progressive (chunked) entry delivery, and [`observability`] holds
//! the stats/telemetry views and scrape endpoints.
//!
//! # Observability
//!
//! Every counter the proxy keeps lives in a
//! [`MetricsRegistry`](msite_support::telemetry::MetricsRegistry)
//! (shareable with the HTTP server and resilience layer through
//! [`ProxyConfig::telemetry`]); [`ProxyStats`] is a view over it. Each
//! request gets a seeded-deterministic trace id, carried on the
//! response in the `x-msite-trace` header; pipeline stages, cache
//! flights, resilience events, and (over TCP) the server worker hop
//! record timed spans under that id. Three endpoints expose the state:
//! `GET /metrics` (text exposition), `GET /healthz` (breaker + pool +
//! cache summary), and `GET /trace/<id>` (the request's spans). The
//! observability endpoints are answered before any counter moves, so
//! scraping never perturbs the numbers being scraped.
//!
//! # Resilience
//!
//! Every origin fetch goes through a [`ResilientOrigin`]: bounded
//! retries with seeded jittered backoff, a per-request deadline budget
//! shared with the adaptation pipeline, and a per-host circuit breaker.
//! When the origin (or its breaker) makes the entry page unbuildable,
//! the proxy degrades to the last rendered snapshot still inside the
//! cache's stale window — marked with a `Warning` header — instead of
//! answering 5xx per request; the stale copy is replaced by the next
//! successful rebuild. Failures are classified by
//! [`ProxyError`](crate::error::ProxyError) and counted in
//! [`ProxyStats`].

mod config;
mod handlers;
mod observability;
mod routing;
mod streaming;
#[cfg(test)]
mod tests;

pub use config::{PersistConfig, ProxyConfig, DEFAULT_PERSIST_CAPACITY_BYTES};
pub use observability::ProxyStats;
pub use streaming::STREAM_HEADER;

use crate::ajax::AjaxRegistry;
use crate::attributes::AdaptationSpec;
use crate::cache::{RenderCache, SubtreeCache};
use crate::dsl;
use crate::engine::EngineRegistry;
use crate::pipeline::{PipelineContext, PipelineReport};
use crate::session::{
    SessionFs, SessionStore, SessionStoreConfig, SessionStoreStats, DEFAULT_TENANT,
};
use msite_net::resilience::{BreakerState, ResilienceStats, ResilientOrigin};
use msite_net::{OriginRef, Url};
use msite_support::sync::Mutex;
use msite_support::telemetry::{Telemetry, Trace, TraceIdSeq};
use observability::ProxyMetrics;
use std::collections::HashMap;
use std::sync::Arc;

pub(crate) struct UserBundle {
    ajax: AjaxRegistry,
    auth_subpages: Vec<String>,
}

/// The generated multi-session proxy for one adapted page.
pub struct ProxyServer {
    spec: AdaptationSpec,
    origin: Arc<ResilientOrigin>,
    /// Sharded, bounded session store — possibly shared with other
    /// tenant proxies through [`ProxyConfig::session_store`].
    sessions: Arc<SessionStore>,
    /// Tenant label for this proxy's sessions: the origin site's host.
    tenant: String,
    // Arc'd so the streaming producer (which runs on the transport
    // writer after `handle` returns) can own handles to the stores it
    // fills progressively.
    fs: Arc<SessionFs>,
    cache: Arc<RenderCache>,
    subtrees: Arc<SubtreeCache>,
    config: ProxyConfig,
    telemetry: Telemetry,
    metrics: ProxyMetrics,
    trace_ids: TraceIdSeq,
    shared_ajax: Arc<Mutex<Option<AjaxRegistry>>>,
    // Arc'd so the session store's eviction hook can drop a victim's
    // bundle without borrowing the proxy.
    user_bundles: Arc<Mutex<HashMap<String, Arc<UserBundle>>>>,
    wants_cookie_clear: Arc<Mutex<bool>>,
    engines: EngineRegistry,
    last_entry_report: Arc<Mutex<Option<PipelineReport>>>,
}

impl ProxyServer {
    /// Creates a proxy for `spec`, forwarding to `origin` through the
    /// configured resilience policy (retries, deadline, breaker).
    pub fn new(spec: AdaptationSpec, origin: OriginRef, config: ProxyConfig) -> ProxyServer {
        let telemetry = config.telemetry.clone().unwrap_or_default();
        let cache = match &config.persist {
            Some(persist) => {
                let tier = crate::persist::DiskTier::open(
                    Arc::clone(&persist.backend),
                    crate::persist::DiskTierConfig::with_capacity(persist.capacity_bytes),
                );
                RenderCache::with_disk_tier(
                    config.cache_capacity,
                    config.stale_window,
                    Arc::new(tier),
                )
            }
            None => RenderCache::with_stale_window(config.cache_capacity, config.stale_window),
        };
        // Session store: private (built from the config knobs) unless
        // the embedder passed a shared multi-tenant store.
        let sessions = match &config.session_store {
            Some(store) => Arc::clone(store),
            None => Arc::new(SessionStore::new(
                SessionStoreConfig {
                    max_sessions: config.max_sessions,
                    session_ttl: config.session_ttl,
                    fs_byte_budget: config.fs_byte_budget,
                    tenant_share: config.tenant_share,
                    seed: config.seed,
                },
                Arc::new(SessionFs::new()),
            )),
        };
        let tenant = Url::parse(&spec.page_url)
            .map(|u| u.host().to_string())
            .unwrap_or_else(|_| DEFAULT_TENANT.to_string());
        // When the store evicts a session, drop its per-user bundle
        // too; the hook runs outside store locks.
        let user_bundles: Arc<Mutex<HashMap<String, Arc<UserBundle>>>> =
            Arc::new(Mutex::new(HashMap::new()));
        {
            let bundles = Arc::clone(&user_bundles);
            sessions.add_evict_hook(Arc::new(move |id: &str| {
                bundles.lock().remove(id);
            }));
        }
        let metrics = ProxyMetrics::new(&telemetry);
        metrics
            .session_max
            .set(sessions.config().max_sessions as i64);
        ProxyServer {
            fs: Arc::clone(sessions.fs()),
            sessions,
            tenant,
            cache: Arc::new(cache),
            subtrees: Arc::new(SubtreeCache::new(config.subtree_cache_capacity)),
            metrics,
            trace_ids: TraceIdSeq::new(config.seed ^ 0x0074_7261_6365), // "trace"
            shared_ajax: Arc::new(Mutex::new(None)),
            user_bundles,
            wants_cookie_clear: Arc::new(Mutex::new(false)),
            engines: EngineRegistry::with_builtins(),
            last_entry_report: Arc::new(Mutex::new(None)),
            origin: Arc::new(ResilientOrigin::with_metrics(
                origin,
                config.resilience.clone(),
                Arc::clone(&telemetry.metrics),
            )),
            telemetry,
            spec,
            config,
        }
    }

    /// Registers an additional rendering engine (the paper's "pluggable
    /// content adaptation system ... extended with multiple rendering
    /// engines"). Later registrations shadow built-ins by name.
    pub fn register_engine(&mut self, engine: Box<dyn crate::engine::RenderEngine>) {
        self.engines.register(engine);
    }

    /// Names of the available rendering engines.
    pub fn engine_names(&self) -> Vec<&str> {
        self.engines.names()
    }

    /// Loads a proxy from generated DSL script text — the deployment
    /// path: the admin tool writes the script, the server runs it.
    ///
    /// # Errors
    ///
    /// Returns the script parse error.
    pub fn from_script(
        script: &str,
        origin: OriginRef,
        config: ProxyConfig,
    ) -> Result<ProxyServer, dsl::ParseScriptError> {
        Ok(ProxyServer::new(dsl::parse_script(script)?, origin, config))
    }

    /// URL prefix this proxy serves, e.g. `/m/forum`.
    pub fn base(&self) -> String {
        format!("/m/{}", self.spec.page_id)
    }

    /// The adaptation spec in effect.
    pub fn spec(&self) -> &AdaptationSpec {
        &self.spec
    }

    /// The telemetry handle (registry + trace ring) this proxy
    /// publishes into — pass the same handle to
    /// `HttpServer::bind_with_telemetry` so serving-tier counters and
    /// worker spans land in the same place.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Retry/breaker/deadline counters from the resilient fetch layer.
    pub fn resilience_stats(&self) -> ResilienceStats {
        self.origin.stats()
    }

    /// The circuit-breaker state for an origin host (the spec's origin
    /// host unless AJAX actions fan out elsewhere).
    pub fn breaker_state(&self, host: &str) -> BreakerState {
        self.origin.breaker_state(host)
    }

    /// The shared render cache (amortization accounting lives here).
    pub fn cache(&self) -> &RenderCache {
        &self.cache
    }

    /// A [`StaleHook`](msite_net::StaleHook) mapping the health
    /// monitor's stale-window multiplier onto this proxy's render
    /// cache: factor 1 restores the configured window, higher factors
    /// widen it so more expired artifacts stay servable under duress.
    pub fn stale_window_hook(&self) -> msite_net::StaleHook {
        let cache = Arc::clone(&self.cache);
        let base = self.config.stale_window;
        Arc::new(move |factor: u32| cache.set_stale_window(base * factor.max(1)))
    }

    /// Builds a [`HealthMonitor`](msite_net::HealthMonitor) closing the
    /// control loop over `server` (which must share this proxy's
    /// [`Telemetry`]): queue depth, queue-wait p99, shed rate, and
    /// breaker churn drive the server's worker width and shed
    /// threshold, and the stale hook drives this proxy's stale-serve
    /// aggressiveness. Call [`spawn`](msite_net::HealthMonitor::spawn)
    /// on the result for a wall-clock driver, or
    /// [`tick`](msite_net::HealthMonitor::tick) it deterministically.
    pub fn health_monitor(
        &self,
        server: &msite_net::HttpServer,
        config: msite_net::HealthConfig,
    ) -> Arc<msite_net::HealthMonitor> {
        Arc::new(
            msite_net::HealthMonitor::new(
                config,
                Arc::clone(&self.telemetry.metrics),
                server.pool(),
                server.shed_threshold(),
            )
            .with_stale_hook(self.stale_window_hook()),
        )
    }

    /// The fingerprint-keyed subtree artifact cache backing incremental
    /// re-adaptation.
    pub fn subtree_cache(&self) -> &SubtreeCache {
        &self.subtrees
    }

    /// The pipeline report from the most recent shared entry rebuild,
    /// including how many concurrent requests that run's output was
    /// shared with ([`PipelineReport::coalesced_waiters`]). `None`
    /// before the first build.
    pub fn last_entry_report(&self) -> Option<PipelineReport> {
        self.last_entry_report.lock().clone()
    }

    /// Live session count (across all tenants when the store is
    /// shared).
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// The session store this proxy issues sessions from — shared with
    /// other tenant proxies when [`ProxyConfig::session_store`] was
    /// set.
    pub fn session_store(&self) -> &Arc<SessionStore> {
        &self.sessions
    }

    /// Session-store counter snapshot (created / live / destroyed /
    /// evictions by cause).
    pub fn session_stats(&self) -> SessionStoreStats {
        self.sessions.stats()
    }

    /// Tenant label this proxy's sessions are scoped to (the origin
    /// site's host).
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Generated files currently stored (subpages + images).
    pub fn stored_files(&self) -> Vec<String> {
        self.fs.paths()
    }

    /// Exports every generated artifact (session directories + public
    /// cache) to a real directory, mirroring the paper's on-disk layout.
    ///
    /// # Errors
    ///
    /// Returns IO errors from the export.
    pub fn export_files(&self, dir: &std::path::Path) -> std::io::Result<usize> {
        // Shared cached images live in the cache, not the fs; write the
        // snapshot too when present.
        if let Some(snapshot) = self.cache.get("img:snapshot.png") {
            self.fs
                .write(&SessionFs::public_path("img/snapshot.png"), snapshot);
        }
        self.fs.export(dir)
    }

    // ------------------------------------------------------------------

    fn pipeline_context(&self) -> PipelineContext {
        PipelineContext {
            base: self.base(),
            browser_config: self.config.browser_config.clone(),
            parallelism: self.config.pipeline_parallelism,
            schedule_stagger: None,
            trace: Trace::current(),
            subtree_cache: if self.config.incremental {
                Some(Arc::clone(&self.subtrees))
            } else {
                None
            },
            metrics: Some(Arc::clone(&self.telemetry.metrics)),
            fidelity: None,
        }
    }

    /// Pipeline context for a tier-resolved entry build: identical to
    /// [`pipeline_context`](Self::pipeline_context) plus the bandwidth
    /// class `fidelity-tier auto` attributes resolve to.
    fn pipeline_context_tiered(
        &self,
        fidelity: Option<msite_net::BandwidthClass>,
    ) -> PipelineContext {
        PipelineContext {
            fidelity,
            ..self.pipeline_context()
        }
    }
}
