//! Artifact builders and content handlers: origin fetches, the shared
//! entry flight, per-user subpage bundles, image/subpage/AJAX serving,
//! alternate-engine rendering, and the serve-stale degradation path.

use super::{ProxyServer, UserBundle};
use crate::attributes::AdaptationSpec;
use crate::cache::{Flight, Lookup};
use crate::error::{ProxyError, DEGRADED_HEADER};
use crate::pipeline::{adapt, adapt_with_report, AdaptedBundle};
use crate::session::{Session, SessionFs};
use msite_net::resilience::Deadline;
use msite_net::{Method, Request, Response, Url};
use msite_support::bytes::Bytes;
use msite_support::sync::Mutex;
use msite_support::telemetry::Trace;
use std::sync::Arc;
use std::time::{Duration, Instant};

impl ProxyServer {
    /// Fetches `url` from the origin with the session's cookie jar and
    /// stored HTTP-auth credentials applied, recording Set-Cookie
    /// responses back into the jar. The fetch goes through the
    /// resilience layer (retries, breaker) within `deadline`.
    pub(super) fn origin_fetch(
        &self,
        session: &Arc<Mutex<Session>>,
        request: &mut Request,
        deadline: Deadline,
    ) -> Response {
        self.metrics.origin_fetches.inc();
        {
            let s = session.lock();
            s.jar.apply(request, 0);
            if let Some((user, pass)) = &s.http_auth {
                request.headers.set(
                    "authorization",
                    &msite_net::auth::basic_auth_header(user, pass),
                );
            }
        }
        let response = self.origin.handle_within(request, deadline);
        session
            .lock()
            .jar
            .store_from_response(&response, &request.url, 0);
        response
    }

    /// Builds (or reuses) the shared entry page + snapshot, which are
    /// user-independent: the snapshot shows the public view of the page
    /// and is "stored in a public cache" with the spec's TTL.
    ///
    /// Concurrent misses coalesce into one pipeline run through the
    /// cache's single-flight layer: the first request leads the rebuild,
    /// the rest share its output (counted in
    /// [`ProxyStats::renders_coalesced`](super::ProxyStats::renders_coalesced)).
    /// A waiter whose deadline expires mid-flight degrades to a stale
    /// copy when one exists.
    ///
    /// When the origin is unavailable (final 5xx, breaker open, deadline
    /// exhausted) and a rebuild is impossible, the previous entry page is
    /// served as long as it is within the cache's stale window — the
    /// serve-stale degradation. The stale copy stays in place until the
    /// next successful rebuild replaces it.
    pub(super) fn shared_entry(
        &self,
        session: &Arc<Mutex<Session>>,
        deadline: Deadline,
        tier: Option<msite_net::BandwidthClass>,
    ) -> Result<(Bytes, Option<Duration>), ProxyError> {
        let ttl = self
            .spec
            .snapshot
            .as_ref()
            .map(|s| Duration::from_secs(s.cache_ttl_secs));
        // Tier-resolved entries are distinct artifacts (their image
        // fidelity differs), so each tier gets its own cache key and
        // single-flight lane; tier-less specs keep the bare key.
        let key = match tier {
            Some(class) => format!("entry:html@{class}"),
            None => "entry:html".to_string(),
        };
        let flight_started = Instant::now();
        let flight =
            self.cache
                .render_flight::<ProxyError>(&key, ttl, Some(deadline.remaining()), || {
                    self.build_entry(session, deadline, tier)
                });
        let mut role_fields = Vec::new();
        let outcome = match flight {
            Flight::Hit(entry) => {
                self.metrics.lightweight.inc();
                role_fields.push(("role".to_string(), "hit".to_string()));
                Ok((entry, None))
            }
            Flight::Led { value, shared_with } => {
                if shared_with > 0 {
                    if let Some(report) = self.last_entry_report.lock().as_mut() {
                        report.coalesced_waiters += shared_with;
                    }
                }
                role_fields.push(("role".to_string(), "led".to_string()));
                role_fields.push(("shared_with".to_string(), shared_with.to_string()));
                Ok((value, None))
            }
            Flight::Shared(entry) => {
                self.metrics.lightweight.inc();
                self.metrics.renders_coalesced.inc();
                role_fields.push(("role".to_string(), "shared".to_string()));
                Ok((entry, None))
            }
            Flight::Stale { value, age } => {
                role_fields.push(("role".to_string(), "stale".to_string()));
                Ok((value, Some(age)))
            }
            Flight::TimedOut => {
                role_fields.push(("role".to_string(), "timed-out".to_string()));
                Err(ProxyError::DeadlineExceeded)
            }
            Flight::Failed(err) => {
                role_fields.push(("role".to_string(), "failed".to_string()));
                if err.is_unavailability() {
                    if let Lookup::Stale { value, age } = self.cache.lookup(&key) {
                        role_fields.push(("fallback".to_string(), "stale".to_string()));
                        Ok((value, Some(age)))
                    } else {
                        Err(err)
                    }
                } else {
                    Err(err)
                }
            }
        };
        if let Some(trace) = Trace::current() {
            role_fields.push(("key".to_string(), key));
            trace.log().record_raw(
                trace.id(),
                "cache.flight",
                flight_started,
                flight_started.elapsed(),
                role_fields,
            );
        }
        outcome
    }

    /// Leader body of the entry-page flight: fetch the origin page, run
    /// the full adaptation pipeline, store the generated artifacts, and
    /// return the entry HTML plus its production cost.
    pub(super) fn build_entry(
        &self,
        session: &Arc<Mutex<Session>>,
        deadline: Deadline,
        tier: Option<msite_net::BandwidthClass>,
    ) -> Result<(Bytes, Duration), ProxyError> {
        let start = Instant::now();
        let mut page_request =
            Request::get(&self.spec.page_url).map_err(|e| ProxyError::BadOriginUrl {
                detail: e.to_string(),
            })?;
        let page = self.origin_fetch(session, &mut page_request, deadline);
        if !page.status.is_success() {
            return Err(ProxyError::from_origin_failure(&page));
        }
        let (bundle, report) = adapt_with_report(
            &self.spec,
            &page.body_text(),
            &self.pipeline_context_tiered(tier),
        )?;
        if bundle.stats.browser_used {
            self.metrics.full_renders.inc();
        } else {
            self.metrics.lightweight.inc();
        }
        self.publish_stage_timings(&report);
        self.store_bundle(&bundle, None, start.elapsed());
        *self.shared_ajax.lock() = Some(bundle.ajax.clone());
        *self.wants_cookie_clear.lock() = bundle.wants_cookie_clear;
        *self.last_entry_report.lock() = Some(report);
        Ok((Bytes::from(bundle.entry_html), start.elapsed()))
    }

    /// Builds the per-user subpages with the user's authenticated view.
    pub(super) fn user_bundle(
        &self,
        session: &Arc<Mutex<Session>>,
        deadline: Deadline,
    ) -> Result<Arc<UserBundle>, ProxyError> {
        let session_id = session.lock().id.clone();
        if let Some(existing) = self.user_bundles.lock().get(&session_id) {
            return Ok(Arc::clone(existing));
        }
        let mut page_request =
            Request::get(&self.spec.page_url).map_err(|e| ProxyError::BadOriginUrl {
                detail: e.to_string(),
            })?;
        let page = self.origin_fetch(session, &mut page_request, deadline);
        if !page.status.is_success() {
            return Err(ProxyError::from_origin_failure(&page));
        }
        // Subpage generation does not re-render the snapshot.
        let mut spec = self.spec.clone();
        spec.snapshot = None;
        let start = Instant::now();
        let bundle = adapt(&spec, &page.body_text(), &self.pipeline_context())?;
        if bundle.stats.browser_used {
            self.metrics.full_renders.inc();
        } else {
            self.metrics.lightweight.inc();
        }
        self.store_bundle(&bundle, Some(&session_id), start.elapsed());
        let auth_subpages = auth_subpage_ids(&self.spec);
        let user = Arc::new(UserBundle {
            ajax: bundle.ajax.clone(),
            auth_subpages,
        });
        self.user_bundles
            .lock()
            .insert(session_id, Arc::clone(&user));
        Ok(user)
    }

    /// Writes a bundle's artifacts: shared images into the public cache,
    /// per-user files into the session directory. The entry page itself
    /// is *not* stored here — the single-flight layer inserts it when
    /// the leading request's flight completes.
    pub(super) fn store_bundle(
        &self,
        bundle: &AdaptedBundle,
        session_id: Option<&str>,
        cost: Duration,
    ) {
        for image in &bundle.images {
            self.store_image(
                &image.name,
                Bytes::from(image.bytes.clone()),
                image.cache_ttl,
                session_id,
                cost,
            );
        }
        if let Some(sid) = session_id {
            for subpage in &bundle.subpages {
                self.store_subpage(sid, &subpage.name, &subpage.html);
            }
        }
    }

    /// Stores one generated image: shared (TTL'd) images into the
    /// public cache, the rest into the session or public directory.
    pub(super) fn store_image(
        &self,
        name: &str,
        bytes: Bytes,
        cache_ttl: Option<Duration>,
        session_id: Option<&str>,
        cost: Duration,
    ) {
        match (cache_ttl, session_id) {
            (Some(ttl), _) => {
                self.cache
                    .put(&format!("img:{name}"), bytes, Some(ttl), cost);
            }
            (None, Some(sid)) => {
                self.fs
                    .write(&SessionFs::user_path(sid, &format!("img/{name}")), bytes);
            }
            (None, None) => {
                self.fs
                    .write(&SessionFs::public_path(&format!("img/{name}")), bytes);
            }
        }
    }

    /// Stores one generated subpage into a session directory with its
    /// form actions rewritten through the origin passthrough.
    pub(super) fn store_subpage(&self, session_id: &str, name: &str, html: &str) {
        self.fs.write(
            &SessionFs::user_path(session_id, &format!("s/{name}")),
            rewrite_form_actions(html, &self.base()),
        );
    }

    pub(super) fn serve_image(
        &self,
        session_id: &str,
        name: &str,
        deadline: Deadline,
    ) -> Result<Response, ProxyError> {
        // Expired shared snapshots are still served (marked stale) when
        // within the stale window; a fresh copy appears with the next
        // successful entry rebuild.
        let key = format!("img:{name}");
        match self.cache.lookup(&key) {
            Lookup::Fresh(shared) => return Ok(Response::bytes("image/png", shared)),
            Lookup::Stale { value, age } => {
                return Ok(self.mark_stale(Response::bytes("image/png", value), age));
            }
            Lookup::Miss => {}
        }
        // A shared image can be seconds away: snapshot images land when
        // the entry pipeline's flight completes, so join an in-flight
        // rebuild (within the request deadline) instead of answering
        // 404 mid-render. No-op when nothing is in flight.
        if self
            .cache
            .join_flight("entry:html", Some(deadline.remaining()))
            .is_some()
        {
            match self.cache.lookup(&key) {
                Lookup::Fresh(shared) => return Ok(Response::bytes("image/png", shared)),
                Lookup::Stale { value, age } => {
                    return Ok(self.mark_stale(Response::bytes("image/png", value), age));
                }
                Lookup::Miss => {}
            }
        }
        if let Some(user) = self
            .fs
            .read(&SessionFs::user_path(session_id, &format!("img/{name}")))
        {
            return Ok(Response::bytes("image/png", user));
        }
        if let Some(public) = self
            .fs
            .read(&SessionFs::public_path(&format!("img/{name}")))
        {
            return Ok(Response::bytes("image/png", public));
        }
        Err(ProxyError::NotFound { what: "image" })
    }

    /// Stamps a degraded (stale) response: an RFC 7234 `Warning` plus
    /// the machine-readable degradation marker, and counts it.
    pub(super) fn mark_stale(&self, mut response: Response, age: Duration) -> Response {
        response
            .headers
            .set("warning", "110 msite \"Response is stale\"");
        response
            .headers
            .set(DEGRADED_HEADER, &format!("stale; age={}s", age.as_secs()));
        self.metrics.stale_served.inc();
        if let Some(trace) = Trace::current() {
            trace.record(
                "degraded.stale",
                Duration::ZERO,
                vec![("age_secs".to_string(), age.as_secs().to_string())],
            );
        }
        response
    }

    /// Leader body of a `/render/<engine>` flight: fetch the page, run
    /// the engine (degrading down the fallback chain), and return the
    /// encoded [`CachedRender`] envelope plus its production cost.
    pub(super) fn render_engine_page(
        &self,
        session: &Arc<Mutex<Session>>,
        engine_name: &str,
        deadline: Deadline,
    ) -> Result<(Bytes, Duration), ProxyError> {
        let start = Instant::now();
        let mut page_request =
            Request::get(&self.spec.page_url).map_err(|e| ProxyError::BadOriginUrl {
                detail: e.to_string(),
            })?;
        let page = self.origin_fetch(session, &mut page_request, deadline);
        if !page.status.is_success() {
            return Err(ProxyError::from_origin_failure(&page));
        }
        match self
            .engines
            .render_with_fallback(engine_name, &page.body_text())
        {
            Ok(render) => {
                if render.engine == "image" {
                    self.metrics.full_renders.inc();
                } else {
                    self.metrics.lightweight.inc();
                }
                if !render.degraded.is_empty() {
                    self.metrics.engine_fallbacks.inc();
                }
                Ok((Bytes::from(render.to_cached().encode()), start.elapsed()))
            }
            Err(Some(failures)) => Err(ProxyError::RenderFailed {
                detail: failures
                    .iter()
                    .map(|f| f.to_string())
                    .collect::<Vec<_>>()
                    .join("; "),
            }),
            Err(None) => Err(ProxyError::UnknownEngine {
                name: engine_name.to_string(),
            }),
        }
    }

    pub(super) fn serve_subpage(
        &self,
        session: &Arc<Mutex<Session>>,
        name: &str,
        deadline: Deadline,
    ) -> Result<Response, ProxyError> {
        let bundle = self.user_bundle(session, deadline)?;
        let stem = name.trim_end_matches(".html");
        if bundle.auth_subpages.iter().any(|s| s == stem) && session.lock().http_auth.is_none() {
            return Ok(Response::redirect(&format!(
                "{}/auth?next={}",
                self.base(),
                msite_net::url::percent_encode(name)
            )));
        }
        let session_id = session.lock().id.clone();
        match self
            .fs
            .read(&SessionFs::user_path(&session_id, &format!("s/{name}")))
        {
            Some(contents) => Ok(Response::bytes("text/html; charset=utf-8", contents)),
            None => Err(ProxyError::NotFound { what: "subpage" }),
        }
    }

    pub(super) fn satisfy_ajax(
        &self,
        session: &Arc<Mutex<Session>>,
        request: &Request,
        deadline: Deadline,
    ) -> Result<Response, ProxyError> {
        let Some(action_id) = request.param("action").and_then(|a| a.parse::<u32>().ok()) else {
            return Err(ProxyError::MissingParameter { name: "action" });
        };
        let p = request.param("p").unwrap_or_default();
        let registry = {
            let session_id = session.lock().id.clone();
            self.user_bundles
                .lock()
                .get(&session_id)
                .map(|b| b.ajax.clone())
                .or_else(|| self.shared_ajax.lock().clone())
                .unwrap_or_default()
        };
        let Some(action) = registry.get(action_id).cloned() else {
            return Err(ProxyError::UnknownAction {
                id: action_id.to_string(),
            });
        };
        // Resolve the action's origin URL against the adapted page.
        let base_url = Url::parse(&self.spec.page_url).map_err(|e| ProxyError::BadOriginUrl {
            detail: e.to_string(),
        })?;
        let target =
            base_url
                .join(&action.origin_url(&p))
                .map_err(|e| ProxyError::BadOriginUrl {
                    detail: e.to_string(),
                })?;
        let mut sub_request = Request {
            method: Method::Get,
            url: target,
            headers: msite_net::Headers::new(),
            body: Bytes::new(),
        };
        let response = self.origin_fetch(session, &mut sub_request, deadline);
        if !response.status.is_success() {
            return Err(ProxyError::from_origin_failure(&response));
        }
        // Fragment responses pass through; full pages are cut to <body>.
        let text = response.body_text();
        let fragment = extract_fragment(&text);
        Ok(Response::html(fragment))
    }

    pub(super) fn auth_form(&self, message: &str, next: &str) -> Response {
        Response::html(format!(
            "<!DOCTYPE html><html><head><title>Authentication required</title></head><body>\
             <h3>Authentication required</h3><p>{message}</p>\
             <form method=\"post\" action=\"{}/auth?next={}\">\
             <input type=\"text\" name=\"user\" placeholder=\"user\"> \
             <input type=\"password\" name=\"pass\" placeholder=\"password\"> \
             <input type=\"submit\" value=\"Continue\"></form></body></html>",
            self.base(),
            msite_net::url::percent_encode(next)
        ))
    }
}

/// Rewrites root-relative form actions to the proxy's origin-passthrough
/// namespace so subpage forms keep working.
pub(super) fn rewrite_form_actions(html: &str, base: &str) -> String {
    html.replace("action=\"/", &format!("action=\"{base}/o/"))
}

/// Subpage ids protected by the HTTP-auth attribute.
pub(super) fn auth_subpage_ids(spec: &AdaptationSpec) -> Vec<String> {
    use crate::attributes::Attribute;
    let mut out = Vec::new();
    for rule in &spec.rules {
        let has_auth = rule
            .attributes
            .iter()
            .any(|a| matches!(a, Attribute::HttpAuth));
        if has_auth {
            for attr in &rule.attributes {
                if let Attribute::Subpage { id, .. } = attr {
                    out.push(id.clone());
                }
            }
        }
    }
    out
}

/// Cuts a full HTML page down to its body fragment for AJAX responses;
/// fragments pass through unchanged.
pub(super) fn extract_fragment(text: &str) -> String {
    let lower = text.to_ascii_lowercase();
    let Some(open) = lower.find("<body") else {
        return text.to_string();
    };
    let Some(start) = text[open..].find('>').map(|i| open + i + 1) else {
        return text.to_string();
    };
    let end = lower.rfind("</body>").unwrap_or(text.len());
    text[start..end].to_string()
}
