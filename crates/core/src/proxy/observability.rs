//! Stats/telemetry views and the scrape endpoints.
//!
//! [`ProxyStats`] is a read-back view over the proxy's metrics
//! registry; [`ProxyMetrics`] holds the pre-interned handles the hot
//! path bumps. The observability endpoints (`/metrics`, `/healthz`,
//! `/trace/<id>`) are answered before any request counter or trace id
//! moves, so scraping never perturbs the numbers being scraped.

use super::ProxyServer;
use crate::error::{ProxyError, DEGRADED_HEADER};
use crate::pipeline::PipelineReport;
use msite_net::resilience::BreakerState;
use msite_net::{Request, Response, Url};
use msite_support::bytes::Bytes;
use msite_support::telemetry::{
    metrics::LATENCY_MICROS_BOUNDS, Counter, Gauge, Histogram, Telemetry, Trace,
};
use std::sync::Arc;

/// Proxy request counters. Since the telemetry refactor this is a
/// *view*: every field is read back from the proxy's metrics registry
/// (`msite_proxy_*` series; `overload_rejections` is the serving
/// tier's `msite_server_rejected_overload_total`), so [`ProxyStats`]
/// and a `/metrics` scrape can never disagree.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProxyStats {
    /// Requests handled.
    pub requests: u64,
    /// Requests that needed a full browser render (snapshot rebuilds,
    /// per-user pipeline runs with pre-render attributes).
    pub full_renders: u64,
    /// Requests satisfied by the lightweight scripted path alone.
    pub lightweight: u64,
    /// Origin sub-requests issued.
    pub origin_fetches: u64,
    /// Sessions created.
    pub sessions_created: u64,
    /// Requests answered with a [`ProxyError`] response.
    pub failures: u64,
    /// Requests answered with stale cache content because the origin
    /// was unavailable (serve-stale degradation).
    pub stale_served: u64,
    /// Renders served by a fallback engine after the requested engine
    /// failed.
    pub engine_fallbacks: u64,
    /// Requests that shared another request's in-flight render instead
    /// of launching their own (single-flight coalescing).
    pub renders_coalesced: u64,
    /// Connections the serving tier shed with `503` +
    /// `x-msite-error: overloaded` because the executor's bounded queue
    /// was full. The rejected connections never reach the proxy's
    /// request handler: this reads the HTTP server's
    /// `msite_server_rejected_overload_total` counter, which a server
    /// sharing this proxy's [`Telemetry`] updates directly — no
    /// embedder-side folding needed. (Embedders running a server with
    /// a *separate* registry can still fold via
    /// [`ProxyServer::record_overload_rejections`].)
    pub overload_rejections: u64,
    /// Subpage artifacts served from the fingerprint-keyed subtree
    /// cache during an entry rebuild (incremental re-adaptation).
    pub subtrees_reused: u64,
    /// Subpage artifacts that had to be re-assembled (and, for
    /// pre-rendered subpages, re-rendered) because their fingerprints
    /// changed or were never cached.
    pub subtrees_recomputed: u64,
    /// Entry responses delivered progressively (chunked).
    pub streamed_responses: u64,
}

/// Pre-interned registry handles for the proxy's hot path: every
/// counter bump below is a single relaxed atomic op.
pub(super) struct ProxyMetrics {
    pub(super) requests: Arc<Counter>,
    pub(super) full_renders: Arc<Counter>,
    pub(super) lightweight: Arc<Counter>,
    pub(super) origin_fetches: Arc<Counter>,
    pub(super) sessions_created: Arc<Counter>,
    pub(super) stale_served: Arc<Counter>,
    pub(super) engine_fallbacks: Arc<Counter>,
    pub(super) renders_coalesced: Arc<Counter>,
    /// The serving tier's shed counter — the *same* series an
    /// `HttpServer` sharing this registry increments, so embedders get
    /// consistent numbers without folding.
    pub(super) overload_rejections: Arc<Counter>,
    /// Subtree-cache reuse counters — the same series the emit stage
    /// bumps through [`PipelineContext::metrics`]; interned here so
    /// [`ProxyStats`] reads are single atomic loads.
    pub(super) subtrees_reused: Arc<Counter>,
    pub(super) subtrees_recomputed: Arc<Counter>,
    pub(super) streamed_responses: Arc<Counter>,
    pub(super) sessions_live: Arc<Gauge>,
    /// Session-store gauges (`msite_session_*`): live occupancy and
    /// the configured bound — the pair the health monitor reads to
    /// fold session pressure into its classification — plus the
    /// budgeted session-directory bytes.
    pub(super) session_live: Arc<Gauge>,
    pub(super) session_max: Arc<Gauge>,
    pub(super) session_fs_bytes: Arc<Gauge>,
    pub(super) request_micros: Arc<Histogram>,
    /// Time from request arrival to the first flushed entry chunk
    /// (progressive delivery) or to the complete response (batch).
    pub(super) ttfb_micros: Arc<Histogram>,
}

impl ProxyMetrics {
    pub(super) fn new(telemetry: &Telemetry) -> ProxyMetrics {
        let m = &telemetry.metrics;
        ProxyMetrics {
            request_micros: m.histogram("msite_proxy_request_micros", &[], LATENCY_MICROS_BOUNDS),
            ttfb_micros: m.histogram("msite_proxy_ttfb_micros", &[], LATENCY_MICROS_BOUNDS),
            requests: m.counter("msite_proxy_requests_total", &[]),
            full_renders: m.counter("msite_proxy_full_renders_total", &[]),
            lightweight: m.counter("msite_proxy_lightweight_total", &[]),
            origin_fetches: m.counter("msite_proxy_origin_fetches_total", &[]),
            sessions_created: m.counter("msite_proxy_sessions_created_total", &[]),
            stale_served: m.counter("msite_proxy_stale_served_total", &[]),
            engine_fallbacks: m.counter("msite_proxy_engine_fallbacks_total", &[]),
            renders_coalesced: m.counter("msite_proxy_renders_coalesced_total", &[]),
            overload_rejections: m.counter("msite_server_rejected_overload_total", &[]),
            subtrees_reused: m.counter("msite_subtrees_reused_total", &[]),
            subtrees_recomputed: m.counter("msite_subtrees_recomputed_total", &[]),
            streamed_responses: m.counter("msite_proxy_streamed_responses_total", &[]),
            sessions_live: m.gauge("msite_proxy_sessions_live", &[]),
            session_live: m.gauge("msite_session_live", &[]),
            session_max: m.gauge("msite_session_max", &[]),
            session_fs_bytes: m.gauge("msite_session_fs_bytes", &[]),
        }
    }
}

/// Publishes per-stage pipeline timings into a registry's
/// `msite_stage_micros{stage=...}` histograms. Free function so the
/// streaming producer — which outlives the `&self` borrow — can
/// publish through its own registry handle.
pub(super) fn publish_stage_timings_to(
    metrics: &msite_support::telemetry::MetricsRegistry,
    report: &PipelineReport,
) {
    for stage in &report.stages {
        metrics
            .histogram(
                "msite_stage_micros",
                &[("stage", stage.kind.name())],
                LATENCY_MICROS_BOUNDS,
            )
            .observe(stage.elapsed.as_micros() as u64);
    }
}

impl ProxyServer {
    /// Counters so far — a view reconstructed from the registry.
    pub fn stats(&self) -> ProxyStats {
        ProxyStats {
            requests: self.metrics.requests.get(),
            full_renders: self.metrics.full_renders.get(),
            lightweight: self.metrics.lightweight.get(),
            origin_fetches: self.metrics.origin_fetches.get(),
            sessions_created: self.metrics.sessions_created.get(),
            failures: self
                .telemetry
                .metrics
                .counter_sum("msite_proxy_errors_total"),
            stale_served: self.metrics.stale_served.get(),
            engine_fallbacks: self.metrics.engine_fallbacks.get(),
            renders_coalesced: self.metrics.renders_coalesced.get(),
            overload_rejections: self.metrics.overload_rejections.get(),
            subtrees_reused: self.metrics.subtrees_reused.get(),
            subtrees_recomputed: self.metrics.subtrees_recomputed.get(),
            streamed_responses: self.metrics.streamed_responses.get(),
        }
    }

    /// Folds connection-level overload rejections (counted by an HTTP
    /// server with a registry *separate* from this proxy's) into
    /// [`ProxyStats::overload_rejections`]. `n` is the server's
    /// cumulative counter; the fold is a monotonic max, so repeated
    /// polling stays idempotent. A server sharing this proxy's
    /// [`Telemetry`] updates the counter directly and never needs this.
    pub fn record_overload_rejections(&self, n: u64) {
        self.metrics.overload_rejections.fold_to(n);
    }

    /// Publishes per-stage pipeline timings into the registry's
    /// `msite_stage_micros{stage=...}` histograms. Cold path: only
    /// entry rebuilds (not cache hits) get here.
    pub(super) fn publish_stage_timings(&self, report: &PipelineReport) {
        publish_stage_timings_to(&self.telemetry.metrics, report);
    }

    /// Copies registry-external counters (cache stats, live sessions)
    /// into the registry so a scrape sees one consistent surface. The
    /// cache keeps its own counters for lock-striping reasons; the
    /// monotonic `fold_to` makes this sync idempotent.
    fn sync_derived_metrics(&self) {
        let m = &self.telemetry.metrics;
        let cache = self.cache.stats();
        m.counter("msite_cache_hits_total", &[]).fold_to(cache.hits);
        m.counter("msite_cache_misses_total", &[])
            .fold_to(cache.misses);
        m.counter("msite_cache_evictions_total", &[])
            .fold_to(cache.evictions);
        m.counter("msite_cache_expirations_total", &[])
            .fold_to(cache.expirations);
        m.counter("msite_cache_stale_hits_total", &[])
            .fold_to(cache.stale_hits);
        m.counter("msite_cache_coalesced_total", &[])
            .fold_to(cache.coalesced);
        let subtrees = self.subtrees.stats();
        m.counter("msite_subtree_cache_evictions_total", &[])
            .fold_to(subtrees.evictions);
        if let Some(disk) = self.cache.disk_stats() {
            m.counter("msite_disk_hits_total", &[]).fold_to(disk.hits);
            m.counter("msite_disk_misses_total", &[])
                .fold_to(disk.misses);
            m.counter("msite_disk_puts_total", &[]).fold_to(disk.puts);
            m.counter("msite_disk_put_errors_total", &[])
                .fold_to(disk.put_errors);
            m.counter("msite_disk_quarantined_total", &[])
                .fold_to(disk.quarantined);
            m.counter("msite_disk_replayed_total", &[])
                .fold_to(disk.replayed);
            m.counter("msite_disk_segments_dropped_total", &[])
                .fold_to(disk.segments_dropped);
            m.counter("msite_disk_warm_loaded_total", &[])
                .fold_to(self.cache.warm_loaded());
            m.gauge("msite_disk_live_bytes", &[])
                .set(disk.live_bytes as i64);
        }
        // SWAR hot-path totals: tokenizer throughput and PNG encode
        // cost accumulate in process-wide atomics inside their crates;
        // fold them in so a scrape sees the pair together.
        m.counter("msite_tokenizer_bytes_total", &[])
            .fold_to(msite_html::tokenizer::bytes_total());
        let (png_encodes, png_micros) = msite_render::png::encode_totals();
        m.counter("msite_png_encodes_total", &[])
            .fold_to(png_encodes);
        m.counter("msite_png_encode_micros", &[])
            .fold_to(png_micros);
        self.metrics.sessions_live.set(self.sessions.len() as i64);
        // Session store: gauges plus eviction counters by cause and
        // per-tenant occupancy. The store keeps its own atomics for
        // lock-striping reasons; `fold_to` keeps the sync idempotent.
        let sessions = self.sessions.stats();
        self.metrics.session_live.set(sessions.live as i64);
        self.metrics
            .session_max
            .set(self.sessions.config().max_sessions as i64);
        self.metrics
            .session_fs_bytes
            .set(self.fs.session_bytes() as i64);
        m.gauge("msite_session_fs_budget", &[])
            .set(self.sessions.config().fs_byte_budget as i64);
        m.counter("msite_session_created_total", &[])
            .fold_to(sessions.created);
        m.counter("msite_session_destroyed_total", &[])
            .fold_to(sessions.destroyed);
        for (cause, value) in [
            ("lru", sessions.evicted_lru),
            ("quota", sessions.evicted_quota),
            ("expired", sessions.evicted_expired),
            ("fs_bytes", sessions.evicted_fs_bytes),
        ] {
            m.counter("msite_session_evictions_total", &[("cause", cause)])
                .fold_to(value);
        }
        for (tenant, live, _, _) in self.sessions.tenant_occupancy() {
            m.gauge("msite_session_tenant_live", &[("tenant", &tenant)])
                .set(live as i64);
        }
    }

    /// Routes the observability endpoints — `GET /metrics`,
    /// `GET /healthz`, `GET /trace/<id>` — which are answered before
    /// any request counter or trace id moves, so scraping never
    /// perturbs the numbers being scraped. Returns `None` for ordinary
    /// proxy traffic.
    pub(super) fn handle_observability(&self, request: &Request) -> Option<Response> {
        let path = request.url.path();
        match path {
            "/metrics" => Some(self.serve_metrics()),
            "/healthz" => Some(self.serve_healthz()),
            _ => path.strip_prefix("/trace/").map(|id| self.serve_trace(id)),
        }
    }

    /// `GET /metrics`: the registry's stable text exposition.
    fn serve_metrics(&self) -> Response {
        self.sync_derived_metrics();
        let text = self.telemetry.metrics.render_text();
        Response::bytes(
            "text/plain; version=0.0.4; charset=utf-8",
            Bytes::from(text.into_bytes()),
        )
    }

    /// `GET /healthz`: breaker + pool + cache summary. `200` with
    /// `"status":"ok"` when healthy; `200` + `x-msite-degraded` when
    /// the origin breaker is not closed; `503` + `x-msite-error:
    /// overloaded` when the serving tier's queue is at its depth.
    fn serve_healthz(&self) -> Response {
        use crate::error::ERROR_HEADER;
        self.sync_derived_metrics();
        let m = &self.telemetry.metrics;
        let host = Url::parse(&self.spec.page_url)
            .map(|u| u.host().to_string())
            .unwrap_or_default();
        let breaker = self.origin.breaker_state(&host);
        let queue_len = m.gauge_value("msite_server_queue_len", &[]);
        let queue_depth = m.gauge_value("msite_server_queue_depth", &[]);
        let overloaded = queue_depth > 0 && queue_len >= queue_depth;
        // Session pressure: a full store is still serving (evicting
        // LRU per admission), but it is degraded service — long-idle
        // users are losing their jars.
        let session_stats = self.sessions.stats();
        let session_max = self.sessions.config().max_sessions as u64;
        let sessions_full = session_stats.live >= session_max;
        let degraded = breaker != BreakerState::Closed || sessions_full;
        let status = if overloaded {
            "overloaded"
        } else if degraded {
            "degraded"
        } else {
            "ok"
        };
        let cache = self.cache.stats();
        // Durability summary: absent (`null`) when the cache is
        // memory-only, so probes can tell "no tier" from "idle tier".
        let disk = match self.cache.disk_stats() {
            Some(d) => format!(
                "{{\"hits\":{},\"puts\":{},\"put_errors\":{},\"quarantined\":{},\
                 \"warm_loaded\":{},\"live_bytes\":{}}}",
                d.hits,
                d.puts,
                d.put_errors,
                d.quarantined,
                self.cache.warm_loaded(),
                d.live_bytes,
            ),
            None => "null".to_string(),
        };
        // Health-monitor view: gauges a HealthMonitor sharing this
        // telemetry publishes each tick; all zero when none is attached.
        let health = format!(
            "{{\"state\":{},\"workers_target\":{},\"shed_threshold\":{},\"stale_factor\":{},\
             \"session_permille\":{}}}",
            m.gauge_value("msite_health_state", &[]),
            m.gauge_value("msite_health_workers_target", &[]),
            m.gauge_value("msite_health_shed_threshold", &[]),
            m.gauge_value("msite_health_stale_factor", &[]),
            m.gauge_value("msite_health_session_permille", &[]),
        );
        // Session-store pressure summary: occupancy against the bound,
        // budgeted bytes, and total involuntary evictions.
        let sessions = format!(
            "{{\"live\":{},\"max\":{session_max},\"fs_bytes\":{},\"fs_budget\":{},\
             \"evicted\":{},\"tenants\":{}}}",
            session_stats.live,
            self.fs.session_bytes(),
            self.sessions.config().fs_byte_budget,
            session_stats.evicted_total(),
            self.sessions.tenant_occupancy().len(),
        );
        let body = format!(
            "{{\"status\":\"{status}\",\
             \"breaker\":{{\"host\":\"{host}\",\"state\":\"{}\"}},\
             \"pool\":{{\"queue_len\":{queue_len},\"queue_depth\":{queue_depth},\"workers\":{}}},\
             \"cache\":{{\"hits\":{},\"misses\":{},\"stale_hits\":{},\"coalesced\":{}}},\
             \"disk\":{disk},\
             \"health\":{health},\
             \"sessions\":{sessions}}}",
            breaker.name(),
            m.gauge_value("msite_server_workers", &[]),
            cache.hits,
            cache.misses,
            cache.stale_hits,
            cache.coalesced,
        );
        let mut response = Response::bytes("application/json", Bytes::from(body.into_bytes()));
        if overloaded {
            response.status = msite_net::Status::SERVICE_UNAVAILABLE;
            response.headers.set(ERROR_HEADER, "overloaded");
        } else if breaker != BreakerState::Closed {
            response.headers.set(
                DEGRADED_HEADER,
                &format!("breaker; host={host}; state={}", breaker.name()),
            );
        } else if sessions_full {
            response.headers.set(
                DEGRADED_HEADER,
                &format!("sessions; live={}; max={session_max}", session_stats.live),
            );
        }
        response
    }

    /// `GET /trace/<id>`: the retained spans for one trace id as a
    /// JSON array, oldest first; `404` when the id is unknown (or has
    /// aged out of the ring).
    fn serve_trace(&self, id: &str) -> Response {
        let spans = Trace::parse_id(id)
            .map(|id| self.telemetry.trace_log.spans_for(id))
            .unwrap_or_default();
        if spans.is_empty() {
            return ProxyError::NotFound { what: "trace" }.into_response();
        }
        let body = format!(
            "[{}]",
            spans
                .iter()
                .map(|s| s.to_json())
                .collect::<Vec<_>>()
                .join(",")
        );
        Response::bytes("application/json", Bytes::from(body.into_bytes()))
    }
}
