//! The Highlight baseline (§2, §4.6): a "remote control" proxy that
//! keeps a full server-side browser instance per client session.
//!
//! Nichols et al.'s Highlight system drives a modified Firefox on the
//! proxy for every user; the paper's Figure 7 contrasts its throughput
//! against m.Site's lightweight path. This module reproduces that
//! baseline faithfully enough to measure: every request instantiates (or
//! reuses, when `pool_per_session` is set — the paper explicitly does
//! *not* pool across clients for security) a full [`Browser`], loads the
//! origin page through it, and serves the rendered result.

use msite_net::{Origin, OriginRef, Request, Response, Status};
use msite_render::browser::{Browser, BrowserConfig};
use msite_render::image::{process, ImageFormat, PostProcess};
use msite_support::sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Baseline configuration.
#[derive(Debug, Clone)]
pub struct HighlightConfig {
    /// Browser settings, including the per-instance startup cost.
    pub browser_config: BrowserConfig,
    /// Keep one browser alive per session (Highlight's model) instead of
    /// one per request. Never shared across sessions.
    pub pool_per_session: bool,
    /// Scale of the rendered view sent to the device.
    pub view_scale: f32,
}

impl Default for HighlightConfig {
    fn default() -> Self {
        HighlightConfig {
            browser_config: BrowserConfig::paper_testbed(),
            pool_per_session: false,
            view_scale: 0.5,
        }
    }
}

/// Counters for the baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HighlightStats {
    /// Requests handled.
    pub requests: u64,
    /// Browser instances launched.
    pub browsers_launched: u64,
}

/// The browser-per-client baseline proxy.
pub struct HighlightProxy {
    origin: OriginRef,
    page_url: String,
    config: HighlightConfig,
    sessions: Mutex<HashMap<String, Arc<Browser>>>,
    stats: Mutex<HighlightStats>,
}

impl HighlightProxy {
    /// Creates the baseline for one origin page.
    pub fn new(page_url: &str, origin: OriginRef, config: HighlightConfig) -> HighlightProxy {
        HighlightProxy {
            origin,
            page_url: page_url.to_string(),
            config,
            sessions: Mutex::new(HashMap::new()),
            stats: Mutex::new(HighlightStats::default()),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> HighlightStats {
        *self.stats.lock()
    }

    fn browser_for(&self, session: &str) -> Arc<Browser> {
        if self.config.pool_per_session {
            if let Some(existing) = self.sessions.lock().get(session) {
                return Arc::clone(existing);
            }
        }
        self.stats.lock().browsers_launched += 1;
        let browser = Arc::new(Browser::launch(self.config.browser_config.clone()));
        if self.config.pool_per_session {
            self.sessions
                .lock()
                .insert(session.to_string(), Arc::clone(&browser));
        }
        browser
    }

    /// Handles one remote-control interaction: fetch the page, render it
    /// in the session's browser, ship the rendered view.
    pub fn render_for(&self, session: &str) -> Response {
        self.stats.lock().requests += 1;
        let page_request = match Request::get(&self.page_url) {
            Ok(r) => r,
            Err(e) => return Response::error(Status::BAD_GATEWAY, &e.to_string()),
        };
        let page = self.origin.handle(&page_request);
        if !page.status.is_success() {
            return Response::error(
                Status::BAD_GATEWAY,
                &format!("origin returned {}", page.status),
            );
        }
        let browser = self.browser_for(session);
        let rendered = browser.render_page(&page.body_text(), &[]);
        let processed = process(
            &rendered.canvas,
            &PostProcess {
                scale: Some(self.config.view_scale),
                format: ImageFormat::JpegClass { quality: 50 },
                ..Default::default()
            },
        );
        Response::bytes("image/png", processed.encoded)
    }
}

impl Origin for HighlightProxy {
    fn handle(&self, request: &Request) -> Response {
        let session = request
            .cookie("hl_session")
            .unwrap_or_else(|| "anon".to_string());
        self.render_for(&session)
    }

    fn name(&self) -> &str {
        "highlight-baseline"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn tiny_origin() -> OriginRef {
        Arc::new(|_req: &Request| {
            Response::html("<html><body><h1>Page</h1><p>content</p></body></html>")
        })
    }

    fn fast_config() -> HighlightConfig {
        HighlightConfig {
            browser_config: BrowserConfig::default(), // no startup cost in unit tests
            pool_per_session: false,
            view_scale: 0.5,
        }
    }

    #[test]
    fn renders_page_to_image() {
        let proxy = HighlightProxy::new("http://h/", tiny_origin(), fast_config());
        let response = proxy.render_for("s1");
        assert!(response.status.is_success());
        assert!(response.body.starts_with(&[0x89, b'P', b'N', b'G']));
    }

    #[test]
    fn browser_launched_per_request_by_default() {
        let proxy = HighlightProxy::new("http://h/", tiny_origin(), fast_config());
        proxy.render_for("s1");
        proxy.render_for("s1");
        proxy.render_for("s2");
        let stats = proxy.stats();
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.browsers_launched, 3);
    }

    #[test]
    fn per_session_pool_reuses_within_session_only() {
        let mut config = fast_config();
        config.pool_per_session = true;
        let proxy = HighlightProxy::new("http://h/", tiny_origin(), config);
        proxy.render_for("s1");
        proxy.render_for("s1");
        proxy.render_for("s2");
        assert_eq!(proxy.stats().browsers_launched, 2);
    }

    #[test]
    fn startup_cost_dominates_when_modeled() {
        let mut config = fast_config();
        config.browser_config.startup_cost =
            msite_render::StartupCost::Busy(Duration::from_millis(40));
        let proxy = HighlightProxy::new("http://h/", tiny_origin(), config);
        let start = std::time::Instant::now();
        proxy.render_for("s1");
        assert!(start.elapsed() >= Duration::from_millis(40));
    }

    #[test]
    fn origin_failures_propagate() {
        let failing: OriginRef =
            Arc::new(|_req: &Request| Response::error(Status::NOT_FOUND, "gone"));
        let proxy = HighlightProxy::new("http://h/", failing, fast_config());
        assert_eq!(proxy.render_for("s1").status, Status::BAD_GATEWAY);
    }

    #[test]
    fn origin_interface_uses_session_cookie() {
        let proxy = HighlightProxy::new("http://h/", tiny_origin(), fast_config());
        let response = proxy.handle(
            &Request::get("http://hl/x")
                .unwrap()
                .with_header("cookie", "hl_session=abc"),
        );
        assert!(response.status.is_success());
        assert_eq!(proxy.stats().requests, 1);
    }
}
