//! Multi-user session management and the per-user session filesystem.
//!
//! The paper: "Upon starting a mobile session for the first time, the
//! mobile browser is issued a session cookie for maintaining state on the
//! server. All of the files generated during a user's session are stored
//! in the file system under a (protected) subdirectory created
//! specifically for that user." The proxy also keeps a cookie jar and
//! stored HTTP-auth credentials per session.
//!
//! The "filesystem" here is virtual (an in-memory tree) so tests and
//! benchmarks need no disk; [`SessionFs::export`] dumps it to a real
//! directory for the live examples.

use msite_net::{CookieJar, Prng};
use msite_support::bytes::Bytes;
use msite_support::sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// The cookie the proxy issues to mobile clients.
pub const SESSION_COOKIE: &str = "msite_session";

/// Per-user state held by the proxy.
#[derive(Debug, Default)]
pub struct Session {
    /// Session identifier (the cookie value).
    pub id: String,
    /// The user's cookie jar for origin fetches ("the proxy itself must
    /// be authenticated on behalf of the user").
    pub jar: CookieJar,
    /// Stored HTTP Basic credentials, when the auth attribute captured
    /// them.
    pub http_auth: Option<(String, String)>,
}

/// Manages sessions and their jars.
pub struct SessionManager {
    sessions: Mutex<HashMap<String, Arc<Mutex<Session>>>>,
    id_source: Mutex<Prng>,
    creation_order: Mutex<Vec<String>>,
}

impl SessionManager {
    /// Creates a manager; `seed` drives session-id generation
    /// (deterministic for tests, pass entropy in production).
    pub fn new(seed: u64) -> SessionManager {
        SessionManager {
            sessions: Mutex::new(HashMap::new()),
            id_source: Mutex::new(Prng::new(seed)),
            creation_order: Mutex::new(Vec::new()),
        }
    }

    /// Creates a fresh session and returns its handle.
    pub fn create(&self) -> Arc<Mutex<Session>> {
        let id = {
            let mut rng = self.id_source.lock();
            format!("{:016x}{:016x}", rng.next_u64(), rng.next_u64())
        };
        let session = Arc::new(Mutex::new(Session {
            id: id.clone(),
            jar: CookieJar::new(),
            http_auth: None,
        }));
        self.sessions
            .lock()
            .insert(id.clone(), Arc::clone(&session));
        self.creation_order.lock().push(id);
        session
    }

    /// Looks up an existing session by cookie value.
    pub fn get(&self, id: &str) -> Option<Arc<Mutex<Session>>> {
        self.sessions.lock().get(id).cloned()
    }

    /// Fetches the session named by the request cookie, or creates one.
    /// Returns `(session, was_created)`.
    pub fn get_or_create(&self, cookie_value: Option<&str>) -> (Arc<Mutex<Session>>, bool) {
        if let Some(id) = cookie_value {
            if let Some(existing) = self.get(id) {
                return (existing, false);
            }
        }
        (self.create(), true)
    }

    /// Ends a session (logout): drops state and cookie jar.
    pub fn destroy(&self, id: &str) -> bool {
        self.creation_order.lock().retain(|s| s != id);
        self.sessions.lock().remove(id).is_some()
    }

    /// High-level session administration: bounds live sessions to
    /// `max_sessions` by destroying the oldest ones. Returns the ids
    /// destroyed (the proxy uses this to also wipe their session
    /// directories).
    pub fn prune_to(&self, max_sessions: usize) -> Vec<String> {
        let mut destroyed = Vec::new();
        loop {
            let victim = {
                let order = self.creation_order.lock();
                if self.sessions.lock().len() <= max_sessions {
                    break;
                }
                order.first().cloned()
            };
            match victim {
                Some(id) => {
                    self.destroy(&id);
                    destroyed.push(id);
                }
                None => break,
            }
        }
        destroyed
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions.lock().len()
    }

    /// True when no sessions exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A virtual filesystem of generated artifacts: per-user subpages and
/// images under protected session directories, plus a shared public
/// cache directory.
#[derive(Default)]
pub struct SessionFs {
    files: Mutex<HashMap<String, Bytes>>,
}

impl SessionFs {
    /// Creates an empty tree.
    pub fn new() -> SessionFs {
        SessionFs::default()
    }

    /// Canonical path of a per-user file.
    pub fn user_path(session_id: &str, name: &str) -> String {
        format!("/sessions/{session_id}/{name}")
    }

    /// Canonical path of a shared public-cache file.
    pub fn public_path(name: &str) -> String {
        format!("/public/{name}")
    }

    /// Writes a file.
    pub fn write(&self, path: &str, contents: impl Into<Bytes>) {
        self.files.lock().insert(path.to_string(), contents.into());
    }

    /// Reads a file.
    pub fn read(&self, path: &str) -> Option<Bytes> {
        self.files.lock().get(path).cloned()
    }

    /// Deletes one user's entire directory, returning the file count —
    /// session teardown.
    pub fn remove_session(&self, session_id: &str) -> usize {
        let prefix = format!("/sessions/{session_id}/");
        let mut files = self.files.lock();
        let before = files.len();
        files.retain(|path, _| !path.starts_with(&prefix));
        before - files.len()
    }

    /// All stored paths, sorted (diagnostics and tests).
    pub fn paths(&self) -> Vec<String> {
        let mut paths: Vec<String> = self.files.lock().keys().cloned().collect();
        paths.sort();
        paths
    }

    /// Total bytes stored.
    pub fn total_bytes(&self) -> usize {
        self.files.lock().values().map(|b| b.len()).sum()
    }

    /// Dumps the tree under a real directory (for the live examples).
    ///
    /// # Errors
    ///
    /// Returns IO errors from directory creation or writes.
    pub fn export(&self, root: &std::path::Path) -> std::io::Result<usize> {
        let files = self.files.lock();
        let mut written = 0;
        for (path, contents) in files.iter() {
            let rel = path.trim_start_matches('/');
            let full = root.join(rel);
            if let Some(parent) = full.parent() {
                std::fs::create_dir_all(parent)?;
            }
            std::fs::write(full, contents)?;
            written += 1;
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msite_net::Cookie;

    #[test]
    fn sessions_have_unique_ids() {
        let mgr = SessionManager::new(1);
        let a = mgr.create();
        let b = mgr.create();
        assert_ne!(a.lock().id, b.lock().id);
        assert_eq!(mgr.len(), 2);
    }

    #[test]
    fn get_or_create_reuses() {
        let mgr = SessionManager::new(2);
        let (first, created) = mgr.get_or_create(None);
        assert!(created);
        let id = first.lock().id.clone();
        let (second, created) = mgr.get_or_create(Some(&id));
        assert!(!created);
        assert_eq!(second.lock().id, id);
        // Unknown cookie value: fresh session.
        let (_, created) = mgr.get_or_create(Some("stale"));
        assert!(created);
    }

    #[test]
    fn jars_are_isolated_per_session() {
        let mgr = SessionManager::new(3);
        let a = mgr.create();
        let b = mgr.create();
        a.lock().jar.store(Cookie::new("bbuserid", "1"), 0);
        assert_eq!(a.lock().jar.len(), 1);
        assert_eq!(b.lock().jar.len(), 0);
    }

    #[test]
    fn destroy_removes_state() {
        let mgr = SessionManager::new(4);
        let s = mgr.create();
        let id = s.lock().id.clone();
        assert!(mgr.destroy(&id));
        assert!(!mgr.destroy(&id));
        assert!(mgr.get(&id).is_none());
    }

    #[test]
    fn fs_user_isolation() {
        let fs = SessionFs::new();
        fs.write(&SessionFs::user_path("u1", "login.html"), "a");
        fs.write(&SessionFs::user_path("u1", "img/snap.png"), "b");
        fs.write(&SessionFs::user_path("u2", "login.html"), "c");
        fs.write(&SessionFs::public_path("snapshot.png"), "d");
        assert_eq!(fs.remove_session("u1"), 2);
        assert!(fs.read("/sessions/u1/login.html").is_none());
        assert!(fs.read("/sessions/u2/login.html").is_some());
        assert!(fs.read("/public/snapshot.png").is_some());
    }

    #[test]
    fn fs_accounting() {
        let fs = SessionFs::new();
        fs.write("/public/a", vec![0u8; 10]);
        fs.write("/public/b", vec![0u8; 5]);
        assert_eq!(fs.total_bytes(), 15);
        assert_eq!(
            fs.paths(),
            vec!["/public/a".to_string(), "/public/b".to_string()]
        );
    }

    #[test]
    fn fs_export_to_disk() {
        let fs = SessionFs::new();
        fs.write(&SessionFs::public_path("x/y.txt"), "hello");
        let dir = std::env::temp_dir().join(format!("msite-fs-test-{}", std::process::id()));
        let written = fs.export(&dir).unwrap();
        assert_eq!(written, 1);
        let content = std::fs::read_to_string(dir.join("public/x/y.txt")).unwrap();
        assert_eq!(content, "hello");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_destroys_oldest_first() {
        let mgr = SessionManager::new(5);
        let ids: Vec<String> = (0..5).map(|_| mgr.create().lock().id.clone()).collect();
        let destroyed = mgr.prune_to(2);
        assert_eq!(destroyed, ids[..3].to_vec());
        assert_eq!(mgr.len(), 2);
        assert!(mgr.get(&ids[4]).is_some());
        // Pruning to a larger bound is a no-op.
        assert!(mgr.prune_to(10).is_empty());
    }

    #[test]
    fn deterministic_ids_from_seed() {
        let a = SessionManager::new(7).create().lock().id.clone();
        let b = SessionManager::new(7).create().lock().id.clone();
        assert_eq!(a, b);
    }
}
