//! Multi-user session management and the per-user session filesystem,
//! rebuilt as a sharded, memory-bounded store.
//!
//! The paper: "Upon starting a mobile session for the first time, the
//! mobile browser is issued a session cookie for maintaining state on the
//! server. All of the files generated during a user's session are stored
//! in the file system under a (protected) subdirectory created
//! specifically for that user." The proxy also keeps a cookie jar and
//! stored HTTP-auth credentials per session.
//!
//! The seed's `SessionManager` kept every session forever: a global
//! `HashMap`, a creation-order `Vec`, and an unbounded virtual
//! filesystem. A million distinct users would OOM the proxy long before
//! throughput is the limit, and its `prune_to` bound was a check-then-act
//! race (a concurrent create between the length check and the destroy
//! left the store over its bound, with the victim's directory orphaned).
//!
//! [`SessionStore`] replaces it:
//!
//! - **Lock striping.** The id space is FNV-1a–split across shards
//!   (mirroring the render cache), each with its own mutex, slot map,
//!   and a `BTreeMap` LRU order index, so unrelated sessions never
//!   serialize and eviction is O(log n), not a map scan.
//! - **Bounds.** `max_sessions` caps live sessions; `session_ttl` is an
//!   idle timeout (sliding, refreshed on touch); the session
//!   filesystem's per-user bytes are capped by `fs_byte_budget`.
//!   Admission works by *reservation*: a creator increments the live
//!   counters first and, if over a bound, evicts a victim before
//!   inserting — the victim's removal, order-index update, and
//!   accounting all happen under one shard lock, so there is no window
//!   in which the store is over its bound and no orphaned directory.
//! - **Tenant isolation.** Every session belongs to a *tenant* (the
//!   proxy derives it from the origin site's host). A tenant may hold
//!   at most `ceil(max_sessions * tenant_share)` sessions; at quota it
//!   evicts **its own** least-recently-used session, and the global
//!   bound always evicts from the most-occupied tenant — so one hot
//!   forum can neither evict everyone else's jars nor starve their
//!   session directories.
//! - **Lazy teardown.** Eviction removes the slot under the shard lock,
//!   then wipes the victim's `SessionFs` directory and runs registered
//!   eviction hooks (the proxy drops its per-user bundle) outside any
//!   store lock.
//!
//! The "filesystem" here is virtual (an in-memory tree) so tests and
//! benchmarks need no disk; [`SessionFs::export`] dumps it to a real
//! directory for the live examples. It buckets files per session
//! directory, so teardown is O(files in that directory) and per-session
//! byte accounting is free.

use msite_net::{CookieJar, Prng};
use msite_support::bytes::Bytes;
use msite_support::sync::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The cookie the proxy issues to mobile clients.
pub const SESSION_COOKIE: &str = "msite_session";

/// Tenant label used when the caller does not distinguish tenants.
pub const DEFAULT_TENANT: &str = "default";

/// Per-user state held by the proxy.
#[derive(Debug, Default)]
pub struct Session {
    /// Session identifier (the cookie value).
    pub id: String,
    /// Tenant (origin site) this session belongs to.
    pub tenant: String,
    /// The user's cookie jar for origin fetches ("the proxy itself must
    /// be authenticated on behalf of the user").
    pub jar: CookieJar,
    /// Stored HTTP Basic credentials, when the auth attribute captured
    /// them.
    pub http_auth: Option<(String, String)>,
}

/// Why a session left the store involuntarily.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictCause {
    /// The global `max_sessions` bound was reached.
    Lru,
    /// The session's tenant was at its quota.
    Quota,
    /// The idle TTL lapsed.
    Expired,
    /// The session filesystem was over its byte budget.
    FsBytes,
}

impl EvictCause {
    /// Stable token for metric labels.
    pub fn name(self) -> &'static str {
        match self {
            EvictCause::Lru => "lru",
            EvictCause::Quota => "quota",
            EvictCause::Expired => "expired",
            EvictCause::FsBytes => "fs_bytes",
        }
    }

    /// Every cause, in label order.
    pub fn all() -> [EvictCause; 4] {
        [
            EvictCause::Lru,
            EvictCause::Quota,
            EvictCause::Expired,
            EvictCause::FsBytes,
        ]
    }
}

/// Bounds and seeds for a [`SessionStore`].
#[derive(Debug, Clone)]
pub struct SessionStoreConfig {
    /// Maximum live sessions across all tenants.
    pub max_sessions: usize,
    /// Idle timeout: a session untouched for this long expires. `None`
    /// disables expiry.
    pub session_ttl: Option<Duration>,
    /// Byte budget for per-session directories in the [`SessionFs`];
    /// exceeding it evicts least-recently-used sessions (preferring
    /// ones that own bytes) until back under.
    pub fs_byte_budget: usize,
    /// Fraction of `max_sessions` one tenant may occupy, in (0, 1].
    pub tenant_share: f64,
    /// Seed for session-id generation (deterministic for tests, pass
    /// entropy in production).
    pub seed: u64,
}

impl Default for SessionStoreConfig {
    fn default() -> Self {
        SessionStoreConfig {
            max_sessions: 4096,
            session_ttl: Some(Duration::from_secs(1800)),
            fs_byte_budget: 64 * 1024 * 1024,
            tenant_share: 1.0,
            seed: 0x6d_73_69_74_65, // "msite"
        }
    }
}

/// Counter snapshot of a [`SessionStore`]. The conservation invariant
/// `live + destroyed + evicted_total() == created` holds whenever the
/// store is quiescent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStoreStats {
    /// Sessions ever created.
    pub created: u64,
    /// Sessions currently live.
    pub live: u64,
    /// Sessions explicitly destroyed (logout).
    pub destroyed: u64,
    /// Evictions by the global LRU bound.
    pub evicted_lru: u64,
    /// Evictions by a tenant quota.
    pub evicted_quota: u64,
    /// Evictions by idle-TTL expiry.
    pub evicted_expired: u64,
    /// Evictions by the session-filesystem byte budget.
    pub evicted_fs_bytes: u64,
}

impl SessionStoreStats {
    /// Total involuntary removals, over every cause.
    pub fn evicted_total(&self) -> u64 {
        self.evicted_lru + self.evicted_quota + self.evicted_expired + self.evicted_fs_bytes
    }
}

/// Per-tenant accounting, shared between the slot (for O(1) decrement
/// on eviction) and the tenant registry.
struct TenantState {
    name: String,
    live: AtomicI64,
    created: AtomicU64,
    evicted: AtomicU64,
}

struct Slot {
    session: Arc<Mutex<Session>>,
    tenant: Arc<TenantState>,
    /// LRU tick; also the slot's key in the shard's order index.
    last_used: u64,
    /// Idle deadline (refreshed on touch); `None` = no TTL.
    expires_at: Option<Instant>,
}

#[derive(Default)]
struct ShardInner {
    slots: HashMap<String, Slot>,
    /// LRU order: tick -> session id. Ticks are unique per shard, so
    /// the oldest entry is `order.iter().next()`.
    order: BTreeMap<u64, String>,
    clock: u64,
}

/// A session removed from a shard, to be finished (fs teardown, hooks,
/// cause accounting) outside the shard lock.
struct Removed {
    id: String,
    tenant: Arc<TenantState>,
}

/// Hook run (outside store locks) with the id of every evicted or
/// destroyed session; the proxy uses it to drop per-user bundles.
pub type EvictHook = Arc<dyn Fn(&str) + Send + Sync>;

/// Sharded, bounded, tenant-aware session store. See the module docs
/// for the design.
pub struct SessionStore {
    shards: Vec<Mutex<ShardInner>>,
    config: SessionStoreConfig,
    fs: Arc<SessionFs>,
    id_source: Mutex<Prng>,
    tenants: Mutex<HashMap<String, Arc<TenantState>>>,
    live: AtomicI64,
    created: AtomicU64,
    destroyed: AtomicU64,
    evicted_lru: AtomicU64,
    evicted_quota: AtomicU64,
    evicted_expired: AtomicU64,
    evicted_fs_bytes: AtomicU64,
    /// Test/harness clock offset (micros) added to `Instant::now()`, so
    /// TTL behavior can be driven without real sleeps.
    time_offset_micros: AtomicU64,
    evict_hooks: Mutex<Vec<EvictHook>>,
}

impl SessionStore {
    /// Creates a store over `fs` (evicted sessions' directories are
    /// wiped there).
    pub fn new(config: SessionStoreConfig, fs: Arc<SessionFs>) -> SessionStore {
        let shard_count = (config.max_sessions / 32).clamp(1, 16);
        SessionStore {
            shards: (0..shard_count)
                .map(|_| Mutex::new(ShardInner::default()))
                .collect(),
            id_source: Mutex::new(Prng::new(config.seed)),
            tenants: Mutex::new(HashMap::new()),
            live: AtomicI64::new(0),
            created: AtomicU64::new(0),
            destroyed: AtomicU64::new(0),
            evicted_lru: AtomicU64::new(0),
            evicted_quota: AtomicU64::new(0),
            evicted_expired: AtomicU64::new(0),
            evicted_fs_bytes: AtomicU64::new(0),
            time_offset_micros: AtomicU64::new(0),
            evict_hooks: Mutex::new(Vec::new()),
            config,
            fs,
        }
    }

    /// The bounds this store enforces.
    pub fn config(&self) -> &SessionStoreConfig {
        &self.config
    }

    /// The session filesystem this store accounts against.
    pub fn fs(&self) -> &Arc<SessionFs> {
        &self.fs
    }

    /// Registers a hook run (outside store locks) with every evicted or
    /// destroyed session id. Multiple proxies sharing a store each
    /// register their own.
    pub fn add_evict_hook(&self, hook: EvictHook) {
        self.evict_hooks.lock().push(hook);
    }

    /// Max sessions a single tenant may hold.
    pub fn tenant_quota(&self) -> usize {
        let share = if self.config.tenant_share > 0.0 && self.config.tenant_share <= 1.0 {
            self.config.tenant_share
        } else {
            1.0
        };
        ((self.config.max_sessions as f64 * share).ceil() as usize)
            .clamp(1, self.config.max_sessions.max(1))
    }

    fn now(&self) -> Instant {
        Instant::now() + Duration::from_micros(self.time_offset_micros.load(Ordering::Relaxed))
    }

    /// Advances the store's notion of "now" by `delta` — a harness hook
    /// that makes TTL tests deterministic without sleeping.
    pub fn advance_clock(&self, delta: Duration) {
        self.time_offset_micros
            .fetch_add(delta.as_micros() as u64, Ordering::Relaxed);
    }

    fn shard_of(&self, id: &str) -> usize {
        if self.shards.len() == 1 {
            return 0;
        }
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in id.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0100_0000_01B3);
        }
        (hash % self.shards.len() as u64) as usize
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn tenant_state(&self, tenant: &str) -> Arc<TenantState> {
        let mut tenants = self.tenants.lock();
        if let Some(state) = tenants.get(tenant) {
            return Arc::clone(state);
        }
        let state = Arc::new(TenantState {
            name: tenant.to_string(),
            live: AtomicI64::new(0),
            created: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        });
        tenants.insert(tenant.to_string(), Arc::clone(&state));
        state
    }

    /// Creates a fresh session for `tenant` and returns its handle,
    /// evicting within bounds first (see the module docs).
    pub fn create(&self, tenant: &str) -> Arc<Mutex<Session>> {
        let tenant_state = self.tenant_state(tenant);
        self.created.fetch_add(1, Ordering::Relaxed);
        tenant_state.created.fetch_add(1, Ordering::Relaxed);

        // Reservation: count ourselves live first, then evict while any
        // bound is exceeded. The eviction itself is atomic per shard, so
        // the store is never left over a bound by a concurrent create.
        // A full-share quota equals the global bound and is subsumed by
        // it (those evictions are plain LRU, not quota enforcement).
        let quota = self.tenant_quota();
        tenant_state.live.fetch_add(1, Ordering::Relaxed);
        if quota < self.config.max_sessions {
            while tenant_state.live.load(Ordering::Relaxed) > quota as i64 {
                if !self.evict_one(Some(&tenant_state), EvictCause::Quota) {
                    break;
                }
            }
        }
        self.live.fetch_add(1, Ordering::Relaxed);
        // Loop until the bound holds again rather than evicting exactly
        // once: a concurrent eviction can race this one for the same
        // victim, and a single losing attempt would strand the store
        // over bound permanently. Re-reading the counter self-heals —
        // whichever creator still sees an excess claims the next
        // victim; when both scans find nothing the excess is purely
        // other creators' reservations, which they settle themselves.
        while self.live.load(Ordering::Relaxed) > self.config.max_sessions as i64 {
            // The global bound always claims its victim from the most
            // occupied tenant, so a saturated tenant cannot push anyone
            // else's sessions out.
            let hog = self.most_occupied_tenant().unwrap_or_else(|| {
                // No other tenant registered yet: we are the hog.
                Arc::clone(&tenant_state)
            });
            if !self.evict_one(Some(&hog), EvictCause::Lru)
                && !self.evict_one(None, EvictCause::Lru)
            {
                break;
            }
        }
        self.enforce_fs_budget();

        let id = {
            let mut rng = self.id_source.lock();
            format!("{:016x}{:016x}", rng.next_u64(), rng.next_u64())
        };
        let session = Arc::new(Mutex::new(Session {
            id: id.clone(),
            tenant: tenant.to_string(),
            jar: CookieJar::new(),
            http_auth: None,
        }));
        let expires_at = self.config.session_ttl.map(|ttl| self.now() + ttl);
        let mut shard = self.shards[self.shard_of(&id)].lock();
        shard.clock += 1;
        let tick = shard.clock;
        shard.order.insert(tick, id.clone());
        shard.slots.insert(
            id,
            Slot {
                session: Arc::clone(&session),
                tenant: tenant_state,
                last_used: tick,
                expires_at,
            },
        );
        session
    }

    /// Looks up a live session by cookie value, scoped to `tenant`: a
    /// cookie replayed against another tenant's proxy misses (per-tenant
    /// isolation). Touching refreshes the LRU position and idle TTL; an
    /// expired session is removed (cause `expired`) and misses.
    pub fn get(&self, id: &str, tenant: &str) -> Option<Arc<Mutex<Session>>> {
        let now = self.now();
        let removed = {
            let mut shard = self.shards[self.shard_of(id)].lock();
            let (wrong_tenant, expired, old_tick) = {
                let slot = shard.slots.get(id)?;
                (
                    slot.tenant.name != tenant,
                    slot.expires_at.map(|t| now >= t).unwrap_or(false),
                    slot.last_used,
                )
            };
            if wrong_tenant {
                return None;
            }
            if expired {
                let slot = shard.slots.remove(id).expect("slot present");
                shard.order.remove(&old_tick);
                Removed {
                    id: id.to_string(),
                    tenant: slot.tenant,
                }
            } else {
                shard.clock += 1;
                let tick = shard.clock;
                shard.order.remove(&old_tick);
                shard.order.insert(tick, id.to_string());
                let slot = shard.slots.get_mut(id).expect("slot present");
                slot.last_used = tick;
                slot.expires_at = self.config.session_ttl.map(|ttl| now + ttl);
                return Some(Arc::clone(&slot.session));
            }
        };
        self.finish_removal(removed, Some(EvictCause::Expired));
        None
    }

    /// Fetches the session named by the request cookie, or creates one.
    /// Returns `(session, was_created)`.
    pub fn get_or_create(
        &self,
        cookie_value: Option<&str>,
        tenant: &str,
    ) -> (Arc<Mutex<Session>>, bool) {
        if let Some(id) = cookie_value {
            if let Some(existing) = self.get(id, tenant) {
                return (existing, false);
            }
        }
        (self.create(tenant), true)
    }

    /// Ends a session (logout): drops its state, cookie jar, and
    /// session directory.
    pub fn destroy(&self, id: &str) -> bool {
        let removed = {
            let mut shard = self.shards[self.shard_of(id)].lock();
            match shard.slots.remove(id) {
                Some(slot) => {
                    shard.order.remove(&slot.last_used);
                    Removed {
                        id: id.to_string(),
                        tenant: slot.tenant,
                    }
                }
                None => return false,
            }
        };
        self.destroyed.fetch_add(1, Ordering::Relaxed);
        self.finish_removal(removed, None);
        true
    }

    /// The most occupied tenant (ties broken by name for determinism).
    fn most_occupied_tenant(&self) -> Option<Arc<TenantState>> {
        let tenants = self.tenants.lock();
        tenants
            .values()
            .max_by(|a, b| {
                a.live
                    .load(Ordering::Relaxed)
                    .cmp(&b.live.load(Ordering::Relaxed))
                    .then_with(|| b.name.cmp(&a.name))
            })
            .map(Arc::clone)
    }

    /// Evicts one session matching `filter` (its tenant, or any when
    /// `None`), preferring the globally least-recently-used candidate.
    /// Expired victims are accounted as `expired` regardless of the
    /// requested cause. Returns `false` when nothing matched.
    ///
    /// Two phases: a lock-per-shard scan picks the shard holding the
    /// oldest matching slot, then that shard is re-locked and its
    /// oldest matching slot removed *under the lock* — eviction is
    /// atomic per shard, so a concurrent create can interleave but
    /// never observe (or cause) a half-removed slot or a stale bound.
    fn evict_one(&self, filter: Option<&Arc<TenantState>>, cause: EvictCause) -> bool {
        let mut best: Option<(usize, u64)> = None;
        for (index, shard) in self.shards.iter().enumerate() {
            let inner = shard.lock();
            for (tick, id) in inner.order.iter() {
                let slot = &inner.slots[id];
                if filter.map(|t| Arc::ptr_eq(t, &slot.tenant)).unwrap_or(true) {
                    if best.map(|(_, t)| *tick < t).unwrap_or(true) {
                        best = Some((index, *tick));
                    }
                    break;
                }
            }
        }
        let Some((index, _)) = best else { return false };

        let now = self.now();
        let removed = {
            let mut shard = self.shards[index].lock();
            let victim = shard.order.iter().find_map(|(tick, id)| {
                let slot = &shard.slots[id];
                filter
                    .map(|t| Arc::ptr_eq(t, &slot.tenant))
                    .unwrap_or(true)
                    .then(|| (*tick, id.clone()))
            });
            let Some((tick, id)) = victim else {
                return false;
            };
            let slot = shard.slots.remove(&id).expect("victim present");
            shard.order.remove(&tick);
            let expired = slot.expires_at.map(|t| now >= t).unwrap_or(false);
            (
                Removed {
                    id,
                    tenant: slot.tenant,
                },
                expired,
            )
        };
        let (removed, expired) = removed;
        self.finish_removal(
            removed,
            Some(if expired { EvictCause::Expired } else { cause }),
        );
        true
    }

    /// Completes a removal outside any shard lock: counter upkeep,
    /// lazy directory teardown, and eviction hooks.
    fn finish_removal(&self, removed: Removed, cause: Option<EvictCause>) {
        self.live.fetch_sub(1, Ordering::Relaxed);
        removed.tenant.live.fetch_sub(1, Ordering::Relaxed);
        if let Some(cause) = cause {
            removed.tenant.evicted.fetch_add(1, Ordering::Relaxed);
            let counter = match cause {
                EvictCause::Lru => &self.evicted_lru,
                EvictCause::Quota => &self.evicted_quota,
                EvictCause::Expired => &self.evicted_expired,
                EvictCause::FsBytes => &self.evicted_fs_bytes,
            };
            counter.fetch_add(1, Ordering::Relaxed);
        }
        self.fs.remove_session(&removed.id);
        let hooks: Vec<EvictHook> = self.evict_hooks.lock().clone();
        for hook in hooks {
            hook(&removed.id);
        }
    }

    /// Evicts least-recently-used sessions owning filesystem bytes
    /// until the session directories fit the byte budget. Amortized:
    /// called from `create`, and callable directly by harnesses. When
    /// no live session owns bytes but the budget is still exceeded,
    /// the bytes belong to orphaned directories — reclaim those.
    pub fn enforce_fs_budget(&self) {
        let budget = self.config.fs_byte_budget;
        while self.fs.session_bytes() > budget {
            if !self.evict_one_with_bytes() && self.reclaim_orphan_dirs() == 0 {
                break;
            }
        }
    }

    /// Removes session directories whose owner is no longer live and
    /// returns how many were reclaimed. Teardown is lazy and eviction
    /// races in-flight artifact writes: a request thread holding a
    /// session `Arc` can write a file *after* the store evicted that
    /// session and wiped its directory, leaving orphan bytes no future
    /// eviction can attribute. This sweep reconciles the filesystem
    /// with the live set; `enforce_fs_budget` falls back to it.
    pub fn reclaim_orphan_dirs(&self) -> usize {
        let mut reclaimed = 0;
        for id in self.fs.session_ids() {
            let live = self.shards[self.shard_of(&id)]
                .lock()
                .slots
                .contains_key(&id);
            if !live && self.fs.remove_session(&id) > 0 {
                reclaimed += 1;
            }
        }
        reclaimed
    }

    /// Evicts the oldest session that owns filesystem bytes (cause
    /// `fs_bytes`). Sessions without a directory cannot reduce the
    /// budget, so they are skipped.
    fn evict_one_with_bytes(&self) -> bool {
        let mut best: Option<(usize, u64)> = None;
        for (index, shard) in self.shards.iter().enumerate() {
            let inner = shard.lock();
            for (tick, id) in inner.order.iter() {
                if self.fs.bytes_of(id) > 0 {
                    if best.map(|(_, t)| *tick < t).unwrap_or(true) {
                        best = Some((index, *tick));
                    }
                    break;
                }
            }
        }
        let Some((index, _)) = best else { return false };
        let removed = {
            let mut shard = self.shards[index].lock();
            let victim = shard
                .order
                .iter()
                .find_map(|(tick, id)| (self.fs.bytes_of(id) > 0).then(|| (*tick, id.clone())));
            let Some((tick, id)) = victim else {
                return false;
            };
            let slot = shard.slots.remove(&id).expect("victim present");
            shard.order.remove(&tick);
            Removed {
                id,
                tenant: slot.tenant,
            }
        };
        self.finish_removal(removed, Some(EvictCause::FsBytes));
        true
    }

    /// Removes every expired session now (cause `expired`). `get`
    /// already removes expired sessions lazily; this sweep is for
    /// harnesses that want deterministic occupancy numbers.
    pub fn sweep_expired(&self) -> usize {
        let now = self.now();
        let mut swept = 0;
        for shard in &self.shards {
            loop {
                let removed = {
                    let mut inner = shard.lock();
                    let victim = inner.order.iter().find_map(|(tick, id)| {
                        inner.slots[id]
                            .expires_at
                            .map(|t| now >= t)
                            .unwrap_or(false)
                            .then(|| (*tick, id.clone()))
                    });
                    match victim {
                        Some((tick, id)) => {
                            let slot = inner.slots.remove(&id).expect("slot present");
                            inner.order.remove(&tick);
                            Removed {
                                id,
                                tenant: slot.tenant,
                            }
                        }
                        None => break,
                    }
                };
                self.finish_removal(removed, Some(EvictCause::Expired));
                swept += 1;
            }
        }
        swept
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.live.load(Ordering::Relaxed).max(0) as usize
    }

    /// True when no sessions exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Live sessions of one tenant.
    pub fn tenant_live(&self, tenant: &str) -> usize {
        self.tenants
            .lock()
            .get(tenant)
            .map(|t| t.live.load(Ordering::Relaxed).max(0) as usize)
            .unwrap_or(0)
    }

    /// Per-tenant `(name, live, created, evicted)` occupancy, sorted by
    /// name.
    pub fn tenant_occupancy(&self) -> Vec<(String, usize, u64, u64)> {
        let mut rows: Vec<(String, usize, u64, u64)> = self
            .tenants
            .lock()
            .values()
            .map(|t| {
                (
                    t.name.clone(),
                    t.live.load(Ordering::Relaxed).max(0) as usize,
                    t.created.load(Ordering::Relaxed),
                    t.evicted.load(Ordering::Relaxed),
                )
            })
            .collect();
        rows.sort();
        rows
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SessionStoreStats {
        SessionStoreStats {
            created: self.created.load(Ordering::Relaxed),
            live: self.len() as u64,
            destroyed: self.destroyed.load(Ordering::Relaxed),
            evicted_lru: self.evicted_lru.load(Ordering::Relaxed),
            evicted_quota: self.evicted_quota.load(Ordering::Relaxed),
            evicted_expired: self.evicted_expired.load(Ordering::Relaxed),
            evicted_fs_bytes: self.evicted_fs_bytes.load(Ordering::Relaxed),
        }
    }

    /// Estimated heap bytes held by the store itself: ids (slot key,
    /// session field, order index), cookie jars, and fixed per-slot
    /// overhead. The capacity harness asserts this against its memory
    /// ceiling; `SessionFs` bytes are accounted separately.
    pub fn estimated_bytes(&self) -> usize {
        // HashMap + BTreeMap entries, Arc<Mutex<Session>> + Slot.
        const SLOT_OVERHEAD: usize = 256;
        let mut total = 0;
        for shard in &self.shards {
            let inner = shard.lock();
            for (id, slot) in inner.slots.iter() {
                let session = slot.session.lock();
                total += id.len() * 3
                    + session.tenant.len()
                    + session.jar.approx_bytes()
                    + session
                        .http_auth
                        .as_ref()
                        .map(|(u, p)| u.len() + p.len())
                        .unwrap_or(0)
                    + SLOT_OVERHEAD;
            }
        }
        total
    }
}

impl std::fmt::Debug for SessionStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionStore")
            .field("config", &self.config)
            .field("live", &self.len())
            .field("shards", &self.shards.len())
            .finish()
    }
}

/// A virtual filesystem of generated artifacts: per-user subpages and
/// images under protected session directories, plus a shared public
/// cache directory.
///
/// Files are bucketed per session directory (sharded by session id) so
/// a session's teardown touches only its own files, and per-directory
/// byte accounting is maintained on every write — the session store
/// enforces its `fs_byte_budget` against [`SessionFs::session_bytes`].
pub struct SessionFs {
    /// Session directories, sharded by session id (FNV-1a).
    shards: Vec<Mutex<HashMap<String, Dir>>>,
    public: Mutex<HashMap<String, Bytes>>,
    session_bytes: AtomicU64,
    public_bytes: AtomicU64,
}

struct Dir {
    files: HashMap<String, Bytes>,
    bytes: usize,
}

const FS_SHARDS: usize = 16;

impl Default for SessionFs {
    fn default() -> Self {
        SessionFs {
            shards: (0..FS_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            public: Mutex::new(HashMap::new()),
            session_bytes: AtomicU64::new(0),
            public_bytes: AtomicU64::new(0),
        }
    }
}

/// Splits a canonical session path into `(session_id, relative_path)`.
fn split_session_path(path: &str) -> Option<(&str, &str)> {
    let rest = path.strip_prefix("/sessions/")?;
    let (id, rel) = rest.split_once('/')?;
    (!id.is_empty() && !rel.is_empty()).then_some((id, rel))
}

impl SessionFs {
    /// Creates an empty tree.
    pub fn new() -> SessionFs {
        SessionFs::default()
    }

    /// Canonical path of a per-user file.
    pub fn user_path(session_id: &str, name: &str) -> String {
        format!("/sessions/{session_id}/{name}")
    }

    /// Canonical path of a shared public-cache file.
    pub fn public_path(name: &str) -> String {
        format!("/public/{name}")
    }

    fn shard_for(&self, session_id: &str) -> &Mutex<HashMap<String, Dir>> {
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in session_id.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0100_0000_01B3);
        }
        &self.shards[(hash % self.shards.len() as u64) as usize]
    }

    /// Writes a file, replacing any previous contents at `path`.
    pub fn write(&self, path: &str, contents: impl Into<Bytes>) {
        let contents = contents.into();
        match split_session_path(path) {
            Some((id, rel)) => {
                let mut shard = self.shard_for(id).lock();
                let dir = shard.entry(id.to_string()).or_insert_with(|| Dir {
                    files: HashMap::new(),
                    bytes: 0,
                });
                let new_len = contents.len();
                let old_len = dir
                    .files
                    .insert(rel.to_string(), contents)
                    .map(|old| old.len())
                    .unwrap_or(0);
                dir.bytes = dir.bytes + new_len - old_len;
                if new_len >= old_len {
                    self.session_bytes
                        .fetch_add((new_len - old_len) as u64, Ordering::Relaxed);
                } else {
                    self.session_bytes
                        .fetch_sub((old_len - new_len) as u64, Ordering::Relaxed);
                }
            }
            None => {
                let mut public = self.public.lock();
                let new_len = contents.len();
                let old_len = public
                    .insert(path.to_string(), contents)
                    .map(|old| old.len())
                    .unwrap_or(0);
                if new_len >= old_len {
                    self.public_bytes
                        .fetch_add((new_len - old_len) as u64, Ordering::Relaxed);
                } else {
                    self.public_bytes
                        .fetch_sub((old_len - new_len) as u64, Ordering::Relaxed);
                }
            }
        }
    }

    /// Reads a file.
    pub fn read(&self, path: &str) -> Option<Bytes> {
        match split_session_path(path) {
            Some((id, rel)) => self
                .shard_for(id)
                .lock()
                .get(id)
                .and_then(|dir| dir.files.get(rel))
                .cloned(),
            None => self.public.lock().get(path).cloned(),
        }
    }

    /// Deletes one user's entire directory, returning the file count —
    /// session teardown. O(files in that directory).
    pub fn remove_session(&self, session_id: &str) -> usize {
        let removed = self.shard_for(session_id).lock().remove(session_id);
        match removed {
            Some(dir) => {
                self.session_bytes
                    .fetch_sub(dir.bytes as u64, Ordering::Relaxed);
                dir.files.len()
            }
            None => 0,
        }
    }

    /// All stored paths, sorted (diagnostics and tests).
    pub fn paths(&self) -> Vec<String> {
        let mut paths: Vec<String> = self.public.lock().keys().cloned().collect();
        for shard in &self.shards {
            for (id, dir) in shard.lock().iter() {
                for rel in dir.files.keys() {
                    paths.push(format!("/sessions/{id}/{rel}"));
                }
            }
        }
        paths.sort();
        paths
    }

    /// Total bytes stored (session directories + public cache).
    pub fn total_bytes(&self) -> usize {
        (self.session_bytes.load(Ordering::Relaxed) + self.public_bytes.load(Ordering::Relaxed))
            as usize
    }

    /// Bytes held by per-session directories (the budgeted portion).
    pub fn session_bytes(&self) -> usize {
        self.session_bytes.load(Ordering::Relaxed) as usize
    }

    /// Bytes held by one session's directory.
    pub fn bytes_of(&self, session_id: &str) -> usize {
        self.shard_for(session_id)
            .lock()
            .get(session_id)
            .map(|dir| dir.bytes)
            .unwrap_or(0)
    }

    /// Number of session directories currently present.
    pub fn session_dirs(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Ids of every session directory currently present (orphan
    /// reconciliation walks this).
    pub fn session_ids(&self) -> Vec<String> {
        let mut ids = Vec::new();
        for shard in &self.shards {
            ids.extend(shard.lock().keys().cloned());
        }
        ids
    }

    /// Dumps the tree under a real directory (for the live examples).
    ///
    /// # Errors
    ///
    /// Returns IO errors from directory creation or writes.
    pub fn export(&self, root: &std::path::Path) -> std::io::Result<usize> {
        let mut written = 0;
        let write_one = |path: &str, contents: &Bytes| -> std::io::Result<()> {
            let rel = path.trim_start_matches('/');
            let full = root.join(rel);
            if let Some(parent) = full.parent() {
                std::fs::create_dir_all(parent)?;
            }
            std::fs::write(full, contents)?;
            Ok(())
        };
        for (path, contents) in self.public.lock().iter() {
            write_one(path, contents)?;
            written += 1;
        }
        for shard in &self.shards {
            for (id, dir) in shard.lock().iter() {
                for (rel, contents) in dir.files.iter() {
                    write_one(&format!("/sessions/{id}/{rel}"), contents)?;
                    written += 1;
                }
            }
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msite_net::Cookie;

    fn store(config: SessionStoreConfig) -> SessionStore {
        SessionStore::new(config, Arc::new(SessionFs::new()))
    }

    fn small(max_sessions: usize) -> SessionStore {
        store(SessionStoreConfig {
            max_sessions,
            session_ttl: None,
            ..SessionStoreConfig::default()
        })
    }

    #[test]
    fn sessions_have_unique_ids() {
        let mgr = small(16);
        let a = mgr.create(DEFAULT_TENANT);
        let b = mgr.create(DEFAULT_TENANT);
        assert_ne!(a.lock().id, b.lock().id);
        assert_eq!(mgr.len(), 2);
    }

    #[test]
    fn get_or_create_reuses() {
        let mgr = small(16);
        let (first, created) = mgr.get_or_create(None, DEFAULT_TENANT);
        assert!(created);
        let id = first.lock().id.clone();
        let (second, created) = mgr.get_or_create(Some(&id), DEFAULT_TENANT);
        assert!(!created);
        assert_eq!(second.lock().id, id);
        // Unknown cookie value: fresh session.
        let (_, created) = mgr.get_or_create(Some("stale"), DEFAULT_TENANT);
        assert!(created);
    }

    #[test]
    fn jars_are_isolated_per_session() {
        let mgr = small(16);
        let a = mgr.create(DEFAULT_TENANT);
        let b = mgr.create(DEFAULT_TENANT);
        a.lock().jar.store(Cookie::new("bbuserid", "1"), 0);
        assert_eq!(a.lock().jar.len(), 1);
        assert_eq!(b.lock().jar.len(), 0);
    }

    #[test]
    fn destroy_removes_state() {
        let mgr = small(16);
        let s = mgr.create(DEFAULT_TENANT);
        let id = s.lock().id.clone();
        assert!(mgr.destroy(&id));
        assert!(!mgr.destroy(&id));
        assert!(mgr.get(&id, DEFAULT_TENANT).is_none());
        let stats = mgr.stats();
        assert_eq!(stats.destroyed, 1);
        assert_eq!(stats.live, 0);
    }

    #[test]
    fn lru_bound_evicts_oldest_first() {
        let mgr = small(2);
        let ids: Vec<String> = (0..4)
            .map(|_| mgr.create(DEFAULT_TENANT).lock().id.clone())
            .collect();
        assert_eq!(mgr.len(), 2);
        assert!(mgr.get(&ids[0], DEFAULT_TENANT).is_none());
        assert!(mgr.get(&ids[1], DEFAULT_TENANT).is_none());
        assert!(mgr.get(&ids[3], DEFAULT_TENANT).is_some());
        assert_eq!(mgr.stats().evicted_lru, 2);
    }

    #[test]
    fn touch_protects_from_eviction() {
        let mgr = small(2);
        let a = mgr.create(DEFAULT_TENANT).lock().id.clone();
        let b = mgr.create(DEFAULT_TENANT).lock().id.clone();
        // Touch a so b becomes the LRU victim.
        assert!(mgr.get(&a, DEFAULT_TENANT).is_some());
        mgr.create(DEFAULT_TENANT);
        assert!(mgr.get(&a, DEFAULT_TENANT).is_some());
        assert!(mgr.get(&b, DEFAULT_TENANT).is_none());
    }

    #[test]
    fn idle_ttl_expires_sessions() {
        let mgr = store(SessionStoreConfig {
            max_sessions: 8,
            session_ttl: Some(Duration::from_secs(60)),
            ..SessionStoreConfig::default()
        });
        let id = mgr.create("t").lock().id.clone();
        mgr.advance_clock(Duration::from_secs(30));
        // A touch refreshes the idle deadline.
        assert!(mgr.get(&id, "t").is_some());
        mgr.advance_clock(Duration::from_secs(45));
        assert!(mgr.get(&id, "t").is_some());
        mgr.advance_clock(Duration::from_secs(61));
        assert!(mgr.get(&id, "t").is_none());
        assert_eq!(mgr.stats().evicted_expired, 1);
        assert_eq!(mgr.len(), 0);
    }

    #[test]
    fn sweep_expired_reclaims_untouched_sessions() {
        let mgr = store(SessionStoreConfig {
            max_sessions: 8,
            session_ttl: Some(Duration::from_secs(10)),
            ..SessionStoreConfig::default()
        });
        for _ in 0..5 {
            mgr.create("t");
        }
        mgr.advance_clock(Duration::from_secs(11));
        assert_eq!(mgr.sweep_expired(), 5);
        assert_eq!(mgr.len(), 0);
        assert_eq!(mgr.stats().evicted_expired, 5);
    }

    #[test]
    fn tenant_quota_evicts_own_sessions_only() {
        let mgr = store(SessionStoreConfig {
            max_sessions: 10,
            session_ttl: None,
            tenant_share: 0.5,
            ..SessionStoreConfig::default()
        });
        assert_eq!(mgr.tenant_quota(), 5);
        let b_ids: Vec<String> = (0..3).map(|_| mgr.create("b").lock().id.clone()).collect();
        // Tenant a floods far past its quota.
        for _ in 0..40 {
            mgr.create("a");
        }
        assert_eq!(mgr.tenant_live("a"), 5, "a capped at quota");
        assert_eq!(mgr.tenant_live("b"), 3, "b untouched by a's flood");
        for id in &b_ids {
            assert!(mgr.get(id, "b").is_some(), "b session survived");
        }
        assert_eq!(mgr.stats().evicted_quota, 35);
    }

    #[test]
    fn tenant_isolation_on_lookup() {
        let mgr = small(8);
        let id = mgr.create("a").lock().id.clone();
        assert!(mgr.get(&id, "b").is_none(), "cookie replay across tenants");
        assert!(mgr.get(&id, "a").is_some(), "replay did not destroy it");
    }

    #[test]
    fn eviction_wipes_session_directory() {
        let fs = Arc::new(SessionFs::new());
        let mgr = SessionStore::new(
            SessionStoreConfig {
                max_sessions: 1,
                session_ttl: None,
                ..SessionStoreConfig::default()
            },
            Arc::clone(&fs),
        );
        let a = mgr.create("t").lock().id.clone();
        fs.write(&SessionFs::user_path(&a, "s/x.html"), "hello");
        assert_eq!(fs.session_dirs(), 1);
        mgr.create("t");
        assert_eq!(fs.session_dirs(), 0, "victim directory torn down");
        assert_eq!(fs.bytes_of(&a), 0);
    }

    #[test]
    fn fs_budget_evicts_byte_owners() {
        let fs = Arc::new(SessionFs::new());
        let mgr = SessionStore::new(
            SessionStoreConfig {
                max_sessions: 16,
                session_ttl: None,
                fs_byte_budget: 100,
                ..SessionStoreConfig::default()
            },
            Arc::clone(&fs),
        );
        let ids: Vec<String> = (0..4).map(|_| mgr.create("t").lock().id.clone()).collect();
        for id in &ids {
            fs.write(&SessionFs::user_path(id, "f"), vec![0u8; 40]);
        }
        assert_eq!(fs.session_bytes(), 160);
        mgr.enforce_fs_budget();
        assert!(fs.session_bytes() <= 100, "bytes {}", fs.session_bytes());
        // The oldest byte-owners went; the newest survived.
        assert!(mgr.get(&ids[3], "t").is_some());
        assert!(mgr.stats().evicted_fs_bytes >= 1);
        // Sessions without bytes are never chosen, so the store can
        // stay above the eviction count implied by the byte math.
        assert_eq!(mgr.len() + mgr.stats().evicted_fs_bytes as usize, 4);
    }

    #[test]
    fn evict_hooks_fire_outside_locks() {
        let mgr = small(1);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        mgr.add_evict_hook(Arc::new(move |id| seen2.lock().push(id.to_string())));
        let a = mgr.create("t").lock().id.clone();
        mgr.create("t");
        assert_eq!(*seen.lock(), vec![a]);
    }

    #[test]
    fn accounting_conserves() {
        let mgr = store(SessionStoreConfig {
            max_sessions: 4,
            session_ttl: None,
            tenant_share: 0.75,
            ..SessionStoreConfig::default()
        });
        let mut kept = Vec::new();
        for i in 0..30 {
            let tenant = if i % 3 == 0 { "a" } else { "b" };
            kept.push(mgr.create(tenant).lock().id.clone());
        }
        mgr.destroy(&kept[29]);
        let stats = mgr.stats();
        assert_eq!(
            stats.live + stats.destroyed + stats.evicted_total(),
            stats.created
        );
        assert!(mgr.len() <= 4);
    }

    #[test]
    fn estimated_bytes_tracks_jar_weight() {
        let mgr = small(8);
        let s = mgr.create("t");
        let before = mgr.estimated_bytes();
        s.lock()
            .jar
            .store(Cookie::new("bbsessionhash", &"x".repeat(500)), 0);
        assert!(mgr.estimated_bytes() > before + 400);
    }

    #[test]
    fn deterministic_ids_from_seed() {
        let config = SessionStoreConfig {
            seed: 7,
            ..SessionStoreConfig::default()
        };
        let a = store(config.clone()).create("t").lock().id.clone();
        let b = store(config).create("t").lock().id.clone();
        assert_eq!(a, b);
    }

    // ---------------------------------------------------------- fs --

    #[test]
    fn fs_user_isolation() {
        let fs = SessionFs::new();
        fs.write(&SessionFs::user_path("u1", "login.html"), "a");
        fs.write(&SessionFs::user_path("u1", "img/snap.png"), "b");
        fs.write(&SessionFs::user_path("u2", "login.html"), "c");
        fs.write(&SessionFs::public_path("snapshot.png"), "d");
        assert_eq!(fs.remove_session("u1"), 2);
        assert!(fs.read("/sessions/u1/login.html").is_none());
        assert!(fs.read("/sessions/u2/login.html").is_some());
        assert!(fs.read("/public/snapshot.png").is_some());
    }

    #[test]
    fn fs_accounting() {
        let fs = SessionFs::new();
        fs.write("/public/a", vec![0u8; 10]);
        fs.write("/public/b", vec![0u8; 5]);
        assert_eq!(fs.total_bytes(), 15);
        assert_eq!(
            fs.paths(),
            vec!["/public/a".to_string(), "/public/b".to_string()]
        );
    }

    #[test]
    fn fs_per_session_accounting() {
        let fs = SessionFs::new();
        fs.write(&SessionFs::user_path("u1", "a"), vec![0u8; 10]);
        fs.write(&SessionFs::user_path("u1", "b"), vec![0u8; 20]);
        fs.write(&SessionFs::user_path("u2", "a"), vec![0u8; 5]);
        fs.write(&SessionFs::public_path("p"), vec![0u8; 100]);
        assert_eq!(fs.bytes_of("u1"), 30);
        assert_eq!(fs.bytes_of("u2"), 5);
        assert_eq!(fs.session_bytes(), 35);
        assert_eq!(fs.total_bytes(), 135);
        // Replacing a file adjusts, not adds.
        fs.write(&SessionFs::user_path("u1", "b"), vec![0u8; 4]);
        assert_eq!(fs.bytes_of("u1"), 14);
        assert_eq!(fs.session_bytes(), 19);
        fs.remove_session("u1");
        assert_eq!(fs.session_bytes(), 5);
        assert_eq!(fs.session_dirs(), 1);
    }

    #[test]
    fn fs_export_to_disk() {
        let fs = SessionFs::new();
        fs.write(&SessionFs::public_path("x/y.txt"), "hello");
        let dir = std::env::temp_dir().join(format!("msite-fs-test-{}", std::process::id()));
        let written = fs.export(&dir).unwrap();
        assert_eq!(written, 1);
        let content = std::fs::read_to_string(dir.join("public/x/y.txt")).unwrap();
        assert_eq!(content, "hello");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
