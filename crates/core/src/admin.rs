//! The site administrator's visual tool, as a library (§3.1).
//!
//! The paper's tool shows a live view of the page; the administrator
//! highlights objects point-and-click and assigns attributes from a
//! menu. This module is the engine behind such a tool: it loads a page,
//! renders it, and exposes the *selectable object list* — each candidate
//! with a stable selector, its geometry, and a preview — plus a builder
//! that accumulates attribute assignments into an [`AdaptationSpec`] and
//! finally generates the proxy program.

use crate::attributes::{AdaptationSpec, Attribute, SourceFilter, Target};
use crate::dsl;
use msite_html::{text::visible_text, NodeId};
use msite_render::browser::{Browser, BrowserConfig, RenderResult};
use msite_render::Rect;

/// One selectable page object in the tool's live view.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectableObject {
    /// A stable selector for the object (id-based when possible).
    pub selector: String,
    /// Tag name.
    pub tag: String,
    /// On-page geometry at desktop resolution (what the admin clicks).
    pub rect: Rect,
    /// First words of the object's visible text, for the object list.
    pub preview: String,
}

/// The loaded page model backing the visual tool.
pub struct PageModel {
    url: String,
    render: RenderResult,
}

impl PageModel {
    /// Loads a page (already-fetched HTML) into the tool at the given
    /// desktop viewport width.
    pub fn load(url: &str, html: &str, viewport_width: u32) -> PageModel {
        let browser = Browser::launch(BrowserConfig {
            viewport_width,
            ..BrowserConfig::default()
        });
        PageModel {
            url: url.to_string(),
            render: browser.render_page(html, &[]),
        }
    }

    /// The page URL.
    pub fn url(&self) -> &str {
        &self.url
    }

    /// Total page height at the tool's viewport.
    pub fn page_height(&self) -> f32 {
        self.render.layout.page_height
    }

    /// Enumerates the selectable objects: elements with an `id` (stable
    /// selectors) plus top-level structural elements, each with geometry.
    /// Mirrors the highlight-on-hover list of the visual tool.
    pub fn selectable_objects(&self) -> Vec<SelectableObject> {
        let doc = &self.render.doc;
        let mut out = Vec::new();
        for node in doc.descendants(doc.root()) {
            let Some(element) = doc.data(node).as_element() else {
                continue;
            };
            let selector = match element.attr("id") {
                Some(id) if !id.is_empty() => format!("#{id}"),
                _ => continue,
            };
            let Some(rect) = self.render.layout.rect_of(node) else {
                continue;
            };
            if rect.w <= 0.0 || rect.h <= 0.0 {
                continue;
            }
            let mut preview = visible_text(doc, node);
            preview.truncate(60);
            out.push(SelectableObject {
                selector,
                tag: element.name().to_string(),
                rect,
                preview,
            });
        }
        out
    }

    /// Point-and-click selection: the innermost identified object whose
    /// box contains `(x, y)`.
    pub fn object_at(&self, x: f32, y: f32) -> Option<SelectableObject> {
        self.selectable_objects()
            .into_iter()
            .filter(|o| o.rect.contains(x, y))
            .min_by(|a, b| {
                (a.rect.w * a.rect.h)
                    .partial_cmp(&(b.rect.w * b.rect.h))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }

    /// Geometry of an arbitrary node (for tools building custom views).
    pub fn rect_of(&self, node: NodeId) -> Option<Rect> {
        self.render.layout.rect_of(node)
    }

    /// Starts building a spec for this page.
    pub fn start_spec(&self, page_id: &str) -> SpecBuilder {
        SpecBuilder {
            spec: AdaptationSpec::new(page_id, &self.url),
        }
    }
}

/// Accumulates the administrator's choices.
pub struct SpecBuilder {
    spec: AdaptationSpec,
}

impl SpecBuilder {
    /// Assigns attributes to a selected object.
    pub fn assign(mut self, selector: &str, attributes: Vec<Attribute>) -> SpecBuilder {
        self.spec.rules.push(crate::attributes::Rule {
            target: Target::Css(selector.to_string()),
            attributes,
        });
        self
    }

    /// Assigns attributes to an XPath-identified object.
    pub fn assign_xpath(mut self, xpath: &str, attributes: Vec<Attribute>) -> SpecBuilder {
        self.spec.rules.push(crate::attributes::Rule {
            target: Target::XPath(xpath.to_string()),
            attributes,
        });
        self
    }

    /// Adds a source filter.
    pub fn add_filter(mut self, filter: SourceFilter) -> SpecBuilder {
        self.spec.filters.push(filter);
        self
    }

    /// Configures (or disables) the entry snapshot.
    pub fn snapshot(mut self, snapshot: Option<crate::attributes::SnapshotSpec>) -> SpecBuilder {
        self.spec.snapshot = snapshot;
        self
    }

    /// The spec built so far.
    pub fn spec(&self) -> &AdaptationSpec {
        &self.spec
    }

    /// Finishes: returns the spec and the generated proxy program text —
    /// the tool's final "generate code" action.
    pub fn generate(self) -> (AdaptationSpec, String) {
        let script = dsl::to_script(&self.spec);
        (self.spec, script)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: &str = r#"<html><head><title>T</title></head><body style="margin:0">
<div id="header" style="height:50px">Site Header</div>
<div id="nav" style="height:30px"><a href="/a">A</a></div>
<div id="content" style="height:200px"><p>Body text for preview purposes</p>
  <span id="deep" style="height:10px">deep</span></div>
</body></html>"#;

    fn model() -> PageModel {
        PageModel::load("http://h/index.php", PAGE, 800)
    }

    #[test]
    fn selectable_objects_have_geometry() {
        let m = model();
        let objects = m.selectable_objects();
        let ids: Vec<&str> = objects.iter().map(|o| o.selector.as_str()).collect();
        assert!(ids.contains(&"#header"));
        assert!(ids.contains(&"#nav"));
        assert!(ids.contains(&"#content"));
        let header = objects.iter().find(|o| o.selector == "#header").unwrap();
        assert_eq!(header.rect.y, 0.0);
        assert_eq!(header.rect.h, 50.0);
        assert!(header.preview.contains("Site Header"));
    }

    #[test]
    fn point_and_click_picks_innermost() {
        let m = model();
        // Click into the header.
        let hit = m.object_at(10.0, 25.0).unwrap();
        assert_eq!(hit.selector, "#header");
        // Click below everything.
        assert!(m.object_at(10.0, 5000.0).is_none());
    }

    #[test]
    fn spec_builder_generates_program() {
        let m = model();
        let (spec, script) = m
            .start_spec("demo")
            .add_filter(SourceFilter::SetTitle {
                title: "Mobile".into(),
            })
            .assign(
                "#nav",
                vec![Attribute::Subpage {
                    id: "nav".into(),
                    title: "Navigation".into(),
                    ajax: false,
                    prerender: false,
                }],
            )
            .assign_xpath("//div[@id='header']", vec![Attribute::Remove])
            .generate();
        assert_eq!(spec.rules.len(), 2);
        assert!(script.contains("page demo \"http://h/index.php\""));
        assert!(script.contains("rule css \"#nav\""));
        assert!(script.contains("rule xpath \"//div[@id='header']\""));
        // The generated program round-trips.
        assert_eq!(dsl::parse_script(&script).unwrap(), spec);
    }

    #[test]
    fn snapshot_configurable() {
        let m = model();
        let builder = m.start_spec("demo").snapshot(None);
        assert!(builder.spec().snapshot.is_none());
    }
}
