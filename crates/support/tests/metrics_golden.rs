//! Golden test pinning the `/metrics` text exposition byte-for-byte:
//! stable `(name, labels)` ordering, exactly one `# TYPE` line per
//! metric name, label-value escaping, cumulative histogram buckets,
//! and no duplicate series — the scrape surface must not drift.

use msite_support::telemetry::MetricsRegistry;
use std::collections::HashSet;

type RegisterStep = Box<dyn Fn(&MetricsRegistry)>;

/// Registers a fixed mix of series. `reversed` flips the registration
/// order to prove the exposition sorts, not echoes, insertion order.
fn populate(registry: &MetricsRegistry, reversed: bool) {
    let mut steps: Vec<RegisterStep> = vec![
        Box::new(|r| r.counter("alpha_total", &[]).add(3)),
        Box::new(|r| {
            r.counter("request_total", &[("path", "/m/t/"), ("code", "200")])
                .add(7)
        }),
        Box::new(|r| {
            r.counter("request_total", &[("code", "404"), ("path", "/m/t/x")])
                .inc()
        }),
        Box::new(|r| {
            r.counter("tricky_total", &[("label", "quote\" slash\\ line\nend")])
                .add(2)
        }),
        Box::new(|r| r.gauge("depth", &[]).set(-4)),
        Box::new(|r| {
            let h = r.histogram("latency_micros", &[("stage", "dom")], &[10, 100, 1000]);
            for v in [5, 10, 11, 99, 5000] {
                h.observe(v);
            }
        }),
    ];
    if reversed {
        steps.reverse();
    }
    for step in steps {
        step(registry);
    }
}

const GOLDEN: &str = "\
# TYPE alpha_total counter
alpha_total 3
# TYPE depth gauge
depth -4
# TYPE latency_micros histogram
latency_micros_bucket{stage=\"dom\",le=\"10\"} 2
latency_micros_bucket{stage=\"dom\",le=\"100\"} 4
latency_micros_bucket{stage=\"dom\",le=\"1000\"} 4
latency_micros_bucket{stage=\"dom\",le=\"+Inf\"} 5
latency_micros_sum{stage=\"dom\"} 5125
latency_micros_count{stage=\"dom\"} 5
# TYPE request_total counter
request_total{code=\"200\",path=\"/m/t/\"} 7
request_total{code=\"404\",path=\"/m/t/x\"} 1
# TYPE tricky_total counter
tricky_total{label=\"quote\\\" slash\\\\ line\\nend\"} 2
";

#[test]
fn exposition_matches_golden_byte_for_byte() {
    let registry = MetricsRegistry::new();
    populate(&registry, false);
    assert_eq!(registry.render_text(), GOLDEN);
}

#[test]
fn exposition_is_insertion_order_independent_and_stable() {
    let forward = MetricsRegistry::new();
    populate(&forward, false);
    let backward = MetricsRegistry::new();
    populate(&backward, true);
    assert_eq!(forward.render_text(), backward.render_text());
    // Re-rendering the same registry is byte-stable.
    assert_eq!(forward.render_text(), forward.render_text());
}

#[test]
fn exposition_has_no_duplicate_series_and_one_type_line_per_name() {
    let registry = MetricsRegistry::new();
    populate(&registry, false);
    let text = registry.render_text();
    let mut series = HashSet::new();
    let mut typed = HashSet::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let name = rest.split(' ').next().unwrap();
            assert!(
                typed.insert(name.to_string()),
                "duplicate # TYPE for {name}"
            );
        } else {
            let (key, value) = line.rsplit_once(' ').expect("sample line");
            assert!(series.insert(key.to_string()), "duplicate series {key}");
            value.parse::<i64>().expect("integer sample value");
        }
    }
    // Every sample's metric name is covered by a # TYPE line.
    for key in &series {
        let name = key.split('{').next().unwrap();
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .unwrap_or(name);
        assert!(typed.contains(base), "sample {key} missing # TYPE {base}");
    }
}
