//! Property tests for the worker-pool layer: fan-out result ordering,
//! panic isolation, bounded-queue rejection, and counter conservation,
//! across randomized task counts, widths, and panic sets.

use msite_support::prop;
use msite_support::thread::{scope_fan_out, scope_fan_out_staggered, PoolConfig, WorkerPool};
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

#[test]
fn fan_out_preserves_task_order_at_any_width() {
    prop::check("fan-out result order", 64, 0x0F4A_0001, |g| {
        let tasks = g.range_usize(0, 24);
        let width = g.range_usize(1, 8);
        let seed = g.u64();
        let results =
            scope_fan_out_staggered(width, tasks, seed, Duration::from_micros(200), |i| i * 3);
        assert_eq!(results.len(), tasks);
        for (index, result) in results.into_iter().enumerate() {
            assert_eq!(result.expect("no task panics here"), index * 3);
        }
    });
}

#[test]
fn fan_out_isolates_panics_to_their_task() {
    prop::check("fan-out panic isolation", 48, 0x0F4A_0002, |g| {
        let tasks = g.range_usize(1, 16);
        let width = g.range_usize(1, 6);
        let panicking: HashSet<usize> = (0..tasks).filter(|_| g.bool()).collect();
        let results = scope_fan_out(width, tasks, |i| {
            if panicking.contains(&i) {
                panic!("task {i} exploded");
            }
            i
        });
        assert_eq!(results.len(), tasks);
        for (index, result) in results.into_iter().enumerate() {
            if panicking.contains(&index) {
                let err = result.expect_err("panicking task must yield Err");
                assert_eq!(err.task, index);
                assert_eq!(err.message, format!("task {index} exploded"));
            } else {
                assert_eq!(result.expect("healthy task must yield Ok"), index);
            }
        }
    });
}

#[test]
fn every_task_runs_exactly_once() {
    prop::check("fan-out exactly-once", 48, 0x0F4A_0003, |g| {
        let tasks = g.range_usize(0, 32);
        let width = g.range_usize(1, 8);
        let runs = AtomicUsize::new(0);
        let results = scope_fan_out(width, tasks, |_| {
            runs.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(results.len(), tasks);
        assert_eq!(runs.load(Ordering::SeqCst), tasks);
    });
}

#[test]
fn bounded_queue_rejects_exactly_the_overflow() {
    prop::check("bounded-queue rejection", 24, 0x0F4A_0004, |g| {
        let workers = g.range_usize(1, 3);
        let queue_depth = g.range_usize(1, 4);
        let extra = g.range_usize(1, 6);
        let pool = WorkerPool::new(PoolConfig {
            workers,
            queue_depth,
            name: "prop-pool".into(),
        });
        // Park every worker on a barrier so nothing drains the queue.
        let gate = Arc::new(Barrier::new(workers + 1));
        let parked = Arc::new(AtomicUsize::new(0));
        for _ in 0..workers {
            let gate = Arc::clone(&gate);
            let parked = Arc::clone(&parked);
            pool.execute(move || {
                parked.fetch_add(1, Ordering::SeqCst);
                gate.wait();
            });
        }
        while parked.load(Ordering::SeqCst) < workers {
            std::thread::yield_now();
        }
        // Now fill the queue exactly, then overflow it.
        let mut accepted = 0;
        let mut rejected = 0;
        for _ in 0..queue_depth + extra {
            match pool.try_execute(|| {}) {
                Ok(()) => accepted += 1,
                Err(_) => rejected += 1,
            }
        }
        assert_eq!(accepted, queue_depth);
        assert_eq!(rejected, extra);
        assert_eq!(pool.stats().rejected, extra as u64);
        // Release the workers; everything accepted must complete.
        gate.wait();
        pool.wait_idle();
        let stats = pool.stats();
        assert_eq!(stats.submitted, (workers + queue_depth) as u64);
        assert_eq!(stats.completed, stats.submitted);
        pool.shutdown();
    });
}

#[test]
fn pool_counters_conserve_under_mixed_panics() {
    prop::check("pool counter conservation", 16, 0x0F4A_0005, |g| {
        let workers = g.range_usize(1, 4);
        let jobs = g.range_usize(1, 24);
        let panics: HashSet<usize> = (0..jobs).filter(|_| g.bool()).collect();
        let pool = WorkerPool::new(PoolConfig {
            workers,
            queue_depth: jobs.max(1),
            name: "prop-panic".into(),
        });
        for i in 0..jobs {
            let boom = panics.contains(&i);
            pool.execute(move || {
                if boom {
                    panic!("job {i}");
                }
            });
        }
        pool.wait_idle();
        let stats = pool.stats();
        assert_eq!(stats.submitted, jobs as u64);
        assert_eq!(stats.completed, jobs as u64);
        assert_eq!(stats.panicked, panics.len() as u64);
        // Workers survived every panic: the pool still runs new jobs.
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = Arc::clone(&ran);
        pool.execute(move || {
            ran2.fetch_add(1, Ordering::SeqCst);
        });
        pool.wait_idle();
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        pool.shutdown();
    });
}

#[test]
fn pool_fan_out_matches_free_function_ordering() {
    prop::check("pool fan-out ordering", 24, 0x0F4A_0006, |g| {
        let tasks = g.range_usize(0, 20);
        let workers = g.range_usize(1, 4);
        let pool = WorkerPool::new(PoolConfig {
            workers,
            queue_depth: tasks.max(1),
            name: "prop-fan".into(),
        });
        let via_pool: Vec<usize> = pool
            .scope_fan_out(tasks, |i| i + 100)
            .into_iter()
            .map(|r| r.expect("no panics"))
            .collect();
        let reference: Vec<usize> = scope_fan_out(1, tasks, |i| i + 100)
            .into_iter()
            .map(|r| r.expect("no panics"))
            .collect();
        assert_eq!(via_pool, reference);
        pool.shutdown();
    });
}
