//! Byte-identity property gates for `msite_support::swar`.
//!
//! Every word-at-a-time routine must agree exactly with its naive
//! per-byte twin in `swar::scalar` on arbitrary byte strings — raw
//! bytes, not UTF-8, so non-character values and lone continuation
//! bytes are first-class inputs. Seeds are fixed: the same cases run
//! on every machine.

use msite_support::prop;
use msite_support::prop::Gen;
use msite_support::swar::{self, ByteSet};

/// Arbitrary bytes biased toward long homogeneous runs, so matches
/// land well past the 64-byte mark and word-boundary bookkeeping gets
/// exercised on every shape: empty, sub-word, exact multiples of 8,
/// and >64-byte runs with the needle at the very end.
fn bytes_with_runs(g: &mut Gen) -> Vec<u8> {
    let mut out = Vec::new();
    let segments = g.range_usize(0, 6);
    for _ in 0..segments {
        match g.range_u32(0, 3) {
            // A long run of one filler byte (can exceed 64).
            0 => {
                let b = g.u8();
                let len = g.range_usize(1, 100);
                out.extend(std::iter::repeat_n(b, len));
            }
            // A short fully-random stretch.
            1 => out.extend(g.vec(0, 16, |g| g.u8())),
            // HTML-ish text with occasional delimiters.
            _ => {
                let text = g.ascii_ws_string(24);
                out.extend_from_slice(text.as_bytes());
                if g.bool() {
                    out.push(*g.pick(b"<&\"> "));
                }
            }
        }
    }
    out
}

#[test]
fn find_byte_matches_scalar() {
    prop::check("swar::find_byte identity", 600, 0x5147_0001, |g| {
        let hay = bytes_with_runs(g);
        // Probe both a byte known to occur (when non-empty) and a
        // fully random needle.
        let needle = if !hay.is_empty() && g.bool() {
            hay[g.range_usize(0, hay.len())]
        } else {
            g.u8()
        };
        assert_eq!(
            swar::find_byte(&hay, needle),
            swar::scalar::find_byte(&hay, needle),
            "needle {needle:#x} in {} bytes",
            hay.len()
        );
    });
}

#[test]
fn find_any_of_matches_scalar() {
    prop::check("swar::find_any_of identity", 600, 0x5147_0002, |g| {
        let hay = bytes_with_runs(g);
        let members = g.vec(0, 5, |g| g.u8());
        let set = ByteSet::new(&members);
        assert_eq!(
            swar::find_any_of(&hay, &set),
            swar::scalar::find_any_of(&hay, &set),
            "members {members:?} in {} bytes",
            hay.len()
        );
        assert_eq!(
            set.skip_run(&hay),
            swar::scalar::find_any_of(&hay, &set).unwrap_or(hay.len())
        );
    });
}

#[test]
fn classify_table_matches_predicate() {
    prop::check("swar::ByteSet classify identity", 200, 0x5147_0003, |g| {
        // A random predicate over byte classes, rebuilt as a table.
        let threshold = g.u8();
        let parity = g.bool();
        let pred = |b: u8| (b >= threshold) ^ parity || b == b'<';
        let set = ByteSet::from_fn(pred);
        for b in 0..=255u8 {
            assert_eq!(set.contains(b), pred(b), "byte {b:#x}");
        }
        let hay = bytes_with_runs(g);
        assert_eq!(
            set.find_in(&hay),
            hay.iter().position(|&b| pred(b)),
            "threshold {threshold} parity {parity}"
        );
    });
}

#[test]
fn eq_ignore_case_matches_scalar_and_std() {
    prop::check("swar::eq_ignore_case identity", 600, 0x5147_0004, |g| {
        let a = bytes_with_runs(g);
        // Half the time compare against a case-flipped copy of `a`
        // (should be equal), half the time against unrelated bytes.
        let b: Vec<u8> = if g.bool() {
            a.iter()
                .map(|&x| {
                    if x.is_ascii_alphabetic() && g.bool() {
                        x ^ 0x20
                    } else {
                        x
                    }
                })
                .collect()
        } else {
            bytes_with_runs(g)
        };
        let expect = a.eq_ignore_ascii_case(&b);
        assert_eq!(swar::eq_ignore_case(&a, &b), expect);
        assert_eq!(swar::scalar::eq_ignore_case(&a, &b), expect);
    });
}

#[test]
fn common_prefix_len_matches_scalar() {
    prop::check("swar::common_prefix_len identity", 600, 0x5147_0005, |g| {
        let a = bytes_with_runs(g);
        // Derive `b` by copying a prefix of `a` then diverging, so
        // prefixes of every length (including far past 64) occur.
        let keep = g.range_usize(0, a.len() + 2).min(a.len());
        let mut b: Vec<u8> = a[..keep].to_vec();
        b.extend(g.vec(0, 20, |g| g.u8()));
        assert_eq!(
            swar::common_prefix_len(&a, &b),
            swar::scalar::common_prefix_len(&a, &b)
        );
        assert_eq!(swar::common_prefix_len(&a, &a), a.len());
    });
}

#[test]
fn lower_word_matches_lower_on_random_words() {
    prop::check("swar::lower_word identity", 600, 0x5147_0006, |g| {
        let w = g.u64();
        let bytes = w.to_le_bytes();
        let expect = u64::from_le_bytes(bytes.map(swar::scalar::lower));
        assert_eq!(swar::lower_word(w), expect, "word {w:#018x}");
        for b in bytes {
            assert_eq!(swar::lower(b), b.to_ascii_lowercase());
        }
    });
}
