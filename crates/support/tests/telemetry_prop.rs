//! Property tests for the telemetry layer: counter monotonicity under
//! concurrency, histogram bucket-count conservation, label-interning
//! idempotence, and span ring-buffer bounds, across randomized
//! workloads on the seeded `prop` runners.

use msite_support::prop;
use msite_support::telemetry::{MetricsRegistry, SpanRecord, Trace, TraceIdSeq, TraceLog};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn counters_are_monotonic_and_lossless_under_concurrency() {
    prop::check("counter monotonicity", 24, 0x7E1E_0001, |g| {
        let registry = Arc::new(MetricsRegistry::new());
        let counter = registry.counter("prop_events_total", &[]);
        let threads = g.range_usize(1, 8);
        let per_thread: Vec<Vec<u64>> = (0..threads)
            .map(|_| g.vec(0, 64, |g| g.range_u64(0, 100)))
            .collect();
        let expected: u64 = per_thread.iter().flatten().sum();

        // A reader polls concurrently with the writers: every observed
        // value must be >= the previous one (monotonicity is visible,
        // not just eventual).
        let stop = Arc::new(AtomicBool::new(false));
        let reader = {
            let counter = Arc::clone(&counter);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last = 0;
                while !stop.load(Ordering::Acquire) {
                    let now = counter.get();
                    assert!(now >= last, "counter went backwards: {last} -> {now}");
                    last = now;
                }
            })
        };
        std::thread::scope(|scope| {
            for increments in &per_thread {
                let counter = Arc::clone(&counter);
                scope.spawn(move || {
                    for &n in increments {
                        counter.add(n);
                    }
                });
            }
        });
        stop.store(true, Ordering::Release);
        reader.join().unwrap();

        assert_eq!(counter.get(), expected, "no increment may be lost");
        assert_eq!(
            registry.counter_value("prop_events_total", &[]),
            expected,
            "the registry view and the handle are the same atomic"
        );
    });
}

#[test]
fn fold_to_never_regresses_under_racing_folds() {
    prop::check("fold_to monotonicity", 32, 0x7E1E_0002, |g| {
        let registry = MetricsRegistry::new();
        let counter = registry.counter("prop_folded_total", &[]);
        let folds: Vec<u64> = g.vec(1, 48, |g| g.range_u64(0, 1_000));
        let max = folds.iter().copied().max().unwrap_or(0);
        std::thread::scope(|scope| {
            for chunk in folds.chunks(8) {
                let counter = Arc::clone(&counter);
                scope.spawn(move || {
                    for &v in chunk {
                        counter.fold_to(v);
                    }
                });
            }
        });
        assert_eq!(
            counter.get(),
            max,
            "racing folds must settle on the largest external total"
        );
    });
}

#[test]
fn histogram_conserves_bucket_counts_and_sum() {
    prop::check("histogram conservation", 32, 0x7E1E_0003, |g| {
        let registry = MetricsRegistry::new();
        // Random strictly-increasing bounds.
        let mut bounds: Vec<u64> = Vec::new();
        let mut next = 0;
        for _ in 0..g.range_usize(1, 8) {
            next += g.range_u64(1, 1_000);
            bounds.push(next);
        }
        let histogram = registry.histogram("prop_latency", &[], &bounds);
        let observations: Vec<Vec<u64>> = (0..g.range_usize(1, 6))
            .map(|_| g.vec(0, 200, |g| g.range_u64(0, 2 * next)))
            .collect();
        std::thread::scope(|scope| {
            for batch in &observations {
                let histogram = Arc::clone(&histogram);
                scope.spawn(move || {
                    for &v in batch {
                        histogram.observe(v);
                    }
                });
            }
        });

        let total: u64 = observations.iter().map(|b| b.len() as u64).sum();
        let counts = histogram.bucket_counts();
        assert_eq!(counts.len(), bounds.len() + 1, "one overflow bucket");
        assert_eq!(
            counts.iter().sum::<u64>(),
            total,
            "every observation lands in exactly one bucket"
        );
        assert_eq!(histogram.count(), total);
        assert_eq!(
            histogram.sum(),
            observations.iter().flatten().sum::<u64>(),
            "sum is conserved under concurrent observes"
        );
        // Each observation landed in the first bucket whose bound holds it.
        for (i, bound) in bounds.iter().enumerate() {
            let expected = observations
                .iter()
                .flatten()
                .filter(|&&v| v <= *bound && (i == 0 || v > bounds[i - 1]))
                .count() as u64;
            assert_eq!(counts[i], expected, "bucket {i} (le {bound})");
        }
    });
}

#[test]
fn label_interning_is_idempotent_and_order_insensitive() {
    prop::check("label interning", 64, 0x7E1E_0004, |g| {
        let registry = MetricsRegistry::new();
        // A random label set, registered repeatedly in random orders:
        // always the same series, counted once.
        let labels: Vec<(String, String)> = {
            let count = g.range_usize(0, 4);
            let mut seen = Vec::new();
            for i in 0..count {
                seen.push((format!("k{i}"), g.ascii_string(6)));
            }
            seen
        };
        let lookups = g.range_usize(1, 12);
        for _ in 0..lookups {
            let mut shuffled: Vec<(&str, &str)> = labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            // Fisher-Yates over the generator keeps the shuffle seeded.
            for i in (1..shuffled.len()).rev() {
                shuffled.swap(i, g.range_usize(0, i + 1));
            }
            registry.counter("prop_interned_total", &shuffled).inc();
        }
        assert_eq!(registry.series_count(), 1, "one series for one label set");
        let canonical: Vec<(&str, &str)> = labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        assert_eq!(
            registry.counter_value("prop_interned_total", &canonical),
            lookups as u64,
            "every lookup order resolved to the same atomic"
        );
    });
}

#[test]
fn span_ring_is_bounded_and_drops_oldest_first() {
    prop::check("span ring bounds", 48, 0x7E1E_0005, |g| {
        let capacity = g.range_usize(1, 64);
        let log = TraceLog::new(capacity);
        let pushed = g.range_usize(0, 160);
        for i in 0..pushed {
            log.push(SpanRecord {
                trace_id: i as u64 + 1,
                name: format!("span{i}"),
                start: Duration::from_micros(i as u64),
                elapsed: Duration::from_micros(1),
                fields: Vec::new(),
            });
        }
        assert!(log.len() <= capacity, "ring exceeded its bound");
        assert_eq!(log.len(), pushed.min(capacity));
        assert_eq!(
            log.dropped(),
            pushed.saturating_sub(capacity) as u64,
            "every eviction is counted"
        );
        // Survivors are exactly the newest `capacity` spans: the oldest
        // retained id is pushed - len + 1, the newest is pushed.
        if pushed > 0 {
            let oldest = (pushed - log.len() + 1) as u64;
            assert!(log.spans_for(pushed as u64).len() == 1);
            if oldest > 1 {
                assert!(log.spans_for(oldest - 1).is_empty(), "evicted span leaked");
            }
            assert_eq!(log.spans_for(oldest).len(), 1);
        }
    });
}

#[test]
fn trace_ids_are_deterministic_per_seed_and_never_zero() {
    prop::check("trace id determinism", 64, 0x7E1E_0006, |g| {
        let seed = g.u64();
        let count = g.range_usize(1, 64);
        let a = TraceIdSeq::new(seed);
        let b = TraceIdSeq::new(seed);
        let ids_a: Vec<u64> = (0..count).map(|_| a.next_id()).collect();
        let ids_b: Vec<u64> = (0..count).map(|_| b.next_id()).collect();
        assert_eq!(ids_a, ids_b, "same seed must replay the same ids");
        assert!(ids_a.iter().all(|&id| id != 0), "0 is the 'no trace' id");
        // Ids round-trip through the header encoding.
        for &id in &ids_a {
            let log = Arc::new(TraceLog::new(4));
            let trace = Trace::new(id, log);
            assert_eq!(Trace::parse_id(&trace.id_hex()), Some(id));
        }
    });
}
