//! # msite-support
//!
//! The hermetic support layer for the m.Site reproduction. Every crate
//! in the workspace builds fully offline: this crate supplies the small
//! slices of functionality the workspace previously pulled from external
//! crates, implemented over `std` only.
//!
//! - [`sync`] — non-poisoning [`Mutex`](sync::Mutex)/[`RwLock`](sync::RwLock)
//!   wrappers (the `parking_lot` calling convention over `std::sync`);
//! - [`bytes`] — [`Bytes`](bytes::Bytes), a cheaply cloneable shared byte
//!   buffer for response bodies and cached artifacts;
//! - [`json`] — a small JSON [`Value`](json::Value) with a
//!   parser/serializer and the [`ToJson`](json::ToJson)/
//!   [`FromJson`](json::FromJson) traits used for specs and reports;
//! - [`thread`] — scoped fan-out helpers over [`std::thread::scope`] and
//!   the bounded [`WorkerPool`](thread::WorkerPool) executor;
//! - [`prop`] — a deterministic, seed-driven property-test harness;
//! - [`swar`] — portable `u64`-lane SWAR byte scanning (delimiter
//!   search, branchless ASCII case folding, word-wide prefix compare)
//!   behind byte-identity property gates;
//! - [`benchkit`] — a warmup/iterations/percentiles timing harness with a
//!   criterion-style surface for the `benches/` targets;
//! - [`telemetry`] — the unified observability layer: a sharded
//!   [`MetricsRegistry`](telemetry::MetricsRegistry) with a stable text
//!   exposition, plus the [`Trace`](telemetry::Trace)/
//!   [`Span`](telemetry::Span) request-tracing API and its bounded
//!   [`TraceLog`](telemetry::TraceLog) span ring.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchkit;
pub mod bytes;
pub mod json;
pub mod prop;
pub mod swar;
pub mod sync;
pub mod telemetry;
pub mod thread;

pub use bytes::Bytes;
pub use json::{FromJson, JsonError, ToJson, Value};
