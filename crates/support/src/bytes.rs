//! A cheaply cloneable, immutable byte buffer.
//!
//! Response bodies and cached render artifacts are written once and then
//! shared across sessions and threads; [`Bytes`] makes every clone an
//! atomic reference-count bump instead of a copy.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice (copied once into shared storage).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Copies a slice into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data: data.into() }
    }
}

impl From<String> for Bytes {
    fn from(data: String) -> Self {
        Bytes {
            data: data.into_bytes().into(),
        }
    }
}

impl From<&str> for Bytes {
    fn from(data: &str) -> Self {
        Bytes {
            data: data.as_bytes().into(),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(data: &[u8; N]) -> Self {
        Bytes {
            data: data.as_slice().into(),
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.data == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &*self.data == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} B)", self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from("abc"), Bytes::from(vec![b'a', b'b', b'c']));
        assert_eq!(Bytes::from_static(b"xy"), Bytes::from("xy".to_string()));
    }

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![0u8; 1024]);
        let b = a.clone();
        assert!(std::ptr::eq(a.as_ref().as_ptr(), b.as_ref().as_ptr()));
    }

    #[test]
    fn slice_access() {
        let b = Bytes::from("hello");
        assert_eq!(b[0], b'h');
        assert_eq!(&b[1..3], b"el");
        assert!(b.starts_with(b"he"));
        assert_eq!(String::from_utf8_lossy(&b), "hello");
    }
}
