//! A small JSON document model with a strict parser and pretty printer.
//!
//! Adaptation specs, AJAX registries, and experiment reports serialize
//! through [`ToJson`]/[`FromJson`] impls over [`Value`]; the format is
//! plain RFC 8259 JSON, so output stays diffable and tool-readable.

use std::error::Error;
use std::fmt;

/// A parsed JSON value. Object members preserve insertion order so
/// serialized output is stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

/// A JSON parse or extraction error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description, including the byte offset for parse
    /// errors.
    pub message: String,
}

impl JsonError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl Error for JsonError {}

/// Serializes a value to JSON.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json_value(&self) -> Value;

    /// Pretty-printed JSON text (two-space indent).
    fn to_json_pretty(&self) -> String {
        self.to_json_value().to_pretty()
    }
}

/// Deserializes a value from JSON.
pub trait FromJson: Sized {
    /// Reconstructs `Self` from a parsed JSON value.
    fn from_json_value(value: &Value) -> Result<Self, JsonError>;

    /// Parses JSON text and reconstructs `Self`.
    fn from_json_str(text: &str) -> Result<Self, JsonError> {
        Self::from_json_value(&Value::parse(text)?)
    }
}

/// Builds an object value from `(key, value)` pairs.
pub fn obj<const N: usize>(fields: [(&str, Value); N]) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

impl Value {
    /// Parses JSON text. The entire input must be one JSON document.
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required object member: errors when missing.
    pub fn field(&self, key: &str) -> Result<&Value, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::new(format!("missing field `{key}`")))
    }

    /// Required typed member.
    pub fn req<T: FromJson>(&self, key: &str) -> Result<T, JsonError> {
        T::from_json_value(self.field(key)?)
    }

    /// Optional typed member (`null` and absence both mean `None`).
    pub fn opt<T: FromJson>(&self, key: &str) -> Result<Option<T>, JsonError> {
        match self.get(key) {
            None | Some(Value::Null) => Ok(None),
            Some(v) => Ok(Some(T::from_json_value(v)?)),
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric content, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Boolean content, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array contents, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Object members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Compact single-line serialization.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty two-space-indented serialization.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => write_number(out, *n),
            Value::Str(s) => write_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError::new(format!("{message} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let second = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined =
                                    0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(first)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        // Caller has consumed the `u`; pos sits on the first hex digit.
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

// ---- ToJson / FromJson for primitives ---------------------------------

impl ToJson for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl FromJson for Value {
    fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        Ok(value.clone())
    }
}

impl ToJson for String {
    fn to_json_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::new("expected string"))
    }
}

impl ToJson for str {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl ToJson for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        value
            .as_bool()
            .ok_or_else(|| JsonError::new("expected boolean"))
    }
}

macro_rules! json_number {
    ($($ty:ty),*) => {$(
        impl ToJson for $ty {
            fn to_json_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }

        impl FromJson for $ty {
            fn from_json_value(value: &Value) -> Result<Self, JsonError> {
                let n = value
                    .as_f64()
                    .ok_or_else(|| JsonError::new("expected number"))?;
                Ok(n as $ty)
            }
        }
    )*};
}

json_number!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_json_value(other)?)),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json_value).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        value
            .as_array()
            .ok_or_else(|| JsonError::new("expected array"))?
            .iter()
            .map(T::from_json_value)
            .collect()
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json_value(&self) -> Value {
        (*self).to_json_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basics() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse("-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(
            Value::parse("\"a\\nb\"").unwrap(),
            Value::Str("a\nb".into())
        );
        assert_eq!(
            Value::parse("[1, 2]").unwrap(),
            Value::Array(vec![Value::Num(1.0), Value::Num(2.0)])
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("tru").is_err());
        assert!(Value::parse("1 2").is_err());
        assert!(Value::parse("\"unterminated").is_err());
        assert!(Value::parse("not json at all").is_err());
    }

    #[test]
    fn round_trip_pretty_and_compact() {
        let v = obj([
            ("name", Value::Str("m.Site \"quoted\" \\ path".into())),
            ("count", Value::Num(42.0)),
            ("ratio", Value::Num(0.5)),
            ("flag", Value::Bool(false)),
            ("nothing", Value::Null),
            (
                "items",
                Value::Array(vec![Value::Str("a".into()), Value::Num(-3.0)]),
            ),
            ("empty", Value::Object(vec![])),
        ]);
        assert_eq!(Value::parse(&v.to_pretty()).unwrap(), v);
        assert_eq!(Value::parse(&v.to_compact()).unwrap(), v);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(
            Value::parse("\"\\u00e9\\uD83D\\uDE00\"").unwrap(),
            Value::Str("\u{e9}\u{1F600}".into())
        );
        let v = Value::Str("snowman \u{2603} and \u{1F600}".into());
        assert_eq!(Value::parse(&v.to_compact()).unwrap(), v);
    }

    #[test]
    fn typed_accessors() {
        let v = Value::parse("{\"a\": 3, \"b\": [\"x\"], \"c\": null}").unwrap();
        assert_eq!(v.req::<u32>("a").unwrap(), 3);
        assert_eq!(v.req::<Vec<String>>("b").unwrap(), vec!["x".to_string()]);
        assert_eq!(v.opt::<String>("c").unwrap(), None);
        assert_eq!(v.opt::<String>("missing").unwrap(), None);
        assert!(v.req::<String>("missing").is_err());
        assert!(v.req::<String>("a").is_err());
    }
}
