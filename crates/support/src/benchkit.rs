//! A small benchmarking harness: warmup, bounded sampling, percentile
//! reporting.
//!
//! The surface intentionally mirrors the criterion API the `benches/`
//! targets were written against (`Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, and the
//! [`criterion_group!`](crate::criterion_group)/
//! [`criterion_main!`](crate::criterion_main) macros), so benchmark
//! code reads the same while running entirely on `std`.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level benchmark driver. One per process; groups hang off it.
#[derive(Debug)]
pub struct Criterion {
    defaults: SamplingConfig,
}

#[derive(Debug, Clone, Copy)]
struct SamplingConfig {
    sample_size: usize,
    warmup_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            defaults: SamplingConfig {
                sample_size: 50,
                warmup_time: Duration::from_millis(150),
                measurement_time: Duration::from_secs(2),
            },
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n-- {name} --");
        BenchmarkGroup {
            group_name: name.to_string(),
            config: self.defaults,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.defaults, &mut routine);
    }
}

/// A group of benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    group_name: String,
    config: SamplingConfig,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.config.sample_size = samples.max(1);
        self
    }

    /// Bounds the total sampling time per benchmark.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.config.measurement_time = time;
        self
    }

    /// Bounds the warmup time per benchmark.
    pub fn warm_up_time(&mut self, time: Duration) -> &mut Self {
        self.config.warmup_time = time;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.group_name, id.label());
        run_benchmark(&label, self.config, &mut routine);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.group_name, id.label());
        run_benchmark(&label, self.config, &mut |b: &mut Bencher| {
            routine(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A benchmark id with a parameter, shown as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A parameterless id shown only by its parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.name.is_empty(), &self.parameter) {
            (false, Some(p)) => format!("{}/{}", self.name, p),
            (false, None) => self.name.clone(),
            (true, Some(p)) => p.clone(),
            (true, None) => String::new(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// Timing handle passed to benchmark routines.
#[derive(Debug)]
pub struct Bencher {
    config: SamplingConfig,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`: a warmup phase, then up to `sample_size` timed
    /// samples bounded by the group's measurement time.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let warmup_end = Instant::now() + self.config.warmup_time;
        let mut warmed = 0u32;
        while warmed < 3 || Instant::now() < warmup_end {
            black_box(routine());
            warmed += 1;
            if warmed >= 10_000 {
                break;
            }
        }

        self.samples.clear();
        let sampling_start = Instant::now();
        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if sampling_start.elapsed() > self.config.measurement_time {
                break;
            }
        }
    }
}

/// Summary statistics over one benchmark's samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Number of timed samples.
    pub samples: usize,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Median (p50).
    pub p50: Duration,
    /// 90th percentile.
    pub p90: Duration,
    /// 99th percentile.
    pub p99: Duration,
}

/// Computes summary statistics from raw samples.
pub fn summarize(samples: &[Duration]) -> Option<Stats> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let total: Duration = sorted.iter().sum();
    let at = |q: f64| {
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx]
    };
    Some(Stats {
        samples: sorted.len(),
        mean: total / sorted.len() as u32,
        p50: at(0.50),
        p90: at(0.90),
        p99: at(0.99),
    })
}

fn run_benchmark(label: &str, config: SamplingConfig, routine: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        config,
        samples: Vec::new(),
    };
    routine(&mut bencher);
    match summarize(&bencher.samples) {
        Some(stats) => println!(
            "{label:<44} mean {:>10}  p50 {:>10}  p90 {:>10}  p99 {:>10}  ({} samples)",
            fmt_duration(stats.mean),
            fmt_duration(stats.p50),
            fmt_duration(stats.p90),
            fmt_duration(stats.p99),
            stats.samples
        ),
        None => println!("{label:<44} (no samples: routine never called iter)"),
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function in the criterion style:
/// `criterion_group!(benches, bench_a, bench_b)` defines `fn benches()`
/// that runs each target against a fresh [`Criterion`](benchkit::Criterion).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::benchkit::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group
            .sample_size(10)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(1));
        let mut ran = 0u64;
        group.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box(ran)
            })
        });
        group.finish();
        assert!(ran > 10);
    }

    #[test]
    fn summarize_percentiles() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        let stats = summarize(&samples).unwrap();
        assert_eq!(stats.samples, 100);
        assert_eq!(stats.p50, Duration::from_micros(51));
        assert_eq!(stats.p90, Duration::from_micros(90));
        assert_eq!(stats.p99, Duration::from_micros(99));
        assert!(stats.mean >= Duration::from_micros(50));
        assert!(summarize(&[]).is_none());
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("size", 42).label(), "size/42");
        assert_eq!(BenchmarkId::from("plain").label(), "plain");
        assert_eq!(BenchmarkId::from_parameter(7).label(), "7");
    }
}
