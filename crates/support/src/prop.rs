//! A deterministic, seed-driven property-test harness.
//!
//! Each property runs a fixed number of cases from a fixed seed, so a
//! test binary produces the identical case sequence on every machine
//! and every run — no regression files, no network, no global state.
//! Inputs are drawn from a [`Gen`] (a SplitMix64 stream); assertions
//! are ordinary `assert!`s. When a case fails, the harness reports the
//! case index and per-case seed before propagating the panic, so the
//! failure reproduces by construction.
//!
//! ```
//! use msite_support::prop;
//!
//! prop::check("addition commutes", 64, 0xC0FFEE, |g| {
//!     let (a, b) = (g.u32() / 2, g.u32() / 2);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// A deterministic pseudo-random value source (SplitMix64).
#[derive(Debug, Clone)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Gen { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `u64`.
    pub fn u64(&mut self) -> u64 {
        self.next()
    }

    /// A uniform `u32`.
    pub fn u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    /// A uniform `u8`.
    pub fn u8(&mut self) -> u8 {
        (self.next() >> 56) as u8
    }

    /// A uniform `bool`.
    pub fn bool(&mut self) -> bool {
        self.next() & 1 == 1
    }

    /// A uniform `u64` in `[lo, hi)`. Panics when the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next() % (hi - lo)
    }

    /// A uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// A uniform `u32` in `[lo, hi)`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(lo as u64, hi as u64) as u32
    }

    /// A uniform `u8` in `[lo, hi)`.
    pub fn range_u8(&mut self, lo: u8, hi: u8) -> u8 {
        self.range_u64(lo as u64, hi as u64) as u8
    }

    /// A uniform `u16` in `[lo, hi)`.
    pub fn range_u16(&mut self, lo: u16, hi: u16) -> u16 {
        self.range_u64(lo as u64, hi as u64) as u16
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform `f32` in `[lo, hi)`.
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (self.unit_f64() as f32) * (hi - lo)
    }

    /// A uniform pick from a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range_usize(0, items.len())]
    }

    /// `Some(make(self))` half the time, `None` the other half.
    pub fn option<T>(&mut self, make: impl FnOnce(&mut Gen) -> T) -> Option<T> {
        if self.bool() {
            Some(make(self))
        } else {
            None
        }
    }

    /// A vector with a length in `[min_len, max_len]`.
    pub fn vec<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut make: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let len = self.range_usize(min_len, max_len + 1);
        (0..len).map(|_| make(self)).collect()
    }

    /// A string of chars drawn from `charset`, length in
    /// `[min_len, max_len]`.
    pub fn string_from(&mut self, charset: &str, min_len: usize, max_len: usize) -> String {
        let chars: Vec<char> = charset.chars().collect();
        let len = self.range_usize(min_len, max_len + 1);
        (0..len).map(|_| *self.pick(&chars)).collect()
    }

    /// Printable-ASCII string (`' '..='~'`), length in `[0, max_len]`.
    pub fn ascii_string(&mut self, max_len: usize) -> String {
        let len = self.range_usize(0, max_len + 1);
        (0..len)
            .map(|_| self.range_u8(b' ', b'~' + 1) as char)
            .collect()
    }

    /// Printable-ASCII plus `\n` and `\t`, length in `[0, max_len]`.
    pub fn ascii_ws_string(&mut self, max_len: usize) -> String {
        let len = self.range_usize(0, max_len + 1);
        (0..len)
            .map(|_| match self.range_u32(0, 20) {
                0 => '\n',
                1 => '\t',
                _ => self.range_u8(b' ', b'~' + 1) as char,
            })
            .collect()
    }

    /// An identifier matching `[a-z][a-z0-9_]{0,max_tail}`.
    pub fn ident(&mut self, max_tail: usize) -> String {
        let mut out = String::new();
        out.push(self.range_u8(b'a', b'z' + 1) as char);
        let tail = self.range_usize(0, max_tail + 1);
        for _ in 0..tail {
            out.push(match self.range_u32(0, 37) {
                0..=25 => (b'a' + self.range_u8(0, 26)) as char,
                26..=35 => (b'0' + self.range_u8(0, 10)) as char,
                _ => '_',
            });
        }
        out
    }

    /// Arbitrary non-control Unicode scalars, length in `[0, max_len]`.
    pub fn unicode_string(&mut self, max_len: usize) -> String {
        let len = self.range_usize(0, max_len + 1);
        (0..len).map(|_| self.unicode_char()).collect()
    }

    fn unicode_char(&mut self) -> char {
        loop {
            // Bias toward the BMP so common paths get dense coverage,
            // with occasional astral-plane scalars.
            let code = if self.range_u32(0, 8) == 0 {
                self.range_u32(0x1_0000, 0x11_0000)
            } else {
                self.range_u32(0x20, 0x1_0000)
            };
            if let Some(c) = char::from_u32(code) {
                if !c.is_control() {
                    return c;
                }
            }
        }
    }
}

/// Runs `cases` deterministic cases of `property`. On failure, reports
/// the property name, failing case index, and that case's seed (usable
/// directly with [`Gen::new`]) before re-panicking.
pub fn check(name: &str, cases: u32, seed: u64, mut property: impl FnMut(&mut Gen)) {
    for case in 0..cases {
        let case_seed = case_seed(seed, case);
        let mut gen = Gen::new(case_seed);
        let result = catch_unwind(AssertUnwindSafe(|| property(&mut gen)));
        if let Err(panic) = result {
            eprintln!(
                "property `{name}` failed at case {case}/{cases} \
                 (case seed {case_seed:#018x}, base seed {seed:#x})"
            );
            resume_unwind(panic);
        }
    }
}

fn case_seed(seed: u64, case: u32) -> u64 {
    // One SplitMix64 step over (seed, case) decorrelates neighboring
    // cases while keeping the mapping pure.
    let mut z = seed ^ ((case as u64) << 32 | case as u64);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_runs() {
        let mut a = Vec::new();
        check("collect", 10, 42, |g| a.push(g.u64()));
        let mut b = Vec::new();
        check("collect", 10, 42, |g| b.push(g.u64()));
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        // Cases draw from distinct streams.
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn ranges_respect_bounds() {
        check("bounds", 200, 7, |g| {
            let v = g.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let f = g.range_f32(0.1, 1.0);
            assert!((0.1..1.0).contains(&f));
            let u = g.unit_f64();
            assert!((0.0..1.0).contains(&u));
        });
    }

    #[test]
    fn string_generators_match_charsets() {
        check("strings", 100, 11, |g| {
            assert!(g.ascii_string(24).chars().all(|c| (' '..='~').contains(&c)));
            let id = g.ident(10);
            assert!(id.chars().next().unwrap().is_ascii_lowercase());
            assert!(id.len() <= 11);
            assert!(id
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
            assert!(g.unicode_string(16).chars().all(|c| !c.is_control()));
            let s = g.string_from("ab", 1, 3);
            assert!(!s.is_empty() && s.len() <= 3);
            assert!(s.chars().all(|c| c == 'a' || c == 'b'));
        });
    }

    #[test]
    fn failure_is_reported_and_propagated() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            check("always fails", 5, 1, |_| panic!("expected"));
        }));
        assert!(caught.is_err());
    }
}
