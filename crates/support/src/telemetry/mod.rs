//! Unified observability: a sharded metrics registry and a per-request
//! trace/span API, zero-dependency and cheap enough for every hot path.
//!
//! The paper evaluates m.Site almost entirely through measurement —
//! per-stage adaptation latency (Fig. 6/7), render-cache effectiveness,
//! CPU overhead on a live deployment — so the serving path itself must
//! be observable. Two pieces provide that:
//!
//! - [`MetricsRegistry`] ([`metrics`]): monotonic [`Counter`]s,
//!   [`Gauge`]s, and fixed-bucket [`Histogram`]s. A series (name +
//!   label set) is interned exactly once; callers hold an
//!   `Arc` handle and the hot path is a single atomic op — no lock, no
//!   hash lookup. The registry renders a stable text exposition for
//!   `GET /metrics` scrapes.
//! - [`Trace`]/[`Span`] ([`trace`]): each proxy request gets a
//!   seeded-deterministic trace id; pipeline stages, cache flights,
//!   resilience events, and worker-pool hops record timed spans with
//!   structured fields into a bounded [`TraceLog`] ring, recoverable
//!   per request via `GET /trace/<id>`.
//!
//! The [`Telemetry`] handle bundles one registry with one trace log so
//! a proxy, its HTTP server, and its resilience layer can publish into
//! the same place — the existing stat structs (`ProxyStats`,
//! `ServerStats`, `ResilienceStats`) become *views* over the registry,
//! so counters can no longer drift apart.
//!
//! ```
//! use msite_support::telemetry::Telemetry;
//!
//! let telemetry = Telemetry::new();
//! let requests = telemetry.metrics.counter("requests_total", &[]);
//! requests.inc();
//! assert!(telemetry.metrics.render_text().contains("requests_total 1"));
//! ```

pub mod metrics;
pub mod trace;

pub use metrics::{
    Counter, Gauge, Histogram, MetricsRegistry, SeriesSnapshot, LATENCY_MICROS_BOUNDS,
};
pub use trace::{EnteredTrace, Span, SpanRecord, Trace, TraceIdSeq, TraceLog};

use std::sync::Arc;

/// Response header carrying the request's trace id, so any client can
/// fetch the request's spans from `GET /trace/<id>`.
pub const TRACE_HEADER: &str = "x-msite-trace";

/// One registry plus one span ring: everything a serving stack (proxy,
/// HTTP server, resilience layer) publishes, shareable by `Clone`.
#[derive(Debug, Clone)]
pub struct Telemetry {
    /// The metrics registry scraped by `GET /metrics`.
    pub metrics: Arc<MetricsRegistry>,
    /// The recent-span ring served by `GET /trace/<id>`.
    pub trace_log: Arc<TraceLog>,
}

impl Telemetry {
    /// A fresh registry and a trace ring with the default capacity
    /// ([`TraceLog::DEFAULT_CAPACITY`] completed spans).
    pub fn new() -> Telemetry {
        Telemetry {
            metrics: Arc::new(MetricsRegistry::new()),
            trace_log: Arc::new(TraceLog::new(TraceLog::DEFAULT_CAPACITY)),
        }
    }

    /// A telemetry handle with an explicit span-ring capacity.
    pub fn with_trace_capacity(capacity: usize) -> Telemetry {
        Telemetry {
            metrics: Arc::new(MetricsRegistry::new()),
            trace_log: Arc::new(TraceLog::new(capacity)),
        }
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}
