//! Sharded metrics registry: counters, gauges, fixed-bucket histograms.
//!
//! Registration interns a series (name + sorted label set) exactly once
//! and hands back an `Arc` handle; every subsequent update is a single
//! atomic operation with no lock and no hash lookup. The registry map
//! itself is sharded by series-key hash so even registration under
//! concurrency rarely contends.
//!
//! The text exposition ([`MetricsRegistry::render_text`]) is
//! deliberately stable: series are sorted by `(name, labels)`, each
//! metric name gets exactly one `# TYPE` line, label values are
//! escaped, and a given series can appear at most once — golden tests
//! pin this shape so the scrape surface cannot silently drift.

use crate::sync::RwLock;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

const SHARDS: usize = 8;

/// A monotonic counter. Cloning the `Arc` handle is the intended way
/// to share it; all updates are relaxed atomics.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Fold an externally-maintained *cumulative* total into this
    /// counter: the counter becomes `max(current, n)`. Idempotent —
    /// folding the same total twice does not double-count — which is
    /// exactly what a periodic "copy the server's lifetime totals into
    /// the proxy's registry" sync needs.
    pub fn fold_to(&self, n: u64) {
        self.value.fetch_max(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (queue length, live
/// sessions, configured capacity).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Set the gauge to an absolute value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative via [`Gauge::sub`]).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`.
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram over `u64` observations (unit-agnostic; by
/// convention names carry a `_micros` suffix when observing
/// microseconds).
///
/// Buckets are *non-cumulative* internally — `buckets[i]` counts
/// observations in `(bounds[i-1], bounds[i]]`, with a final overflow
/// bucket — so the conservation law `sum(buckets) == count` holds
/// exactly and is property-tested. The exposition renders the
/// conventional cumulative `le` form.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn observe(&self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The configured bucket upper bounds (exclusive of the implicit
    /// `+Inf` overflow bucket).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket (non-cumulative) counts, one entry per bound plus
    /// the overflow bucket. `sum(bucket_counts()) == count()`.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// Default bucket bounds for latency histograms in microseconds:
/// 50µs … 5s in roughly 1-2.5-5 steps.
pub const LATENCY_MICROS_BOUNDS: &[u64] = &[
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000,
];

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SeriesKey {
    name: String,
    labels: Vec<(String, String)>,
}

#[derive(Debug, Clone)]
enum Series {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Series {
    fn type_name(&self) -> &'static str {
        match self {
            Series::Counter(_) => "counter",
            Series::Gauge(_) => "gauge",
            Series::Histogram(_) => "histogram",
        }
    }
}

/// A point-in-time view of one registered series, for programmatic
/// inspection (tests, health summaries).
#[derive(Debug, Clone)]
pub struct SeriesSnapshot {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// `"counter"`, `"gauge"`, or `"histogram"`.
    pub kind: &'static str,
    /// Counter value, gauge value (as u64-wrapped i64 would lose sign,
    /// so gauges report via [`SeriesSnapshot::gauge`]), or histogram
    /// count.
    pub value: u64,
    /// Signed value for gauges; 0 for other kinds.
    pub gauge: i64,
}

/// The sharded series registry. See the module docs for the interning
/// and hot-path contract.
#[derive(Debug)]
pub struct MetricsRegistry {
    shards: Vec<RwLock<HashMap<SeriesKey, Series>>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    fn key(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
        assert!(valid_name(name), "invalid metric name: {name:?}");
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| {
                assert!(valid_name(k), "invalid label name: {k:?}");
                (k.to_string(), v.to_string())
            })
            .collect();
        labels.sort();
        labels.dedup_by(|a, b| a.0 == b.0);
        SeriesKey {
            name: name.to_string(),
            labels,
        }
    }

    fn shard_of(key: &SeriesKey) -> usize {
        // FNV-1a over the name + label pairs; stable across runs.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(key.name.as_bytes());
        for (k, v) in &key.labels {
            eat(b"\0");
            eat(k.as_bytes());
            eat(b"\0");
            eat(v.as_bytes());
        }
        (h as usize) % SHARDS
    }

    fn intern<F>(&self, key: SeriesKey, make: F) -> Series
    where
        F: FnOnce() -> Series,
    {
        let shard = &self.shards[Self::shard_of(&key)];
        if let Some(existing) = shard.read().get(&key) {
            return existing.clone();
        }
        let mut map = shard.write();
        map.entry(key).or_insert_with(make).clone()
    }

    /// Intern (or fetch) a counter series. Panics if the same series
    /// was already registered as a different type.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = Self::key(name, labels);
        match self.intern(key, || Series::Counter(Arc::new(Counter::default()))) {
            Series::Counter(c) => c,
            other => panic!(
                "series {name:?} already registered as {}",
                other.type_name()
            ),
        }
    }

    /// Intern (or fetch) a gauge series.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = Self::key(name, labels);
        match self.intern(key, || Series::Gauge(Arc::new(Gauge::default()))) {
            Series::Gauge(g) => g,
            other => panic!(
                "series {name:?} already registered as {}",
                other.type_name()
            ),
        }
    }

    /// Intern (or fetch) a histogram series with the given bucket
    /// bounds. Panics on a type mismatch or if re-registered with
    /// different bounds.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[u64]) -> Arc<Histogram> {
        let key = Self::key(name, labels);
        match self.intern(key, || Series::Histogram(Arc::new(Histogram::new(bounds)))) {
            Series::Histogram(h) => {
                assert!(
                    h.bounds() == bounds,
                    "series {name:?} already registered with different bounds"
                );
                h
            }
            other => panic!(
                "series {name:?} already registered as {}",
                other.type_name()
            ),
        }
    }

    /// Value of a counter series, or 0 if it was never registered.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let key = Self::key(name, labels);
        match self.shards[Self::shard_of(&key)].read().get(&key) {
            Some(Series::Counter(c)) => c.get(),
            _ => 0,
        }
    }

    /// Sum of every counter series with this name, across all label
    /// sets — e.g. total errors regardless of `reason`.
    pub fn counter_sum(&self, name: &str) -> u64 {
        let mut total = 0;
        for shard in &self.shards {
            for (key, series) in shard.read().iter() {
                if key.name == name {
                    if let Series::Counter(c) = series {
                        total += c.get();
                    }
                }
            }
        }
        total
    }

    /// Value of a gauge series, or 0 if never registered.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> i64 {
        let key = Self::key(name, labels);
        match self.shards[Self::shard_of(&key)].read().get(&key) {
            Some(Series::Gauge(g)) => g.get(),
            _ => 0,
        }
    }

    /// Number of distinct interned series.
    pub fn series_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Point-in-time snapshots of every series, sorted by
    /// `(name, labels)`.
    pub fn snapshot(&self) -> Vec<SeriesSnapshot> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for (key, series) in shard.read().iter() {
                let (kind, value, gauge) = match series {
                    Series::Counter(c) => ("counter", c.get(), 0),
                    Series::Gauge(g) => ("gauge", 0, g.get()),
                    Series::Histogram(h) => ("histogram", h.count(), 0),
                };
                out.push(SeriesSnapshot {
                    name: key.name.clone(),
                    labels: key.labels.clone(),
                    kind,
                    value,
                    gauge,
                });
            }
        }
        out.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        out
    }

    /// Render the Prometheus-style text exposition: one `# TYPE` line
    /// per metric name, series sorted by `(name, labels)`, label
    /// values escaped (`\` → `\\`, `"` → `\"`, newline → `\n`),
    /// histograms expanded into cumulative `_bucket{le=...}` series
    /// plus `_sum` and `_count`.
    pub fn render_text(&self) -> String {
        // Collect (key, series) pairs out of the shards, then sort.
        let mut entries: Vec<(SeriesKey, Series)> = Vec::new();
        for shard in &self.shards {
            for (key, series) in shard.read().iter() {
                entries.push((key.clone(), series.clone()));
            }
        }
        entries.sort_by(|a, b| (&a.0.name, &a.0.labels).cmp(&(&b.0.name, &b.0.labels)));

        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for (key, series) in &entries {
            if last_name != Some(key.name.as_str()) {
                let _ = writeln!(out, "# TYPE {} {}", key.name, series.type_name());
                last_name = Some(key.name.as_str());
            }
            match series {
                Series::Counter(c) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        key.name,
                        render_labels(&key.labels, &[]),
                        c.get()
                    );
                }
                Series::Gauge(g) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        key.name,
                        render_labels(&key.labels, &[]),
                        g.get()
                    );
                }
                Series::Histogram(h) => {
                    let counts = h.bucket_counts();
                    let mut cumulative = 0u64;
                    for (i, bound) in h.bounds().iter().enumerate() {
                        cumulative += counts[i];
                        let le = bound.to_string();
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            key.name,
                            render_labels(&key.labels, &[("le", &le)]),
                            cumulative
                        );
                    }
                    cumulative += counts[h.bounds().len()];
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        key.name,
                        render_labels(&key.labels, &[("le", "+Inf")]),
                        cumulative
                    );
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        key.name,
                        render_labels(&key.labels, &[]),
                        h.sum()
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        key.name,
                        render_labels(&key.labels, &[]),
                        h.count()
                    );
                }
            }
        }
        out
    }
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn render_labels(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    for (k, v) in extra {
        parts.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    format!("{{{}}}", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_interned_once() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("hits_total", &[("shard", "0")]);
        let b = reg.counter("hits_total", &[("shard", "0")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(reg.counter_value("hits_total", &[("shard", "0")]), 3);
        assert_eq!(reg.series_count(), 1);
    }

    #[test]
    fn label_order_does_not_matter() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x_total", &[("a", "1"), ("b", "2")]);
        let b = reg.counter("x_total", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
        assert_eq!(reg.series_count(), 1);
    }

    #[test]
    fn fold_to_is_idempotent_and_monotonic() {
        let c = Counter::default();
        c.fold_to(3);
        c.fold_to(3);
        assert_eq!(c.get(), 3);
        c.fold_to(7);
        assert_eq!(c.get(), 7);
        c.fold_to(5);
        assert_eq!(c.get(), 7);
    }

    #[test]
    fn histogram_conservation() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_micros", &[], &[10, 100, 1000]);
        for v in [1, 10, 11, 100, 5000, 0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 6);
        assert_eq!(h.bucket_counts(), vec![3, 2, 0, 1]);
        assert_eq!(h.sum(), 1 + 10 + 11 + 100 + 5000);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("mixed", &[]);
        let _ = reg.gauge("mixed", &[]);
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let reg = Arc::new(MetricsRegistry::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let reg = Arc::clone(&reg);
            handles.push(thread::spawn(move || {
                let c = reg.counter("spin_total", &[]);
                for _ in 0..10_000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.counter_value("spin_total", &[]), 80_000);
    }

    #[test]
    fn exposition_escapes_and_orders() {
        let reg = MetricsRegistry::new();
        reg.counter("b_total", &[("k", "line\nbreak\"quote\\slash")])
            .inc();
        reg.counter("a_total", &[]).add(5);
        let text = reg.render_text();
        let a_pos = text.find("a_total 5").unwrap();
        let b_pos = text.find("b_total{").unwrap();
        assert!(a_pos < b_pos);
        assert!(text.contains("k=\"line\\nbreak\\\"quote\\\\slash\""));
    }
}
