//! Per-request tracing: seeded-deterministic trace ids, timed spans
//! with structured fields, and a bounded ring of recent spans.
//!
//! A [`Trace`] names one proxy request; [`Trace::span`] opens a timed
//! [`Span`] that records itself into the shared [`TraceLog`] when
//! finished (or dropped). Layers that cannot take a trace parameter
//! without API churn — the resilience stack, the cache flight machinery
//! — pick up the active trace from a thread-local set by
//! [`Trace::enter`], so spans still land on the right request.
//!
//! Trace ids come from [`TraceIdSeq`]: `splitmix(seed, n)` over a
//! monotonic sequence, so a proxy configured with a fixed seed hands
//! out the same ids in the same order on every run — tests can assert
//! on them.

use crate::sync::Mutex;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One completed span: which trace it belongs to, what it measured,
/// when it started (relative to the log's epoch), how long it took,
/// and any structured fields attached along the way.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Trace id the span belongs to.
    pub trace_id: u64,
    /// Span name, e.g. `"stage.dom"` or `"cache.flight"`.
    pub name: String,
    /// Start offset relative to the owning [`TraceLog`]'s epoch.
    pub start: Duration,
    /// Wall-clock duration of the span.
    pub elapsed: Duration,
    /// Structured key/value fields, in attachment order.
    pub fields: Vec<(String, String)>,
}

impl SpanRecord {
    /// Render as a JSON object (for `GET /trace/<id>`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"trace\":\"{:016x}\",\"name\":\"{}\",\"start_micros\":{},\"elapsed_micros\":{},\"fields\":{{",
            self.trace_id,
            json_escape(&self.name),
            self.start.as_micros(),
            self.elapsed.as_micros(),
        );
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
        }
        out.push_str("}}");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A bounded ring buffer of recently completed spans. When full, the
/// oldest spans are evicted and counted in [`TraceLog::dropped`].
#[derive(Debug)]
pub struct TraceLog {
    epoch: Instant,
    capacity: usize,
    ring: Mutex<VecDeque<SpanRecord>>,
    dropped: AtomicU64,
}

impl TraceLog {
    /// Default ring capacity (completed spans, not traces).
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// A ring holding at most `capacity` completed spans (min 1).
    pub fn new(capacity: usize) -> TraceLog {
        TraceLog {
            epoch: Instant::now(),
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// The instant all span start offsets are relative to.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Spans evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of spans currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Push a completed span, evicting the oldest if at capacity.
    pub fn push(&self, record: SpanRecord) {
        let mut ring = self.ring.lock();
        if ring.len() >= self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(record);
    }

    /// Record a span from raw parts: `started` is an absolute instant
    /// (clamped to the epoch if earlier).
    pub fn record_raw(
        &self,
        trace_id: u64,
        name: &str,
        started: Instant,
        elapsed: Duration,
        fields: Vec<(String, String)>,
    ) {
        let start = started.saturating_duration_since(self.epoch);
        self.push(SpanRecord {
            trace_id,
            name: name.to_string(),
            start,
            elapsed,
            fields,
        });
    }

    /// All retained spans for one trace, oldest first.
    pub fn spans_for(&self, trace_id: u64) -> Vec<SpanRecord> {
        self.ring
            .lock()
            .iter()
            .filter(|r| r.trace_id == trace_id)
            .cloned()
            .collect()
    }
}

/// `splitmix64(seed + index)` — same generator family as
/// `msite_support::prop`, duplicated here so telemetry stays
/// self-contained.
fn splitmix(seed: u64, index: u64) -> u64 {
    let mut z = seed.wrapping_add(index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic trace-id source: the `n`-th id is `splitmix(seed, n)`,
/// so a fixed-seed proxy issues a reproducible id stream.
#[derive(Debug)]
pub struct TraceIdSeq {
    seed: u64,
    next: AtomicU64,
}

impl TraceIdSeq {
    /// A sequence derived from `seed`.
    pub fn new(seed: u64) -> TraceIdSeq {
        TraceIdSeq {
            seed,
            next: AtomicU64::new(0),
        }
    }

    /// The next trace id.
    pub fn next_id(&self) -> u64 {
        let n = self.next.fetch_add(1, Ordering::Relaxed);
        // Avoid id 0, which reads as "no trace" in a few places.
        match splitmix(self.seed, n) {
            0 => 1,
            id => id,
        }
    }
}

struct TraceInner {
    id: u64,
    log: Arc<TraceLog>,
}

impl std::fmt::Debug for TraceInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trace")
            .field("id", &format_args!("{:016x}", self.id))
            .finish()
    }
}

thread_local! {
    static CURRENT: RefCell<Vec<Trace>> = const { RefCell::new(Vec::new()) };
}

/// A handle naming one request's trace. Cheap to clone; all clones
/// share the id and the destination [`TraceLog`].
#[derive(Debug, Clone)]
pub struct Trace {
    inner: Arc<TraceInner>,
}

impl Trace {
    /// A trace with an explicit id, recording into `log`.
    pub fn new(id: u64, log: Arc<TraceLog>) -> Trace {
        Trace {
            inner: Arc::new(TraceInner { id, log }),
        }
    }

    /// The trace id.
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// The id as the 16-hex-digit form used in `x-msite-trace` headers
    /// and `/trace/<id>` URLs.
    pub fn id_hex(&self) -> String {
        format!("{:016x}", self.inner.id)
    }

    /// Parse an id in the form produced by [`Trace::id_hex`].
    pub fn parse_id(s: &str) -> Option<u64> {
        if s.is_empty() || s.len() > 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok()
    }

    /// The log this trace records into.
    pub fn log(&self) -> &Arc<TraceLog> {
        &self.inner.log
    }

    /// Open a timed span; it records itself when finished or dropped.
    pub fn span(&self, name: &str) -> Span {
        Span {
            trace: self.clone(),
            name: name.to_string(),
            started: Instant::now(),
            fields: Vec::new(),
            finished: false,
        }
    }

    /// Record a span directly from a measured duration (for callers
    /// that already timed the work, e.g. pipeline stage reports).
    pub fn record(&self, name: &str, elapsed: Duration, fields: Vec<(String, String)>) {
        let started = Instant::now();
        self.inner
            .log
            .record_raw(self.inner.id, name, started, elapsed, fields);
    }

    /// Install this trace as the thread's current trace for the life
    /// of the returned guard. Guards nest (a stack), so re-entrant
    /// handling is safe.
    pub fn enter(&self) -> EnteredTrace {
        CURRENT.with(|stack| stack.borrow_mut().push(self.clone()));
        EnteredTrace { _priv: () }
    }

    /// The innermost trace entered on this thread, if any.
    pub fn current() -> Option<Trace> {
        CURRENT.with(|stack| stack.borrow().last().cloned())
    }
}

/// Guard returned by [`Trace::enter`]; pops the thread-local stack on
/// drop.
#[derive(Debug)]
pub struct EnteredTrace {
    _priv: (),
}

impl Drop for EnteredTrace {
    fn drop(&mut self) {
        CURRENT.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// An in-flight timed span. Finishes (records into the trace's log)
/// explicitly via [`Span::finish`] or implicitly on drop.
#[derive(Debug)]
pub struct Span {
    trace: Trace,
    name: String,
    started: Instant,
    fields: Vec<(String, String)>,
    finished: bool,
}

impl Span {
    /// Attach a structured field.
    pub fn field(&mut self, key: &str, value: impl Into<String>) -> &mut Span {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Stop the clock and record the span now.
    pub fn finish(mut self) {
        self.finish_inner();
    }

    fn finish_inner(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let elapsed = self.started.elapsed();
        self.trace.inner.log.record_raw(
            self.trace.inner.id,
            &self.name,
            self.started,
            elapsed,
            std::mem::take(&mut self.fields),
        );
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log() -> Arc<TraceLog> {
        Arc::new(TraceLog::new(16))
    }

    #[test]
    fn span_records_on_finish_and_drop() {
        let log = log();
        let trace = Trace::new(7, Arc::clone(&log));
        let mut span = trace.span("stage.fetch");
        span.field("bytes", "120");
        span.finish();
        {
            let _implicit = trace.span("stage.emit");
        }
        let spans = log.spans_for(7);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "stage.fetch");
        assert_eq!(
            spans[0].fields,
            vec![("bytes".to_string(), "120".to_string())]
        );
        assert_eq!(spans[1].name, "stage.emit");
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let log = Arc::new(TraceLog::new(4));
        let trace = Trace::new(1, Arc::clone(&log));
        for i in 0..10 {
            trace.record(&format!("s{i}"), Duration::from_micros(1), Vec::new());
        }
        assert_eq!(log.len(), 4);
        assert_eq!(log.dropped(), 6);
        let names: Vec<String> = log.spans_for(1).into_iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["s6", "s7", "s8", "s9"]);
    }

    #[test]
    fn trace_ids_are_seed_deterministic() {
        let a = TraceIdSeq::new(42);
        let b = TraceIdSeq::new(42);
        let c = TraceIdSeq::new(43);
        let ids_a: Vec<u64> = (0..5).map(|_| a.next_id()).collect();
        let ids_b: Vec<u64> = (0..5).map(|_| b.next_id()).collect();
        let ids_c: Vec<u64> = (0..5).map(|_| c.next_id()).collect();
        assert_eq!(ids_a, ids_b);
        assert_ne!(ids_a, ids_c);
        assert!(ids_a.iter().all(|&id| id != 0));
    }

    #[test]
    fn id_hex_round_trips() {
        let trace = Trace::new(0x00ab_cdef_0123_4567, log());
        assert_eq!(trace.id_hex(), "00abcdef01234567");
        assert_eq!(Trace::parse_id(&trace.id_hex()), Some(trace.id()));
        assert_eq!(Trace::parse_id("zz"), None);
        assert_eq!(Trace::parse_id(""), None);
    }

    #[test]
    fn thread_local_current_nests() {
        let log = log();
        let outer = Trace::new(1, Arc::clone(&log));
        let inner = Trace::new(2, Arc::clone(&log));
        assert!(Trace::current().is_none());
        {
            let _g1 = outer.enter();
            assert_eq!(Trace::current().unwrap().id(), 1);
            {
                let _g2 = inner.enter();
                assert_eq!(Trace::current().unwrap().id(), 2);
            }
            assert_eq!(Trace::current().unwrap().id(), 1);
        }
        assert!(Trace::current().is_none());
    }

    #[test]
    fn span_json_escapes() {
        let record = SpanRecord {
            trace_id: 0xff,
            name: "q\"uote".to_string(),
            start: Duration::from_micros(5),
            elapsed: Duration::from_micros(9),
            fields: vec![("k".to_string(), "v\n2".to_string())],
        };
        let json = record.to_json();
        assert!(json.contains("\"trace\":\"00000000000000ff\""));
        assert!(json.contains("q\\\"uote"));
        assert!(json.contains("v\\n2"));
        assert!(json.contains("\"start_micros\":5"));
        assert!(json.contains("\"elapsed_micros\":9"));
    }
}
