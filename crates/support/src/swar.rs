//! Portable SWAR (SIMD-within-a-register) byte scanning.
//!
//! The adaptation pipeline is bounded by a handful of byte loops: the
//! tokenizer looking for `<`/`&`, the entity codec pre-scanning for
//! escapable bytes, selector matching lowercasing names, and the PNG
//! encoder extending LZ77 matches. This module speeds all of them up
//! with plain `u64` arithmetic — eight bytes per step, no
//! target-feature detection, no `unsafe`, identical results on every
//! architecture. Every caller keeps a scalar twin (here in [`scalar`])
//! and a seeded property gate pinning the two byte-identical; see
//! DESIGN.md §15 for the policy.
//!
//! The core trick is the classic zero-byte detector: for a word `x`,
//! `(x - 0x0101..01) & !x & 0x8080..80` has the high bit set in every
//! byte lane that is zero — with possible false positives only in
//! lanes *above* (more significant than) the first true zero. Reading
//! words little-endian and taking `trailing_zeros() / 8` therefore
//! yields the exact first-match index.

/// Every byte lane set to `0x01`.
const LO: u64 = 0x0101_0101_0101_0101;
/// Every byte lane set to `0x80`.
const HI: u64 = 0x8080_8080_8080_8080;

/// Splats a byte into all eight lanes of a word.
#[inline]
pub const fn splat(b: u8) -> u64 {
    LO * b as u64
}

/// A mask with the high bit set in every *zero* byte lane of `x`
/// (plus possible false positives above the first zero lane —
/// harmless when only `trailing_zeros` is consulted).
#[inline]
const fn zero_lanes(x: u64) -> u64 {
    x.wrapping_sub(LO) & !x & HI
}

/// Reads an 8-byte little-endian word from `bytes` at `at`.
/// Callers guarantee `at + 8 <= bytes.len()`.
#[inline]
fn word_at(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8-byte window"))
}

/// Index of the first occurrence of `needle` in `haystack`, scanning
/// a word at a time.
///
/// # Examples
///
/// ```
/// use msite_support::swar;
///
/// let text = b"plain text until a <tag> appears";
/// assert_eq!(swar::find_byte(text, b'<'), Some(19));
/// assert_eq!(swar::find_byte(text, b'\0'), None);
/// ```
#[inline]
pub fn find_byte(haystack: &[u8], needle: u8) -> Option<usize> {
    let pattern = splat(needle);
    let mut i = 0;
    while i + 8 <= haystack.len() {
        let mask = zero_lanes(word_at(haystack, i) ^ pattern);
        if mask != 0 {
            return Some(i + (mask.trailing_zeros() / 8) as usize);
        }
        i += 8;
    }
    haystack[i..]
        .iter()
        .position(|&b| b == needle)
        .map(|p| i + p)
}

/// Index of the first byte of `haystack` that is a member of `set`.
///
/// Eight membership lookups per word run unconditionally and OR-fold
/// into a single lane mask, so the loop branches once per word, not
/// once per byte.
#[inline]
pub fn find_any_of(haystack: &[u8], set: &ByteSet) -> Option<usize> {
    let mut i = 0;
    while i + 8 <= haystack.len() {
        let w = haystack[i..i + 8].try_into().expect("8-byte window");
        let hits = set.lane_hits(w);
        if hits != 0 {
            return Some(i + (hits.trailing_zeros() / 8) as usize);
        }
        i += 8;
    }
    haystack[i..]
        .iter()
        .position(|&b| set.contains(b))
        .map(|p| i + p)
}

/// Length of the common prefix of `a` and `b`, compared a word at a
/// time (the LZ77 match-extension primitive).
///
/// ```
/// use msite_support::swar;
///
/// assert_eq!(swar::common_prefix_len(b"abcdefgh123", b"abcdefgh456"), 8);
/// assert_eq!(swar::common_prefix_len(b"xyz", b"xyz"), 3);
/// ```
#[inline]
pub fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    let limit = a.len().min(b.len());
    let mut i = 0;
    while i + 8 <= limit {
        let diff = word_at(a, i) ^ word_at(b, i);
        if diff != 0 {
            return i + (diff.trailing_zeros() / 8) as usize;
        }
        i += 8;
    }
    while i < limit && a[i] == b[i] {
        i += 1;
    }
    i
}

/// Branchless ASCII lowercase of a single byte: `A..=Z` gains bit 5,
/// every other value (including non-ASCII) passes through unchanged.
#[inline]
pub const fn lower(b: u8) -> u8 {
    b | (((b.wrapping_sub(b'A') < 26) as u8) << 5)
}

/// Branchless ASCII lowercase of eight bytes at once. Non-ASCII lanes
/// (high bit set) pass through unchanged, matching [`lower`] per lane.
#[inline]
pub const fn lower_word(w: u64) -> u64 {
    // Work in the low 7 bits so per-lane adds cannot carry across
    // lanes, then reject lanes whose original high bit was set.
    let seven = w & !HI;
    let ge_a = seven.wrapping_add(splat(0x80 - b'A')) & HI;
    let gt_z = seven.wrapping_add(splat(0x80 - b'Z' - 1)) & HI;
    let ascii = !w & HI;
    let upper = ge_a & !gt_z & ascii;
    // The high-bit marks shift down to bit 5 of each lane.
    w | (upper >> 2)
}

/// ASCII case-insensitive equality, eight bytes per step. Exactly
/// `a.eq_ignore_ascii_case(b)` but without the per-byte branch.
#[inline]
pub fn eq_ignore_case(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut i = 0;
    let mut diff = 0u64;
    while i + 8 <= a.len() {
        diff |= lower_word(word_at(a, i)) ^ lower_word(word_at(b, i));
        i += 8;
    }
    let mut tail = 0u8;
    while i < a.len() {
        tail |= lower(a[i]) ^ lower(b[i]);
        i += 1;
    }
    diff == 0 && tail == 0
}

/// A 256-bit membership table over byte values, `const`-constructible
/// so delimiter sets live in static data.
///
/// ```
/// use msite_support::swar::ByteSet;
///
/// const DELIMS: ByteSet = ByteSet::new(b"<&\"");
/// assert!(DELIMS.contains(b'<'));
/// assert!(!DELIMS.contains(b'a'));
/// assert_eq!(DELIMS.find_in(b"text then & here"), Some(10));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ByteSet {
    bits: [u64; 4],
}

impl ByteSet {
    /// Builds a set from member bytes.
    pub const fn new(members: &[u8]) -> Self {
        let mut bits = [0u64; 4];
        let mut i = 0;
        while i < members.len() {
            let b = members[i];
            bits[(b >> 6) as usize] |= 1u64 << (b & 63);
            i += 1;
        }
        ByteSet { bits }
    }

    /// Builds a set from a predicate over all 256 byte values.
    pub fn from_fn(mut member: impl FnMut(u8) -> bool) -> Self {
        let mut bits = [0u64; 4];
        for b in 0..=255u8 {
            if member(b) {
                bits[(b >> 6) as usize] |= 1u64 << (b & 63);
            }
        }
        ByteSet { bits }
    }

    /// Membership test.
    #[inline]
    pub const fn contains(&self, b: u8) -> bool {
        self.bits[(b >> 6) as usize] >> (b & 63) & 1 != 0
    }

    /// High-bit-per-matching-lane mask over eight bytes: the eight
    /// membership lookups run unconditionally and OR-fold into one
    /// word, so the caller branches once per word.
    #[inline]
    fn lane_hits(&self, bytes: [u8; 8]) -> u64 {
        let mut hits = 0u64;
        let mut lane = 0;
        while lane < 8 {
            hits |= (self.contains(bytes[lane]) as u64) << (lane * 8 + 7);
            lane += 1;
        }
        hits
    }

    /// Index of the first member byte in `haystack`.
    #[inline]
    pub fn find_in(&self, haystack: &[u8]) -> Option<usize> {
        find_any_of(haystack, self)
    }

    /// Length of the leading run of *non-members* — i.e. how many
    /// bytes can be skipped before the first delimiter (or the whole
    /// slice when none occurs).
    #[inline]
    pub fn skip_run(&self, haystack: &[u8]) -> usize {
        self.find_in(haystack).unwrap_or(haystack.len())
    }
}

/// Naive per-byte reference implementations. These are the semantics
/// the word-at-a-time paths above are property-gated against (see
/// `crates/support/tests/swar_prop.rs`), and the baselines the
/// `hotpath` bench experiment times.
pub mod scalar {
    use super::ByteSet;

    /// Per-byte [`super::find_byte`].
    pub fn find_byte(haystack: &[u8], needle: u8) -> Option<usize> {
        let mut i = 0;
        while i < haystack.len() {
            if haystack[i] == needle {
                return Some(i);
            }
            i += 1;
        }
        None
    }

    /// Per-byte [`super::find_any_of`].
    pub fn find_any_of(haystack: &[u8], set: &ByteSet) -> Option<usize> {
        let mut i = 0;
        while i < haystack.len() {
            if set.contains(haystack[i]) {
                return Some(i);
            }
            i += 1;
        }
        None
    }

    /// Per-byte [`super::common_prefix_len`].
    pub fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
        let limit = a.len().min(b.len());
        let mut i = 0;
        while i < limit && a[i] == b[i] {
            i += 1;
        }
        i
    }

    /// Branchy per-byte [`super::lower`].
    pub fn lower(b: u8) -> u8 {
        if b.is_ascii_uppercase() {
            b + 32
        } else {
            b
        }
    }

    /// Per-byte [`super::eq_ignore_case`].
    pub fn eq_ignore_case(a: &[u8], b: &[u8]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| lower(*x) == lower(*y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_byte_basics() {
        assert_eq!(find_byte(b"", b'x'), None);
        assert_eq!(find_byte(b"x", b'x'), Some(0));
        assert_eq!(find_byte(b"aaaaaaaax", b'x'), Some(8));
        assert_eq!(find_byte(b"aaaaaaaa", b'x'), None);
        // Match inside the word, not at a boundary.
        assert_eq!(find_byte(b"abcdefgh", b'd'), Some(3));
        // First of several.
        assert_eq!(find_byte(b"..<..<..", b'<'), Some(2));
    }

    #[test]
    fn byte_set_and_find_any_of() {
        let set = ByteSet::new(b"<&\"");
        assert_eq!(find_any_of(b"hello & goodbye", &set), Some(6));
        assert_eq!(set.skip_run(b"no delimiters at all here....."), 30);
        assert_eq!(set.skip_run(b"<"), 0);
        let none = ByteSet::new(b"");
        assert_eq!(find_any_of(b"anything", &none), None);
    }

    #[test]
    fn from_fn_matches_new() {
        let a = ByteSet::new(b"abc");
        let b = ByteSet::from_fn(|x| matches!(x, b'a' | b'b' | b'c'));
        for v in 0..=255u8 {
            assert_eq!(a.contains(v), b.contains(v));
        }
    }

    #[test]
    fn lower_matches_std_for_all_bytes() {
        for b in 0..=255u8 {
            assert_eq!(lower(b), b.to_ascii_lowercase(), "byte {b:#x}");
        }
    }

    #[test]
    fn lower_word_matches_per_byte() {
        let samples: [u64; 4] = [
            u64::from_le_bytes(*b"AbZz@[`{"),
            u64::from_le_bytes([0x80, b'A', 0xC2, b'Z', 0xFF, b'M', 0x00, b'a']),
            0,
            u64::MAX,
        ];
        for w in samples {
            let expect = u64::from_le_bytes(w.to_le_bytes().map(|b| b.to_ascii_lowercase()));
            assert_eq!(lower_word(w), expect, "word {w:#018x}");
        }
    }

    #[test]
    fn eq_ignore_case_matches_std() {
        assert!(eq_ignore_case(b"SCRIPT-ELEMENT", b"script-element"));
        assert!(!eq_ignore_case(b"script", b"style!"));
        assert!(!eq_ignore_case(b"script", b"scrip"));
        assert!(eq_ignore_case(b"", b""));
    }

    #[test]
    fn common_prefix_len_boundaries() {
        assert_eq!(common_prefix_len(b"", b"abc"), 0);
        assert_eq!(common_prefix_len(b"abcdefghij", b"abcdefghij"), 10);
        assert_eq!(common_prefix_len(b"abcdefghXj", b"abcdefghYj"), 8);
    }
}
