//! Scoped fan-out over [`std::thread::scope`].
//!
//! Load generators and concurrency tests spawn a fixed crew of workers
//! that borrow from the caller's stack and join before returning —
//! exactly the shape `std::thread::scope` provides, wrapped here so
//! call sites stay one-liners and results come back in worker order.

/// Runs `workers` copies of `work` concurrently, each receiving its
/// worker index, and returns the results in index order. Panics in a
/// worker propagate to the caller after all workers finish.
pub fn fan_out<T, F>(workers: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers == 0 {
        return Vec::new();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|index| {
                scope.spawn({
                    let work = &work;
                    move || work(index)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fan_out worker panicked"))
            .collect()
    })
}

/// Like [`fan_out`], but each worker first sleeps a deterministic
/// pseudo-random delay in `[0, max_stagger)` derived from `seed` and
/// its index. Sweeping the seed drives different arrival orders through
/// the code under test — a lightweight, dependency-free cousin of
/// loom-style schedule exploration, useful for smoking out ordering
/// bugs around locks and rendezvous points.
pub fn staggered_fan_out<T, F>(
    workers: usize,
    seed: u64,
    max_stagger: std::time::Duration,
    work: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let nanos = max_stagger.as_nanos() as u64;
    fan_out(workers, move |index| {
        if nanos > 0 {
            // SplitMix64 over (seed, index): stable across runs and
            // platforms, so a failing seed reproduces.
            let mut z = seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((index as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            std::thread::sleep(std::time::Duration::from_nanos(z % nanos));
        }
        work(index)
    })
}

/// Maps `items` concurrently with one worker per item, borrowing the
/// items for the duration of the scope. Result order matches item order.
pub fn scoped_map<I, T, F>(items: &[I], work: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .iter()
            .map(|item| {
                scope.spawn({
                    let work = &work;
                    move || work(item)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scoped_map worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fan_out_returns_in_order() {
        let results = fan_out(8, |i| i * 2);
        assert_eq!(results, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn fan_out_zero_workers() {
        let results: Vec<u32> = fan_out(0, |_| unreachable!());
        assert!(results.is_empty());
    }

    #[test]
    fn fan_out_borrows_caller_state() {
        let counter = AtomicUsize::new(0);
        fan_out(16, |_| counter.fetch_add(1, Ordering::Relaxed));
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn staggered_fan_out_runs_every_worker() {
        let counter = AtomicUsize::new(0);
        let results = staggered_fan_out(6, 42, std::time::Duration::from_micros(200), |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(results, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(counter.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn staggered_fan_out_zero_stagger_degenerates_to_fan_out() {
        let results = staggered_fan_out(4, 7, std::time::Duration::ZERO, |i| i * 3);
        assert_eq!(results, vec![0, 3, 6, 9]);
    }

    #[test]
    fn scoped_map_borrows_items() {
        let words = vec!["a".to_string(), "bb".to_string(), "ccc".to_string()];
        assert_eq!(scoped_map(&words, |w| w.len()), vec![1, 2, 3]);
    }
}
