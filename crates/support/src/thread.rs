//! Scoped fan-out over [`std::thread::scope`].
//!
//! Load generators and concurrency tests spawn a fixed crew of workers
//! that borrow from the caller's stack and join before returning —
//! exactly the shape `std::thread::scope` provides, wrapped here so
//! call sites stay one-liners and results come back in worker order.

/// Runs `workers` copies of `work` concurrently, each receiving its
/// worker index, and returns the results in index order. Panics in a
/// worker propagate to the caller after all workers finish.
pub fn fan_out<T, F>(workers: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers == 0 {
        return Vec::new();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|index| {
                scope.spawn({
                    let work = &work;
                    move || work(index)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fan_out worker panicked"))
            .collect()
    })
}

/// Maps `items` concurrently with one worker per item, borrowing the
/// items for the duration of the scope. Result order matches item order.
pub fn scoped_map<I, T, F>(items: &[I], work: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .iter()
            .map(|item| {
                scope.spawn({
                    let work = &work;
                    move || work(item)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scoped_map worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fan_out_returns_in_order() {
        let results = fan_out(8, |i| i * 2);
        assert_eq!(results, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn fan_out_zero_workers() {
        let results: Vec<u32> = fan_out(0, |_| unreachable!());
        assert!(results.is_empty());
    }

    #[test]
    fn fan_out_borrows_caller_state() {
        let counter = AtomicUsize::new(0);
        fan_out(16, |_| counter.fetch_add(1, Ordering::Relaxed));
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn scoped_map_borrows_items() {
        let words = vec!["a".to_string(), "bb".to_string(), "ccc".to_string()];
        assert_eq!(scoped_map(&words, |w| w.len()), vec![1, 2, 3]);
    }
}
