//! Threading support: scoped fan-out helpers and the [`WorkerPool`].
//!
//! Two shapes of concurrency live here:
//!
//! - **Scoped fan-out** ([`fan_out`], [`scoped_map`], [`scope_fan_out`])
//!   over [`std::thread::scope`]: a fixed crew of workers that borrow
//!   from the caller's stack and join before returning, with results in
//!   deterministic task order. The pipeline's intra-request parallelism
//!   and the load generators are built on these.
//! - **The [`WorkerPool`]**: a fixed set of long-lived worker threads
//!   behind a *bounded* submission queue, with panic isolation and
//!   counters. The HTTP server's connection executor is built on it —
//!   the bounded queue is the backpressure knob that turns an overload
//!   burst into measurable 503s instead of unbounded thread growth.

use crate::sync::{Condvar, Mutex};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A conservative default width for CPU-bound fan-out: the machine's
/// available parallelism, capped at 8 (beyond that the workloads in
/// this repository are memory-bound), and at least 1.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 8)
}

/// SplitMix64 over `(seed, index)`: stable across runs and platforms,
/// so a failing seed reproduces.
fn splitmix(seed: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `workers` copies of `work` concurrently, each receiving its
/// worker index, and returns the results in index order. Panics in a
/// worker propagate to the caller after all workers finish.
pub fn fan_out<T, F>(workers: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers == 0 {
        return Vec::new();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|index| {
                scope.spawn({
                    let work = &work;
                    move || work(index)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fan_out worker panicked"))
            .collect()
    })
}

/// Like [`fan_out`], but each worker first sleeps a deterministic
/// pseudo-random delay in `[0, max_stagger)` derived from `seed` and
/// its index. Sweeping the seed drives different arrival orders through
/// the code under test — a lightweight, dependency-free cousin of
/// loom-style schedule exploration, useful for smoking out ordering
/// bugs around locks and rendezvous points.
pub fn staggered_fan_out<T, F>(
    workers: usize,
    seed: u64,
    max_stagger: std::time::Duration,
    work: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let nanos = max_stagger.as_nanos() as u64;
    fan_out(workers, move |index| {
        if nanos > 0 {
            std::thread::sleep(std::time::Duration::from_nanos(
                splitmix(seed, index as u64) % nanos,
            ));
        }
        work(index)
    })
}

/// Maps `items` concurrently with one worker per item, borrowing the
/// items for the duration of the scope. Result order matches item order.
pub fn scoped_map<I, T, F>(items: &[I], work: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .iter()
            .map(|item| {
                scope.spawn({
                    let work = &work;
                    move || work(item)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scoped_map worker panicked"))
            .collect()
    })
}

// ---------------------------------------------------------------------
// scope_fan_out: bounded-width fan-out with per-task panic isolation
// ---------------------------------------------------------------------

/// A task that panicked inside [`scope_fan_out`]; carries the task index
/// and the panic payload rendered as text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// Index of the task that panicked.
    pub task: usize,
    /// The panic payload (`&str`/`String` payloads verbatim, anything
    /// else a placeholder).
    pub message: String,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task {} panicked: {}", self.task, self.message)
    }
}

impl std::error::Error for TaskPanic {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Runs `tasks` indexed tasks across at most `parallelism` scoped
/// worker threads and returns one entry per task, **in task order**
/// regardless of which worker ran which task or in what order they
/// finished. Workers claim task indices from a shared cursor
/// (work-stealing), so an expensive task does not serialize the cheap
/// ones behind it.
///
/// Each task runs under panic isolation: a panicking task becomes an
/// `Err(`[`TaskPanic`]`)` entry and the remaining tasks still run.
/// `parallelism <= 1` degenerates to a serial loop on the calling
/// thread (no threads spawned), which is the reference ordering the
/// parallel path is tested against.
pub fn scope_fan_out<T, F>(parallelism: usize, tasks: usize, work: F) -> Vec<Result<T, TaskPanic>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    scope_fan_out_staggered(parallelism, tasks, 0, Duration::ZERO, work)
}

/// [`scope_fan_out`] with a deterministic per-task start delay in
/// `[0, max_stagger)` derived from `seed` and the task index. Sweeping
/// the seed perturbs which worker claims which task and in what order
/// results land — the schedule-exploration hook the pipeline
/// determinism suite drives. `max_stagger == 0` adds no delay.
pub fn scope_fan_out_staggered<T, F>(
    parallelism: usize,
    tasks: usize,
    seed: u64,
    max_stagger: Duration,
    work: F,
) -> Vec<Result<T, TaskPanic>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if tasks == 0 {
        return Vec::new();
    }
    let stagger_nanos = max_stagger.as_nanos() as u64;
    let run_one = |index: usize| -> Result<T, TaskPanic> {
        if stagger_nanos > 0 {
            std::thread::sleep(Duration::from_nanos(
                splitmix(seed, index as u64) % stagger_nanos,
            ));
        }
        catch_unwind(AssertUnwindSafe(|| work(index))).map_err(|payload| TaskPanic {
            task: index,
            message: panic_message(payload),
        })
    };
    let width = parallelism.max(1).min(tasks);
    if width == 1 {
        return (0..tasks).map(run_one).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut ordered: Vec<Option<Result<T, TaskPanic>>> = (0..tasks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..width)
            .map(|_| {
                scope.spawn(|| {
                    let mut ran = Vec::new();
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        if index >= tasks {
                            break;
                        }
                        ran.push((index, run_one(index)));
                    }
                    ran
                })
            })
            .collect();
        for handle in handles {
            let ran = handle
                .join()
                .expect("fan-out worker panicked outside task isolation");
            for (index, result) in ran {
                ordered[index] = Some(result);
            }
        }
    });
    ordered
        .into_iter()
        .map(|slot| slot.expect("every task index claimed exactly once"))
        .collect()
}

// ---------------------------------------------------------------------
// WorkerPool: fixed workers, bounded queue, panic isolation
// ---------------------------------------------------------------------

/// Sizing for a [`WorkerPool`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolConfig {
    /// Number of long-lived worker threads.
    pub workers: usize,
    /// Maximum jobs waiting in the submission queue; submissions beyond
    /// this are rejected by [`WorkerPool::try_execute`]. The pending
    /// bound, not the concurrency bound — up to `workers` jobs execute
    /// on top of `queue_depth` waiting ones.
    pub queue_depth: usize,
    /// Thread-name prefix for the workers (`<name>-<index>`).
    pub name: String,
}

impl Default for PoolConfig {
    fn default() -> Self {
        let workers = default_parallelism();
        PoolConfig {
            workers,
            queue_depth: workers * 8,
            name: "msite-worker".to_string(),
        }
    }
}

/// Counters a [`WorkerPool`] accumulates over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs that finished executing (including panicked ones).
    pub completed: u64,
    /// Submissions rejected because the queue was full.
    pub rejected: u64,
    /// Jobs that panicked; the worker survived and kept serving.
    pub panicked: u64,
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
    active: usize,
    shutdown: bool,
    /// Desired worker count; `worker_loop` retires threads while
    /// `alive > target` and [`WorkerPool::resize`] spawns while
    /// `alive < target`.
    target: usize,
    /// Worker threads currently running their loop.
    alive: usize,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signaled when a job is queued or shutdown begins (workers wait).
    job_ready: Condvar,
    /// Signaled when queue space frees or a job completes (submitters
    /// blocked in `execute` and `wait_idle` wait).
    progress: Condvar,
    queue_depth: usize,
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    panicked: AtomicU64,
}

/// A fixed-size pool of long-lived worker threads behind a bounded
/// submission queue.
///
/// - **Bounded**: at most [`PoolConfig::queue_depth`] jobs wait;
///   [`try_execute`](WorkerPool::try_execute) hands a job back instead
///   of queueing it when the bound is hit, so callers can shed load
///   explicitly (the HTTP server answers 503).
/// - **Panic-isolated**: a panicking job is counted in
///   [`PoolStats::panicked`] and its worker keeps serving.
/// - **Draining shutdown**: [`shutdown`](WorkerPool::shutdown) (or
///   drop) lets queued jobs finish before the workers exit.
///
/// For work that must borrow from the caller's stack, use
/// [`scope_fan_out`](WorkerPool::scope_fan_out): lifetimes cannot be
/// smuggled onto `'static` pool threads in safe Rust, so the scoped
/// helper spawns a bounded crew of scoped threads at the pool's width
/// instead, keeping one knob for both shapes.
///
/// # Examples
///
/// ```
/// use msite_support::thread::{PoolConfig, WorkerPool};
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let pool = WorkerPool::new(PoolConfig {
///     workers: 2,
///     queue_depth: 8,
///     name: "doc".into(),
/// });
/// let hits = Arc::new(AtomicUsize::new(0));
/// for _ in 0..4 {
///     let hits = Arc::clone(&hits);
///     pool.execute(move || {
///         hits.fetch_add(1, Ordering::Relaxed);
///     });
/// }
/// pool.wait_idle();
/// assert_eq!(hits.load(Ordering::Relaxed), 4);
/// ```
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    name: String,
    spawned: AtomicU64,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Starts `config.workers` worker threads (at least one).
    pub fn new(config: PoolConfig) -> WorkerPool {
        let workers = config.workers.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                active: 0,
                shutdown: false,
                target: workers,
                alive: workers,
            }),
            job_ready: Condvar::new(),
            progress: Condvar::new(),
            queue_depth: config.queue_depth.max(1),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("{}-{index}", config.name))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            name: config.name,
            spawned: AtomicU64::new(workers as u64),
            handles: Mutex::new(handles),
        }
    }

    /// A pool of `workers` threads with the default queue depth
    /// (`workers * 8`).
    pub fn with_workers(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        WorkerPool::new(PoolConfig {
            workers,
            queue_depth: workers * 8,
            ..PoolConfig::default()
        })
    }

    /// Target number of worker threads (the width [`resize`] last set;
    /// retiring threads may briefly lag behind a shrink).
    ///
    /// [`resize`]: WorkerPool::resize
    pub fn workers(&self) -> usize {
        self.shared.state.lock().target
    }

    /// Worker threads currently running their loop. Tracks
    /// [`workers`](WorkerPool::workers) once in-flight grows/shrinks
    /// settle.
    pub fn alive(&self) -> usize {
        self.shared.state.lock().alive
    }

    /// Changes the worker count at runtime (clamped to at least one).
    ///
    /// Growing spawns the missing threads immediately; shrinking marks
    /// the excess for retirement — each surplus worker exits as soon as
    /// it is idle, so in-flight jobs always finish. No-op on a pool that
    /// is shutting down. Returns the effective target.
    pub fn resize(&self, workers: usize) -> usize {
        let target = workers.max(1);
        let spawn = {
            let mut state = self.shared.state.lock();
            if state.shutdown {
                return state.target;
            }
            state.target = target;
            let spawn = target.saturating_sub(state.alive);
            state.alive += spawn;
            spawn
        };
        if spawn > 0 {
            let mut handles = self.handles.lock();
            for _ in 0..spawn {
                let index = self.spawned.fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(&self.shared);
                let handle = std::thread::Builder::new()
                    .name(format!("{}-{index}", self.name))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker");
                handles.push(handle);
            }
        } else {
            // Wake idle workers so surplus ones notice and retire.
            self.shared.job_ready.notify_all();
        }
        target
    }

    /// Maximum jobs the submission queue holds.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue_depth
    }

    /// Jobs currently waiting in the queue (not yet executing).
    pub fn queued(&self) -> usize {
        self.shared.state.lock().queue.len()
    }

    /// Jobs currently executing on workers.
    pub fn active(&self) -> usize {
        self.shared.state.lock().active
    }

    /// Lifetime counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            panicked: self.shared.panicked.load(Ordering::Relaxed),
        }
    }

    /// Queues `job` unless the queue is at capacity (or the pool is
    /// shutting down), in which case the job is handed back unchanged
    /// in `Err` so the caller can shed it explicitly.
    ///
    /// # Errors
    ///
    /// Returns `Err(job)` when the bounded queue is full or the pool is
    /// shutting down; the rejection is counted in
    /// [`PoolStats::rejected`].
    pub fn try_execute<F>(&self, job: F) -> Result<(), F>
    where
        F: FnOnce() + Send + 'static,
    {
        {
            let mut state = self.shared.state.lock();
            if state.shutdown || state.queue.len() >= self.shared.queue_depth {
                drop(state);
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(job);
            }
            state.queue.push_back(Box::new(job));
        }
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        self.shared.job_ready.notify_one();
        Ok(())
    }

    /// Queues `job`, blocking until queue space is available. Panics if
    /// called on a pool that is shutting down.
    pub fn execute<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        {
            let mut state = self.shared.state.lock();
            while state.queue.len() >= self.shared.queue_depth {
                assert!(!state.shutdown, "execute on a shutting-down pool");
                state = self.shared.progress.wait(state);
            }
            assert!(!state.shutdown, "execute on a shutting-down pool");
            state.queue.push_back(Box::new(job));
        }
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        self.shared.job_ready.notify_one();
    }

    /// Blocks until the queue is empty and no job is executing.
    pub fn wait_idle(&self) {
        let mut state = self.shared.state.lock();
        while !state.queue.is_empty() || state.active > 0 {
            state = self.shared.progress.wait(state);
        }
    }

    /// Runs `tasks` borrowed tasks at this pool's width with
    /// deterministic result ordering — see the module-level
    /// [`scope_fan_out`]. Task outcomes are folded into this pool's
    /// [`PoolStats`] (submitted/completed/panicked).
    pub fn scope_fan_out<T, F>(&self, tasks: usize, work: F) -> Vec<Result<T, TaskPanic>>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let results = scope_fan_out(self.workers(), tasks, work);
        let panics = results.iter().filter(|r| r.is_err()).count() as u64;
        self.shared
            .submitted
            .fetch_add(tasks as u64, Ordering::Relaxed);
        self.shared
            .completed
            .fetch_add(tasks as u64, Ordering::Relaxed);
        self.shared.panicked.fetch_add(panics, Ordering::Relaxed);
        results
    }

    /// Stops accepting new jobs, lets queued jobs drain, and joins the
    /// workers. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut state = self.shared.state.lock();
            state.shutdown = true;
        }
        self.shared.job_ready.notify_all();
        self.shared.progress.notify_all();
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.handles.lock());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers())
            .field("queue_depth", &self.shared.queue_depth)
            .field("stats", &self.stats())
            .finish()
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut state = shared.state.lock();
            loop {
                // Surplus workers (after a shrink) retire as soon as
                // they are idle; in-flight jobs always run to completion
                // because the check happens between jobs.
                if !state.shutdown && state.alive > state.target {
                    state.alive -= 1;
                    return;
                }
                if let Some(job) = state.queue.pop_front() {
                    state.active += 1;
                    break job;
                }
                if state.shutdown {
                    state.alive = state.alive.saturating_sub(1);
                    return;
                }
                state = shared.job_ready.wait(state);
            }
        };
        // Queue space just freed; unblock one blocked submitter.
        shared.progress.notify_all();
        let outcome = catch_unwind(AssertUnwindSafe(job));
        {
            let mut state = shared.state.lock();
            state.active -= 1;
        }
        if outcome.is_err() {
            shared.panicked.fetch_add(1, Ordering::Relaxed);
        }
        shared.completed.fetch_add(1, Ordering::Relaxed);
        shared.progress.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fan_out_returns_in_order() {
        let results = fan_out(8, |i| i * 2);
        assert_eq!(results, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn fan_out_zero_workers() {
        let results: Vec<u32> = fan_out(0, |_| unreachable!());
        assert!(results.is_empty());
    }

    #[test]
    fn fan_out_borrows_caller_state() {
        let counter = AtomicUsize::new(0);
        fan_out(16, |_| counter.fetch_add(1, Ordering::Relaxed));
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn staggered_fan_out_runs_every_worker() {
        let counter = AtomicUsize::new(0);
        let results = staggered_fan_out(6, 42, std::time::Duration::from_micros(200), |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(results, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(counter.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn staggered_fan_out_zero_stagger_degenerates_to_fan_out() {
        let results = staggered_fan_out(4, 7, std::time::Duration::ZERO, |i| i * 3);
        assert_eq!(results, vec![0, 3, 6, 9]);
    }

    #[test]
    fn scoped_map_borrows_items() {
        let words = vec!["a".to_string(), "bb".to_string(), "ccc".to_string()];
        assert_eq!(scoped_map(&words, |w| w.len()), vec![1, 2, 3]);
    }

    #[test]
    fn scope_fan_out_orders_results_at_any_width() {
        for parallelism in [1, 2, 3, 8, 64] {
            let results: Vec<usize> = scope_fan_out(parallelism, 17, |i| i * i)
                .into_iter()
                .map(|r| r.unwrap())
                .collect();
            let expected: Vec<usize> = (0..17).map(|i| i * i).collect();
            assert_eq!(results, expected, "parallelism {parallelism}");
        }
    }

    #[test]
    fn scope_fan_out_zero_tasks() {
        let results: Vec<Result<u32, TaskPanic>> = scope_fan_out(4, 0, |_| unreachable!());
        assert!(results.is_empty());
    }

    #[test]
    fn scope_fan_out_isolates_panics() {
        let results = scope_fan_out(3, 6, |i| {
            if i == 2 {
                panic!("task two exploded");
            }
            i
        });
        for (i, result) in results.iter().enumerate() {
            if i == 2 {
                let panic = result.as_ref().unwrap_err();
                assert_eq!(panic.task, 2);
                assert!(panic.message.contains("exploded"));
            } else {
                assert_eq!(*result.as_ref().unwrap(), i);
            }
        }
    }

    #[test]
    fn scope_fan_out_serial_isolates_panics_too() {
        let results = scope_fan_out(1, 3, |i| {
            if i == 1 {
                panic!("serial panic");
            }
            i
        });
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
    }

    #[test]
    fn pool_runs_jobs_and_counts() {
        let pool = WorkerPool::with_workers(3);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 10);
        let stats = pool.stats();
        assert_eq!(stats.submitted, 10);
        assert_eq!(stats.completed, 10);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.panicked, 0);
    }

    #[test]
    fn pool_bounded_queue_rejects() {
        let pool = WorkerPool::new(PoolConfig {
            workers: 1,
            queue_depth: 1,
            name: "t".into(),
        });
        // Gate the single worker so the queue stays full.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let entered = Arc::new((Mutex::new(false), Condvar::new()));
        {
            let gate = Arc::clone(&gate);
            let entered = Arc::clone(&entered);
            pool.execute(move || {
                {
                    let (lock, cv) = &*entered;
                    *lock.lock() = true;
                    cv.notify_all();
                }
                let (lock, cv) = &*gate;
                let mut open = lock.lock();
                while !*open {
                    open = cv.wait(open);
                }
            });
        }
        // Wait until the blocker is actually executing (not queued).
        {
            let (lock, cv) = &*entered;
            let mut running = lock.lock();
            while !*running {
                running = cv.wait(running);
            }
        }
        pool.execute(|| {}); // fills the queue_depth=1 slot
        let rejected = pool.try_execute(|| {});
        assert!(rejected.is_err());
        assert_eq!(pool.stats().rejected, 1);
        // Open the gate; everything drains.
        {
            let (lock, cv) = &*gate;
            *lock.lock() = true;
            cv.notify_all();
        }
        pool.wait_idle();
        assert_eq!(pool.stats().completed, 2);
    }

    #[test]
    fn pool_survives_panicking_jobs() {
        let pool = WorkerPool::with_workers(2);
        for i in 0..6 {
            pool.execute(move || {
                if i % 2 == 0 {
                    panic!("job {i} panicked");
                }
            });
        }
        pool.wait_idle();
        let stats = pool.stats();
        assert_eq!(stats.completed, 6);
        assert_eq!(stats.panicked, 3);
        // Workers survived: the pool still runs jobs.
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        pool.execute(move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn pool_shutdown_drains_queue() {
        let pool = WorkerPool::new(PoolConfig {
            workers: 1,
            queue_depth: 16,
            name: "drain".into(),
        });
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                std::thread::sleep(Duration::from_millis(1));
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 8);
        // Post-shutdown submissions are rejected, not lost silently.
        assert!(pool.try_execute(|| {}).is_err());
    }

    #[test]
    fn pool_resize_grows_and_shrinks() {
        let pool = WorkerPool::new(PoolConfig {
            workers: 2,
            queue_depth: 64,
            name: "resize".into(),
        });
        assert_eq!(pool.workers(), 2);
        assert_eq!(pool.resize(6), 6);
        assert_eq!(pool.workers(), 6);
        // Grown width is real: six gated jobs all run concurrently.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let running = Arc::new(AtomicUsize::new(0));
        for _ in 0..6 {
            let gate = Arc::clone(&gate);
            let running = Arc::clone(&running);
            pool.execute(move || {
                running.fetch_add(1, Ordering::Relaxed);
                let (lock, cv) = &*gate;
                let mut open = lock.lock();
                while !*open {
                    open = cv.wait(open);
                }
            });
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while running.load(Ordering::Relaxed) < 6 {
            assert!(std::time::Instant::now() < deadline, "workers never grew");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(pool.active(), 6);
        {
            let (lock, cv) = &*gate;
            *lock.lock() = true;
            cv.notify_all();
        }
        pool.wait_idle();
        // Shrink: surplus idle workers retire.
        assert_eq!(pool.resize(1), 1);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.alive() > 1 {
            assert!(
                std::time::Instant::now() < deadline,
                "workers never retired"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        // The survivor still serves jobs.
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        pool.execute(move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
        // Resize clamps to at least one worker.
        assert_eq!(pool.resize(0), 1);
    }

    #[test]
    fn pool_resize_does_not_drop_in_flight_jobs() {
        let pool = WorkerPool::new(PoolConfig {
            workers: 4,
            queue_depth: 64,
            name: "shrink".into(),
        });
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                std::thread::sleep(Duration::from_millis(1));
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.resize(1);
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 32);
        assert_eq!(pool.stats().completed, 32);
        pool.shutdown();
    }

    #[test]
    fn pool_scope_fan_out_orders_and_counts() {
        let pool = WorkerPool::with_workers(4);
        let results: Vec<usize> = pool
            .scope_fan_out(9, |i| i + 100)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(results, (100..109).collect::<Vec<_>>());
        assert_eq!(pool.stats().submitted, 9);
        assert_eq!(pool.stats().completed, 9);
    }
}
