//! Non-poisoning synchronization primitives.
//!
//! The workspace's locks guard plain data (counters, caches, jars); a
//! panic while holding one should not wedge every later accessor behind
//! a `PoisonError`. These wrappers keep the std primitives but recover
//! the guard on poison, which is exactly the calling convention the
//! code was written against.

use std::fmt;

/// A mutual-exclusion lock whose [`lock`](Mutex::lock) never fails.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Poison from a
    /// panicked holder is discarded: the data is returned as-is.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock whose accessors never fail.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock guarding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
