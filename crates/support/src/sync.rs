//! Non-poisoning synchronization primitives.
//!
//! The workspace's locks guard plain data (counters, caches, jars); a
//! panic while holding one should not wedge every later accessor behind
//! a `PoisonError`. These wrappers keep the std primitives but recover
//! the guard on poison, which is exactly the calling convention the
//! code was written against.

use std::fmt;
use std::time::{Duration, Instant};

/// A mutual-exclusion lock whose [`lock`](Mutex::lock) never fails.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Poison from a
    /// panicked holder is discarded: the data is returned as-is.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock whose accessors never fail.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock guarding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

/// A condition variable paired with [`Mutex`]: waits recover from
/// poison exactly the way the lock itself does.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Condvar {
        Condvar::default()
    }

    /// Releases `guard` and blocks until notified, then reacquires the
    /// lock. Subject to spurious wakeups: re-check the predicate.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.inner
            .wait(guard)
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Like [`Self::wait`] with an upper bound; the boolean reports
    /// whether the wait timed out rather than being notified.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let (guard, result) = self
            .inner
            .wait_timeout(guard, timeout)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        (guard, result.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A write-once cell that threads can block on — the rendezvous point
/// of a single-flight operation. One thread [`set`](OnceValue::set)s
/// the value exactly once; any number of threads [`wait`](OnceValue::wait)
/// (or [`wait_for`](OnceValue::wait_for)) until it lands and clone it
/// out.
pub struct OnceValue<T> {
    slot: Mutex<Option<T>>,
    ready: Condvar,
}

impl<T> Default for OnceValue<T> {
    fn default() -> Self {
        OnceValue {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        }
    }
}

impl<T: Clone> OnceValue<T> {
    /// Creates an empty cell.
    pub fn new() -> OnceValue<T> {
        OnceValue::default()
    }

    /// Publishes `value` and wakes all waiters. The first write wins;
    /// returns `false` (dropping `value`) when a value already landed.
    pub fn set(&self, value: T) -> bool {
        let mut slot = self.slot.lock();
        if slot.is_some() {
            return false;
        }
        *slot = Some(value);
        drop(slot);
        self.ready.notify_all();
        true
    }

    /// The value, if one has been published.
    pub fn peek(&self) -> Option<T> {
        self.slot.lock().clone()
    }

    /// Blocks until a value is published.
    pub fn wait(&self) -> T {
        let mut slot = self.slot.lock();
        loop {
            if let Some(value) = slot.as_ref() {
                return value.clone();
            }
            slot = self.ready.wait(slot);
        }
    }

    /// Blocks until a value is published or `timeout` elapses; `None`
    /// on timeout. Spurious wakeups are absorbed against a deadline.
    pub fn wait_for(&self, timeout: Duration) -> Option<T> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.slot.lock();
        loop {
            if let Some(value) = slot.as_ref() {
                return Some(value.clone());
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return None;
            }
            let (next, _timed_out) = self.ready.wait_timeout(slot, remaining);
            slot = next;
        }
    }
}

impl<T: Clone + fmt::Debug> fmt::Debug for OnceValue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("OnceValue").field(&self.peek()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = std::sync::Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                ready = cv.wait(ready);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        waiter.join().unwrap();
    }

    #[test]
    fn condvar_wait_timeout_reports_timeout() {
        let lock = Mutex::new(());
        let cv = Condvar::new();
        let guard = lock.lock();
        let (_guard, timed_out) = cv.wait_timeout(guard, Duration::from_millis(5));
        assert!(timed_out);
    }

    #[test]
    fn once_value_first_write_wins() {
        let cell = OnceValue::new();
        assert_eq!(cell.peek(), None);
        assert!(cell.set(1));
        assert!(!cell.set(2));
        assert_eq!(cell.peek(), Some(1));
        assert_eq!(cell.wait(), 1);
        assert_eq!(cell.wait_for(Duration::ZERO), Some(1));
    }

    #[test]
    fn once_value_unblocks_waiters() {
        let cell = std::sync::Arc::new(OnceValue::new());
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let cell = std::sync::Arc::clone(&cell);
                std::thread::spawn(move || cell.wait())
            })
            .collect();
        std::thread::sleep(Duration::from_millis(10));
        cell.set("done");
        for w in waiters {
            assert_eq!(w.join().unwrap(), "done");
        }
    }

    #[test]
    fn once_value_wait_for_times_out_when_empty() {
        let cell: OnceValue<u8> = OnceValue::new();
        let start = Instant::now();
        assert_eq!(cell.wait_for(Duration::from_millis(20)), None);
        assert!(start.elapsed() >= Duration::from_millis(20));
    }
}
