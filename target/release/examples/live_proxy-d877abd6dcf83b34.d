/root/repo/target/release/examples/live_proxy-d877abd6dcf83b34.d: examples/live_proxy.rs

/root/repo/target/release/examples/live_proxy-d877abd6dcf83b34: examples/live_proxy.rs

examples/live_proxy.rs:
