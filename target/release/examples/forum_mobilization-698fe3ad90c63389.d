/root/repo/target/release/examples/forum_mobilization-698fe3ad90c63389.d: examples/forum_mobilization.rs

/root/repo/target/release/examples/forum_mobilization-698fe3ad90c63389: examples/forum_mobilization.rs

examples/forum_mobilization.rs:
