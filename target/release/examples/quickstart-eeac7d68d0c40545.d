/root/repo/target/release/examples/quickstart-eeac7d68d0c40545.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-eeac7d68d0c40545: examples/quickstart.rs

examples/quickstart.rs:
