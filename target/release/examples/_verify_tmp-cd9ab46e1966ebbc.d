/root/repo/target/release/examples/_verify_tmp-cd9ab46e1966ebbc.d: examples/_verify_tmp.rs

/root/repo/target/release/examples/_verify_tmp-cd9ab46e1966ebbc: examples/_verify_tmp.rs

examples/_verify_tmp.rs:
