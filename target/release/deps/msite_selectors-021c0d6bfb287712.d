/root/repo/target/release/deps/msite_selectors-021c0d6bfb287712.d: crates/selectors/src/lib.rs crates/selectors/src/css.rs crates/selectors/src/query.rs crates/selectors/src/xpath.rs

/root/repo/target/release/deps/libmsite_selectors-021c0d6bfb287712.rlib: crates/selectors/src/lib.rs crates/selectors/src/css.rs crates/selectors/src/query.rs crates/selectors/src/xpath.rs

/root/repo/target/release/deps/libmsite_selectors-021c0d6bfb287712.rmeta: crates/selectors/src/lib.rs crates/selectors/src/css.rs crates/selectors/src/query.rs crates/selectors/src/xpath.rs

crates/selectors/src/lib.rs:
crates/selectors/src/css.rs:
crates/selectors/src/query.rs:
crates/selectors/src/xpath.rs:
