/root/repo/target/release/deps/msite_html-35448bd541a9e1df.d: crates/html/src/lib.rs crates/html/src/dom.rs crates/html/src/entities.rs crates/html/src/parser.rs crates/html/src/serialize.rs crates/html/src/text.rs crates/html/src/tidy.rs crates/html/src/tokenizer.rs

/root/repo/target/release/deps/libmsite_html-35448bd541a9e1df.rlib: crates/html/src/lib.rs crates/html/src/dom.rs crates/html/src/entities.rs crates/html/src/parser.rs crates/html/src/serialize.rs crates/html/src/text.rs crates/html/src/tidy.rs crates/html/src/tokenizer.rs

/root/repo/target/release/deps/libmsite_html-35448bd541a9e1df.rmeta: crates/html/src/lib.rs crates/html/src/dom.rs crates/html/src/entities.rs crates/html/src/parser.rs crates/html/src/serialize.rs crates/html/src/text.rs crates/html/src/tidy.rs crates/html/src/tokenizer.rs

crates/html/src/lib.rs:
crates/html/src/dom.rs:
crates/html/src/entities.rs:
crates/html/src/parser.rs:
crates/html/src/serialize.rs:
crates/html/src/text.rs:
crates/html/src/tidy.rs:
crates/html/src/tokenizer.rs:
