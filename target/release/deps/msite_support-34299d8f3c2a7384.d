/root/repo/target/release/deps/msite_support-34299d8f3c2a7384.d: crates/support/src/lib.rs crates/support/src/benchkit.rs crates/support/src/bytes.rs crates/support/src/json.rs crates/support/src/prop.rs crates/support/src/sync.rs crates/support/src/thread.rs

/root/repo/target/release/deps/libmsite_support-34299d8f3c2a7384.rlib: crates/support/src/lib.rs crates/support/src/benchkit.rs crates/support/src/bytes.rs crates/support/src/json.rs crates/support/src/prop.rs crates/support/src/sync.rs crates/support/src/thread.rs

/root/repo/target/release/deps/libmsite_support-34299d8f3c2a7384.rmeta: crates/support/src/lib.rs crates/support/src/benchkit.rs crates/support/src/bytes.rs crates/support/src/json.rs crates/support/src/prop.rs crates/support/src/sync.rs crates/support/src/thread.rs

crates/support/src/lib.rs:
crates/support/src/benchkit.rs:
crates/support/src/bytes.rs:
crates/support/src/json.rs:
crates/support/src/prop.rs:
crates/support/src/sync.rs:
crates/support/src/thread.rs:
