/root/repo/target/release/deps/experiments-90f62bdefb522053.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-90f62bdefb522053: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
