/root/repo/target/release/deps/msite_device-9eda07adc4317edc.d: crates/device/src/lib.rs crates/device/src/profile.rs crates/device/src/simulate.rs

/root/repo/target/release/deps/libmsite_device-9eda07adc4317edc.rlib: crates/device/src/lib.rs crates/device/src/profile.rs crates/device/src/simulate.rs

/root/repo/target/release/deps/libmsite_device-9eda07adc4317edc.rmeta: crates/device/src/lib.rs crates/device/src/profile.rs crates/device/src/simulate.rs

crates/device/src/lib.rs:
crates/device/src/profile.rs:
crates/device/src/simulate.rs:
