/root/repo/target/release/deps/msite_bench-9413abb1b8a84160.d: crates/bench/src/lib.rs crates/bench/src/fixtures.rs crates/bench/src/report.rs crates/bench/src/capacity.rs crates/bench/src/claims.rs crates/bench/src/fig6.rs crates/bench/src/fig7.rs crates/bench/src/table1.rs

/root/repo/target/release/deps/libmsite_bench-9413abb1b8a84160.rlib: crates/bench/src/lib.rs crates/bench/src/fixtures.rs crates/bench/src/report.rs crates/bench/src/capacity.rs crates/bench/src/claims.rs crates/bench/src/fig6.rs crates/bench/src/fig7.rs crates/bench/src/table1.rs

/root/repo/target/release/deps/libmsite_bench-9413abb1b8a84160.rmeta: crates/bench/src/lib.rs crates/bench/src/fixtures.rs crates/bench/src/report.rs crates/bench/src/capacity.rs crates/bench/src/claims.rs crates/bench/src/fig6.rs crates/bench/src/fig7.rs crates/bench/src/table1.rs

crates/bench/src/lib.rs:
crates/bench/src/fixtures.rs:
crates/bench/src/report.rs:
crates/bench/src/capacity.rs:
crates/bench/src/claims.rs:
crates/bench/src/fig6.rs:
crates/bench/src/fig7.rs:
crates/bench/src/table1.rs:
