/root/repo/target/release/deps/msite_sites-eae8c4408d40ade4.d: crates/sites/src/lib.rs crates/sites/src/classifieds.rs crates/sites/src/forum.rs crates/sites/src/lorem.rs crates/sites/src/manifest.rs crates/sites/src/template.rs

/root/repo/target/release/deps/libmsite_sites-eae8c4408d40ade4.rlib: crates/sites/src/lib.rs crates/sites/src/classifieds.rs crates/sites/src/forum.rs crates/sites/src/lorem.rs crates/sites/src/manifest.rs crates/sites/src/template.rs

/root/repo/target/release/deps/libmsite_sites-eae8c4408d40ade4.rmeta: crates/sites/src/lib.rs crates/sites/src/classifieds.rs crates/sites/src/forum.rs crates/sites/src/lorem.rs crates/sites/src/manifest.rs crates/sites/src/template.rs

crates/sites/src/lib.rs:
crates/sites/src/classifieds.rs:
crates/sites/src/forum.rs:
crates/sites/src/lorem.rs:
crates/sites/src/manifest.rs:
crates/sites/src/template.rs:
