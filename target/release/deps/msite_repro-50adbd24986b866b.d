/root/repo/target/release/deps/msite_repro-50adbd24986b866b.d: src/lib.rs

/root/repo/target/release/deps/libmsite_repro-50adbd24986b866b.rlib: src/lib.rs

/root/repo/target/release/deps/libmsite_repro-50adbd24986b866b.rmeta: src/lib.rs

src/lib.rs:
