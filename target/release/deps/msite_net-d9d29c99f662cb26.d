/root/repo/target/release/deps/msite_net-d9d29c99f662cb26.d: crates/net/src/lib.rs crates/net/src/auth.rs crates/net/src/cookies.rs crates/net/src/http.rs crates/net/src/link.rs crates/net/src/origin.rs crates/net/src/rng.rs crates/net/src/server.rs crates/net/src/url.rs

/root/repo/target/release/deps/libmsite_net-d9d29c99f662cb26.rlib: crates/net/src/lib.rs crates/net/src/auth.rs crates/net/src/cookies.rs crates/net/src/http.rs crates/net/src/link.rs crates/net/src/origin.rs crates/net/src/rng.rs crates/net/src/server.rs crates/net/src/url.rs

/root/repo/target/release/deps/libmsite_net-d9d29c99f662cb26.rmeta: crates/net/src/lib.rs crates/net/src/auth.rs crates/net/src/cookies.rs crates/net/src/http.rs crates/net/src/link.rs crates/net/src/origin.rs crates/net/src/rng.rs crates/net/src/server.rs crates/net/src/url.rs

crates/net/src/lib.rs:
crates/net/src/auth.rs:
crates/net/src/cookies.rs:
crates/net/src/http.rs:
crates/net/src/link.rs:
crates/net/src/origin.rs:
crates/net/src/rng.rs:
crates/net/src/server.rs:
crates/net/src/url.rs:
