/root/repo/target/release/deps/msite_render-8770157623464dd8.d: crates/render/src/lib.rs crates/render/src/browser.rs crates/render/src/canvas.rs crates/render/src/css.rs crates/render/src/font.rs crates/render/src/geom.rs crates/render/src/image.rs crates/render/src/layout.rs crates/render/src/paint.rs crates/render/src/png.rs

/root/repo/target/release/deps/libmsite_render-8770157623464dd8.rlib: crates/render/src/lib.rs crates/render/src/browser.rs crates/render/src/canvas.rs crates/render/src/css.rs crates/render/src/font.rs crates/render/src/geom.rs crates/render/src/image.rs crates/render/src/layout.rs crates/render/src/paint.rs crates/render/src/png.rs

/root/repo/target/release/deps/libmsite_render-8770157623464dd8.rmeta: crates/render/src/lib.rs crates/render/src/browser.rs crates/render/src/canvas.rs crates/render/src/css.rs crates/render/src/font.rs crates/render/src/geom.rs crates/render/src/image.rs crates/render/src/layout.rs crates/render/src/paint.rs crates/render/src/png.rs

crates/render/src/lib.rs:
crates/render/src/browser.rs:
crates/render/src/canvas.rs:
crates/render/src/css.rs:
crates/render/src/font.rs:
crates/render/src/geom.rs:
crates/render/src/image.rs:
crates/render/src/layout.rs:
crates/render/src/paint.rs:
crates/render/src/png.rs:
