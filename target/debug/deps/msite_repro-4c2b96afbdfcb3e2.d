/root/repo/target/debug/deps/msite_repro-4c2b96afbdfcb3e2.d: src/lib.rs

/root/repo/target/debug/deps/libmsite_repro-4c2b96afbdfcb3e2.rlib: src/lib.rs

/root/repo/target/debug/deps/libmsite_repro-4c2b96afbdfcb3e2.rmeta: src/lib.rs

src/lib.rs:
