/root/repo/target/debug/deps/proptests-982356281b1d89d0.d: crates/render/tests/proptests.rs

/root/repo/target/debug/deps/proptests-982356281b1d89d0: crates/render/tests/proptests.rs

crates/render/tests/proptests.rs:
