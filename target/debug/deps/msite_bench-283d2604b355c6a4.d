/root/repo/target/debug/deps/msite_bench-283d2604b355c6a4.d: crates/bench/src/lib.rs crates/bench/src/fixtures.rs crates/bench/src/report.rs crates/bench/src/capacity.rs crates/bench/src/claims.rs crates/bench/src/fig6.rs crates/bench/src/fig7.rs crates/bench/src/table1.rs

/root/repo/target/debug/deps/msite_bench-283d2604b355c6a4: crates/bench/src/lib.rs crates/bench/src/fixtures.rs crates/bench/src/report.rs crates/bench/src/capacity.rs crates/bench/src/claims.rs crates/bench/src/fig6.rs crates/bench/src/fig7.rs crates/bench/src/table1.rs

crates/bench/src/lib.rs:
crates/bench/src/fixtures.rs:
crates/bench/src/report.rs:
crates/bench/src/capacity.rs:
crates/bench/src/claims.rs:
crates/bench/src/fig6.rs:
crates/bench/src/fig7.rs:
crates/bench/src/table1.rs:
