/root/repo/target/debug/deps/cache_amortization-11e8f5a383463cb5.d: crates/bench/benches/cache_amortization.rs

/root/repo/target/debug/deps/cache_amortization-11e8f5a383463cb5: crates/bench/benches/cache_amortization.rs

crates/bench/benches/cache_amortization.rs:
