/root/repo/target/debug/deps/msite_html-724ea2946110f97d.d: crates/html/src/lib.rs crates/html/src/dom.rs crates/html/src/entities.rs crates/html/src/parser.rs crates/html/src/serialize.rs crates/html/src/text.rs crates/html/src/tidy.rs crates/html/src/tokenizer.rs

/root/repo/target/debug/deps/libmsite_html-724ea2946110f97d.rlib: crates/html/src/lib.rs crates/html/src/dom.rs crates/html/src/entities.rs crates/html/src/parser.rs crates/html/src/serialize.rs crates/html/src/text.rs crates/html/src/tidy.rs crates/html/src/tokenizer.rs

/root/repo/target/debug/deps/libmsite_html-724ea2946110f97d.rmeta: crates/html/src/lib.rs crates/html/src/dom.rs crates/html/src/entities.rs crates/html/src/parser.rs crates/html/src/serialize.rs crates/html/src/text.rs crates/html/src/tidy.rs crates/html/src/tokenizer.rs

crates/html/src/lib.rs:
crates/html/src/dom.rs:
crates/html/src/entities.rs:
crates/html/src/parser.rs:
crates/html/src/serialize.rs:
crates/html/src/text.rs:
crates/html/src/tidy.rs:
crates/html/src/tokenizer.rs:
