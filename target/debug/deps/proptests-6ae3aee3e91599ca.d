/root/repo/target/debug/deps/proptests-6ae3aee3e91599ca.d: crates/selectors/tests/proptests.rs

/root/repo/target/debug/deps/proptests-6ae3aee3e91599ca: crates/selectors/tests/proptests.rs

crates/selectors/tests/proptests.rs:
