/root/repo/target/debug/deps/msite_selectors-2d198c32f0752ecf.d: crates/selectors/src/lib.rs crates/selectors/src/css.rs crates/selectors/src/query.rs crates/selectors/src/xpath.rs

/root/repo/target/debug/deps/libmsite_selectors-2d198c32f0752ecf.rlib: crates/selectors/src/lib.rs crates/selectors/src/css.rs crates/selectors/src/query.rs crates/selectors/src/xpath.rs

/root/repo/target/debug/deps/libmsite_selectors-2d198c32f0752ecf.rmeta: crates/selectors/src/lib.rs crates/selectors/src/css.rs crates/selectors/src/query.rs crates/selectors/src/xpath.rs

crates/selectors/src/lib.rs:
crates/selectors/src/css.rs:
crates/selectors/src/query.rs:
crates/selectors/src/xpath.rs:
