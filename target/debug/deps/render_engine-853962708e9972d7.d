/root/repo/target/debug/deps/render_engine-853962708e9972d7.d: crates/bench/benches/render_engine.rs

/root/repo/target/debug/deps/render_engine-853962708e9972d7: crates/bench/benches/render_engine.rs

crates/bench/benches/render_engine.rs:
