/root/repo/target/debug/deps/image_fidelity-f173f4b2a1986b72.d: crates/bench/benches/image_fidelity.rs

/root/repo/target/debug/deps/image_fidelity-f173f4b2a1986b72: crates/bench/benches/image_fidelity.rs

crates/bench/benches/image_fidelity.rs:
