/root/repo/target/debug/deps/msite-53f0337a4e94968f.d: crates/core/src/lib.rs crates/core/src/admin.rs crates/core/src/ajax.rs crates/core/src/attributes.rs crates/core/src/baseline.rs crates/core/src/cache.rs crates/core/src/dsl.rs crates/core/src/engine.rs crates/core/src/pipeline/mod.rs crates/core/src/pipeline/attrs.rs crates/core/src/pipeline/dom.rs crates/core/src/pipeline/edit.rs crates/core/src/pipeline/emit.rs crates/core/src/pipeline/fetch.rs crates/core/src/pipeline/filter.rs crates/core/src/pipeline/render.rs crates/core/src/pipeline/stage.rs crates/core/src/proxy.rs crates/core/src/search.rs crates/core/src/session.rs crates/core/src/snapshot.rs

/root/repo/target/debug/deps/libmsite-53f0337a4e94968f.rlib: crates/core/src/lib.rs crates/core/src/admin.rs crates/core/src/ajax.rs crates/core/src/attributes.rs crates/core/src/baseline.rs crates/core/src/cache.rs crates/core/src/dsl.rs crates/core/src/engine.rs crates/core/src/pipeline/mod.rs crates/core/src/pipeline/attrs.rs crates/core/src/pipeline/dom.rs crates/core/src/pipeline/edit.rs crates/core/src/pipeline/emit.rs crates/core/src/pipeline/fetch.rs crates/core/src/pipeline/filter.rs crates/core/src/pipeline/render.rs crates/core/src/pipeline/stage.rs crates/core/src/proxy.rs crates/core/src/search.rs crates/core/src/session.rs crates/core/src/snapshot.rs

/root/repo/target/debug/deps/libmsite-53f0337a4e94968f.rmeta: crates/core/src/lib.rs crates/core/src/admin.rs crates/core/src/ajax.rs crates/core/src/attributes.rs crates/core/src/baseline.rs crates/core/src/cache.rs crates/core/src/dsl.rs crates/core/src/engine.rs crates/core/src/pipeline/mod.rs crates/core/src/pipeline/attrs.rs crates/core/src/pipeline/dom.rs crates/core/src/pipeline/edit.rs crates/core/src/pipeline/emit.rs crates/core/src/pipeline/fetch.rs crates/core/src/pipeline/filter.rs crates/core/src/pipeline/render.rs crates/core/src/pipeline/stage.rs crates/core/src/proxy.rs crates/core/src/search.rs crates/core/src/session.rs crates/core/src/snapshot.rs

crates/core/src/lib.rs:
crates/core/src/admin.rs:
crates/core/src/ajax.rs:
crates/core/src/attributes.rs:
crates/core/src/baseline.rs:
crates/core/src/cache.rs:
crates/core/src/dsl.rs:
crates/core/src/engine.rs:
crates/core/src/pipeline/mod.rs:
crates/core/src/pipeline/attrs.rs:
crates/core/src/pipeline/dom.rs:
crates/core/src/pipeline/edit.rs:
crates/core/src/pipeline/emit.rs:
crates/core/src/pipeline/fetch.rs:
crates/core/src/pipeline/filter.rs:
crates/core/src/pipeline/render.rs:
crates/core/src/pipeline/stage.rs:
crates/core/src/proxy.rs:
crates/core/src/search.rs:
crates/core/src/session.rs:
crates/core/src/snapshot.rs:
