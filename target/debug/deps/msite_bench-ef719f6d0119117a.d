/root/repo/target/debug/deps/msite_bench-ef719f6d0119117a.d: crates/bench/src/lib.rs crates/bench/src/fixtures.rs crates/bench/src/report.rs crates/bench/src/capacity.rs crates/bench/src/claims.rs crates/bench/src/fig6.rs crates/bench/src/fig7.rs crates/bench/src/table1.rs

/root/repo/target/debug/deps/libmsite_bench-ef719f6d0119117a.rlib: crates/bench/src/lib.rs crates/bench/src/fixtures.rs crates/bench/src/report.rs crates/bench/src/capacity.rs crates/bench/src/claims.rs crates/bench/src/fig6.rs crates/bench/src/fig7.rs crates/bench/src/table1.rs

/root/repo/target/debug/deps/libmsite_bench-ef719f6d0119117a.rmeta: crates/bench/src/lib.rs crates/bench/src/fixtures.rs crates/bench/src/report.rs crates/bench/src/capacity.rs crates/bench/src/claims.rs crates/bench/src/fig6.rs crates/bench/src/fig7.rs crates/bench/src/table1.rs

crates/bench/src/lib.rs:
crates/bench/src/fixtures.rs:
crates/bench/src/report.rs:
crates/bench/src/capacity.rs:
crates/bench/src/claims.rs:
crates/bench/src/fig6.rs:
crates/bench/src/fig7.rs:
crates/bench/src/table1.rs:
