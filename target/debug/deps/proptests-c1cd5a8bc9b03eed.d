/root/repo/target/debug/deps/proptests-c1cd5a8bc9b03eed.d: crates/net/tests/proptests.rs

/root/repo/target/debug/deps/proptests-c1cd5a8bc9b03eed: crates/net/tests/proptests.rs

crates/net/tests/proptests.rs:
