/root/repo/target/debug/deps/proptests-0536f87a64948c32.d: crates/html/tests/proptests.rs

/root/repo/target/debug/deps/proptests-0536f87a64948c32: crates/html/tests/proptests.rs

crates/html/tests/proptests.rs:
