/root/repo/target/debug/deps/msite_selectors-00ac64814481bb62.d: crates/selectors/src/lib.rs crates/selectors/src/css.rs crates/selectors/src/query.rs crates/selectors/src/xpath.rs

/root/repo/target/debug/deps/msite_selectors-00ac64814481bb62: crates/selectors/src/lib.rs crates/selectors/src/css.rs crates/selectors/src/query.rs crates/selectors/src/xpath.rs

crates/selectors/src/lib.rs:
crates/selectors/src/css.rs:
crates/selectors/src/query.rs:
crates/selectors/src/xpath.rs:
