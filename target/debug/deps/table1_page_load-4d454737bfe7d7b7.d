/root/repo/target/debug/deps/table1_page_load-4d454737bfe7d7b7.d: crates/bench/benches/table1_page_load.rs

/root/repo/target/debug/deps/table1_page_load-4d454737bfe7d7b7: crates/bench/benches/table1_page_load.rs

crates/bench/benches/table1_page_load.rs:
