/root/repo/target/debug/deps/fig7_scalability-9c6ac3eb99c97d5a.d: crates/bench/benches/fig7_scalability.rs

/root/repo/target/debug/deps/fig7_scalability-9c6ac3eb99c97d5a: crates/bench/benches/fig7_scalability.rs

crates/bench/benches/fig7_scalability.rs:
