/root/repo/target/debug/deps/fig6_ajax-0512ca0862d6bc66.d: crates/bench/benches/fig6_ajax.rs

/root/repo/target/debug/deps/fig6_ajax-0512ca0862d6bc66: crates/bench/benches/fig6_ajax.rs

crates/bench/benches/fig6_ajax.rs:
