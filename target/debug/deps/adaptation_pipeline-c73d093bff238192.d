/root/repo/target/debug/deps/adaptation_pipeline-c73d093bff238192.d: crates/bench/benches/adaptation_pipeline.rs

/root/repo/target/debug/deps/adaptation_pipeline-c73d093bff238192: crates/bench/benches/adaptation_pipeline.rs

crates/bench/benches/adaptation_pipeline.rs:
