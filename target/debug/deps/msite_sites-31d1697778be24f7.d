/root/repo/target/debug/deps/msite_sites-31d1697778be24f7.d: crates/sites/src/lib.rs crates/sites/src/classifieds.rs crates/sites/src/forum.rs crates/sites/src/lorem.rs crates/sites/src/manifest.rs crates/sites/src/template.rs

/root/repo/target/debug/deps/msite_sites-31d1697778be24f7: crates/sites/src/lib.rs crates/sites/src/classifieds.rs crates/sites/src/forum.rs crates/sites/src/lorem.rs crates/sites/src/manifest.rs crates/sites/src/template.rs

crates/sites/src/lib.rs:
crates/sites/src/classifieds.rs:
crates/sites/src/forum.rs:
crates/sites/src/lorem.rs:
crates/sites/src/manifest.rs:
crates/sites/src/template.rs:
