/root/repo/target/debug/deps/forum_adaptation-231ff3e00aba949c.d: tests/forum_adaptation.rs

/root/repo/target/debug/deps/forum_adaptation-231ff3e00aba949c: tests/forum_adaptation.rs

tests/forum_adaptation.rs:
