/root/repo/target/debug/deps/msite_render-3ad09b370081023d.d: crates/render/src/lib.rs crates/render/src/browser.rs crates/render/src/canvas.rs crates/render/src/css.rs crates/render/src/font.rs crates/render/src/geom.rs crates/render/src/image.rs crates/render/src/layout.rs crates/render/src/paint.rs crates/render/src/png.rs

/root/repo/target/debug/deps/libmsite_render-3ad09b370081023d.rlib: crates/render/src/lib.rs crates/render/src/browser.rs crates/render/src/canvas.rs crates/render/src/css.rs crates/render/src/font.rs crates/render/src/geom.rs crates/render/src/image.rs crates/render/src/layout.rs crates/render/src/paint.rs crates/render/src/png.rs

/root/repo/target/debug/deps/libmsite_render-3ad09b370081023d.rmeta: crates/render/src/lib.rs crates/render/src/browser.rs crates/render/src/canvas.rs crates/render/src/css.rs crates/render/src/font.rs crates/render/src/geom.rs crates/render/src/image.rs crates/render/src/layout.rs crates/render/src/paint.rs crates/render/src/png.rs

crates/render/src/lib.rs:
crates/render/src/browser.rs:
crates/render/src/canvas.rs:
crates/render/src/css.rs:
crates/render/src/font.rs:
crates/render/src/geom.rs:
crates/render/src/image.rs:
crates/render/src/layout.rs:
crates/render/src/paint.rs:
crates/render/src/png.rs:
