/root/repo/target/debug/deps/msite_sites-6a8871d10df68c81.d: crates/sites/src/lib.rs crates/sites/src/classifieds.rs crates/sites/src/forum.rs crates/sites/src/lorem.rs crates/sites/src/manifest.rs crates/sites/src/template.rs

/root/repo/target/debug/deps/libmsite_sites-6a8871d10df68c81.rlib: crates/sites/src/lib.rs crates/sites/src/classifieds.rs crates/sites/src/forum.rs crates/sites/src/lorem.rs crates/sites/src/manifest.rs crates/sites/src/template.rs

/root/repo/target/debug/deps/libmsite_sites-6a8871d10df68c81.rmeta: crates/sites/src/lib.rs crates/sites/src/classifieds.rs crates/sites/src/forum.rs crates/sites/src/lorem.rs crates/sites/src/manifest.rs crates/sites/src/template.rs

crates/sites/src/lib.rs:
crates/sites/src/classifieds.rs:
crates/sites/src/forum.rs:
crates/sites/src/lorem.rs:
crates/sites/src/manifest.rs:
crates/sites/src/template.rs:
