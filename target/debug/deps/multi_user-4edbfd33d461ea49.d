/root/repo/target/debug/deps/multi_user-4edbfd33d461ea49.d: tests/multi_user.rs

/root/repo/target/debug/deps/multi_user-4edbfd33d461ea49: tests/multi_user.rs

tests/multi_user.rs:
