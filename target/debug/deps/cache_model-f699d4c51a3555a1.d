/root/repo/target/debug/deps/cache_model-f699d4c51a3555a1.d: crates/core/tests/cache_model.rs

/root/repo/target/debug/deps/cache_model-f699d4c51a3555a1: crates/core/tests/cache_model.rs

crates/core/tests/cache_model.rs:
