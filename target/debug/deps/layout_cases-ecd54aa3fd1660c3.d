/root/repo/target/debug/deps/layout_cases-ecd54aa3fd1660c3.d: crates/render/tests/layout_cases.rs

/root/repo/target/debug/deps/layout_cases-ecd54aa3fd1660c3: crates/render/tests/layout_cases.rs

crates/render/tests/layout_cases.rs:
