/root/repo/target/debug/deps/msite_device-518c63a604eff8e0.d: crates/device/src/lib.rs crates/device/src/profile.rs crates/device/src/simulate.rs

/root/repo/target/debug/deps/msite_device-518c63a604eff8e0: crates/device/src/lib.rs crates/device/src/profile.rs crates/device/src/simulate.rs

crates/device/src/lib.rs:
crates/device/src/profile.rs:
crates/device/src/simulate.rs:
