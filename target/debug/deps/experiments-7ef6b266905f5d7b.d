/root/repo/target/debug/deps/experiments-7ef6b266905f5d7b.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-7ef6b266905f5d7b: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
