/root/repo/target/debug/deps/site_workload-8b4b8aa433007197.d: tests/site_workload.rs

/root/repo/target/debug/deps/site_workload-8b4b8aa433007197: tests/site_workload.rs

tests/site_workload.rs:
