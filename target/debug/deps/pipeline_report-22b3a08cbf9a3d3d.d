/root/repo/target/debug/deps/pipeline_report-22b3a08cbf9a3d3d.d: crates/core/tests/pipeline_report.rs

/root/repo/target/debug/deps/pipeline_report-22b3a08cbf9a3d3d: crates/core/tests/pipeline_report.rs

crates/core/tests/pipeline_report.rs:
