/root/repo/target/debug/deps/msite_repro-4d00185680eae137.d: src/lib.rs

/root/repo/target/debug/deps/msite_repro-4d00185680eae137: src/lib.rs

src/lib.rs:
