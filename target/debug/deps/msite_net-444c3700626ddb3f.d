/root/repo/target/debug/deps/msite_net-444c3700626ddb3f.d: crates/net/src/lib.rs crates/net/src/auth.rs crates/net/src/cookies.rs crates/net/src/http.rs crates/net/src/link.rs crates/net/src/origin.rs crates/net/src/rng.rs crates/net/src/server.rs crates/net/src/url.rs

/root/repo/target/debug/deps/msite_net-444c3700626ddb3f: crates/net/src/lib.rs crates/net/src/auth.rs crates/net/src/cookies.rs crates/net/src/http.rs crates/net/src/link.rs crates/net/src/origin.rs crates/net/src/rng.rs crates/net/src/server.rs crates/net/src/url.rs

crates/net/src/lib.rs:
crates/net/src/auth.rs:
crates/net/src/cookies.rs:
crates/net/src/http.rs:
crates/net/src/link.rs:
crates/net/src/origin.rs:
crates/net/src/rng.rs:
crates/net/src/server.rs:
crates/net/src/url.rs:
