/root/repo/target/debug/deps/selector_matching-4a06bb8080abcf0d.d: crates/bench/benches/selector_matching.rs

/root/repo/target/debug/deps/selector_matching-4a06bb8080abcf0d: crates/bench/benches/selector_matching.rs

crates/bench/benches/selector_matching.rs:
