/root/repo/target/debug/deps/msite_support-5e2bfa2e5d3228bb.d: crates/support/src/lib.rs crates/support/src/benchkit.rs crates/support/src/bytes.rs crates/support/src/json.rs crates/support/src/prop.rs crates/support/src/sync.rs crates/support/src/thread.rs

/root/repo/target/debug/deps/libmsite_support-5e2bfa2e5d3228bb.rlib: crates/support/src/lib.rs crates/support/src/benchkit.rs crates/support/src/bytes.rs crates/support/src/json.rs crates/support/src/prop.rs crates/support/src/sync.rs crates/support/src/thread.rs

/root/repo/target/debug/deps/libmsite_support-5e2bfa2e5d3228bb.rmeta: crates/support/src/lib.rs crates/support/src/benchkit.rs crates/support/src/bytes.rs crates/support/src/json.rs crates/support/src/prop.rs crates/support/src/sync.rs crates/support/src/thread.rs

crates/support/src/lib.rs:
crates/support/src/benchkit.rs:
crates/support/src/bytes.rs:
crates/support/src/json.rs:
crates/support/src/prop.rs:
crates/support/src/sync.rs:
crates/support/src/thread.rs:
