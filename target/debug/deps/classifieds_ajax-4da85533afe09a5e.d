/root/repo/target/debug/deps/classifieds_ajax-4da85533afe09a5e.d: tests/classifieds_ajax.rs

/root/repo/target/debug/deps/classifieds_ajax-4da85533afe09a5e: tests/classifieds_ajax.rs

tests/classifieds_ajax.rs:
