/root/repo/target/debug/deps/msite_net-b9366513fef54f39.d: crates/net/src/lib.rs crates/net/src/auth.rs crates/net/src/cookies.rs crates/net/src/http.rs crates/net/src/link.rs crates/net/src/origin.rs crates/net/src/rng.rs crates/net/src/server.rs crates/net/src/url.rs

/root/repo/target/debug/deps/libmsite_net-b9366513fef54f39.rlib: crates/net/src/lib.rs crates/net/src/auth.rs crates/net/src/cookies.rs crates/net/src/http.rs crates/net/src/link.rs crates/net/src/origin.rs crates/net/src/rng.rs crates/net/src/server.rs crates/net/src/url.rs

/root/repo/target/debug/deps/libmsite_net-b9366513fef54f39.rmeta: crates/net/src/lib.rs crates/net/src/auth.rs crates/net/src/cookies.rs crates/net/src/http.rs crates/net/src/link.rs crates/net/src/origin.rs crates/net/src/rng.rs crates/net/src/server.rs crates/net/src/url.rs

crates/net/src/lib.rs:
crates/net/src/auth.rs:
crates/net/src/cookies.rs:
crates/net/src/http.rs:
crates/net/src/link.rs:
crates/net/src/origin.rs:
crates/net/src/rng.rs:
crates/net/src/server.rs:
crates/net/src/url.rs:
