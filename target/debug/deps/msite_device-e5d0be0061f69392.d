/root/repo/target/debug/deps/msite_device-e5d0be0061f69392.d: crates/device/src/lib.rs crates/device/src/profile.rs crates/device/src/simulate.rs

/root/repo/target/debug/deps/libmsite_device-e5d0be0061f69392.rlib: crates/device/src/lib.rs crates/device/src/profile.rs crates/device/src/simulate.rs

/root/repo/target/debug/deps/libmsite_device-e5d0be0061f69392.rmeta: crates/device/src/lib.rs crates/device/src/profile.rs crates/device/src/simulate.rs

crates/device/src/lib.rs:
crates/device/src/profile.rs:
crates/device/src/simulate.rs:
