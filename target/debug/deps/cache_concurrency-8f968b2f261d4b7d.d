/root/repo/target/debug/deps/cache_concurrency-8f968b2f261d4b7d.d: crates/core/tests/cache_concurrency.rs

/root/repo/target/debug/deps/cache_concurrency-8f968b2f261d4b7d: crates/core/tests/cache_concurrency.rs

crates/core/tests/cache_concurrency.rs:
