/root/repo/target/debug/deps/msite_html-6f672b5a3db7a1dd.d: crates/html/src/lib.rs crates/html/src/dom.rs crates/html/src/entities.rs crates/html/src/parser.rs crates/html/src/serialize.rs crates/html/src/text.rs crates/html/src/tidy.rs crates/html/src/tokenizer.rs

/root/repo/target/debug/deps/msite_html-6f672b5a3db7a1dd: crates/html/src/lib.rs crates/html/src/dom.rs crates/html/src/entities.rs crates/html/src/parser.rs crates/html/src/serialize.rs crates/html/src/text.rs crates/html/src/tidy.rs crates/html/src/tokenizer.rs

crates/html/src/lib.rs:
crates/html/src/dom.rs:
crates/html/src/entities.rs:
crates/html/src/parser.rs:
crates/html/src/serialize.rs:
crates/html/src/text.rs:
crates/html/src/tidy.rs:
crates/html/src/tokenizer.rs:
