/root/repo/target/debug/deps/baseline_equivalence-3eed7894320bf007.d: tests/baseline_equivalence.rs

/root/repo/target/debug/deps/baseline_equivalence-3eed7894320bf007: tests/baseline_equivalence.rs

tests/baseline_equivalence.rs:
