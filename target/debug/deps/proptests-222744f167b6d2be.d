/root/repo/target/debug/deps/proptests-222744f167b6d2be.d: tests/proptests.rs

/root/repo/target/debug/deps/proptests-222744f167b6d2be: tests/proptests.rs

tests/proptests.rs:
