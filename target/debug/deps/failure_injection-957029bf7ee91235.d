/root/repo/target/debug/deps/failure_injection-957029bf7ee91235.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-957029bf7ee91235: tests/failure_injection.rs

tests/failure_injection.rs:
