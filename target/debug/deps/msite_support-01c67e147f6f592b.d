/root/repo/target/debug/deps/msite_support-01c67e147f6f592b.d: crates/support/src/lib.rs crates/support/src/benchkit.rs crates/support/src/bytes.rs crates/support/src/json.rs crates/support/src/prop.rs crates/support/src/sync.rs crates/support/src/thread.rs

/root/repo/target/debug/deps/msite_support-01c67e147f6f592b: crates/support/src/lib.rs crates/support/src/benchkit.rs crates/support/src/bytes.rs crates/support/src/json.rs crates/support/src/prop.rs crates/support/src/sync.rs crates/support/src/thread.rs

crates/support/src/lib.rs:
crates/support/src/benchkit.rs:
crates/support/src/bytes.rs:
crates/support/src/json.rs:
crates/support/src/prop.rs:
crates/support/src/sync.rs:
crates/support/src/thread.rs:
