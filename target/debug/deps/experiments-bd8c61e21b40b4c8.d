/root/repo/target/debug/deps/experiments-bd8c61e21b40b4c8.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-bd8c61e21b40b4c8: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
