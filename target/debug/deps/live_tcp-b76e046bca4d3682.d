/root/repo/target/debug/deps/live_tcp-b76e046bca4d3682.d: tests/live_tcp.rs

/root/repo/target/debug/deps/live_tcp-b76e046bca4d3682: tests/live_tcp.rs

tests/live_tcp.rs:
