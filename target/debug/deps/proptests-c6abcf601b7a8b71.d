/root/repo/target/debug/deps/proptests-c6abcf601b7a8b71.d: crates/device/tests/proptests.rs

/root/repo/target/debug/deps/proptests-c6abcf601b7a8b71: crates/device/tests/proptests.rs

crates/device/tests/proptests.rs:
