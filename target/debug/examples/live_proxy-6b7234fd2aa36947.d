/root/repo/target/debug/examples/live_proxy-6b7234fd2aa36947.d: examples/live_proxy.rs

/root/repo/target/debug/examples/live_proxy-6b7234fd2aa36947: examples/live_proxy.rs

examples/live_proxy.rs:
