/root/repo/target/debug/examples/forum_mobilization-a1cbfe3413d4c683.d: examples/forum_mobilization.rs

/root/repo/target/debug/examples/forum_mobilization-a1cbfe3413d4c683: examples/forum_mobilization.rs

examples/forum_mobilization.rs:
