/root/repo/target/debug/examples/scalability_demo-8a3257f912f9b149.d: examples/scalability_demo.rs

/root/repo/target/debug/examples/scalability_demo-8a3257f912f9b149: examples/scalability_demo.rs

examples/scalability_demo.rs:
