/root/repo/target/debug/examples/quickstart-52f591c02b67e782.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-52f591c02b67e782: examples/quickstart.rs

examples/quickstart.rs:
