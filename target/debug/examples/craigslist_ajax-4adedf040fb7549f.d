/root/repo/target/debug/examples/craigslist_ajax-4adedf040fb7549f.d: examples/craigslist_ajax.rs

/root/repo/target/debug/examples/craigslist_ajax-4adedf040fb7549f: examples/craigslist_ajax.rs

examples/craigslist_ajax.rs:
