#!/usr/bin/env bash
# Repository gate: formatting, release build, and the full test suite.
# Everything runs offline — the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo build --release =="
cargo build --release --offline --workspace

echo "== cargo test -q =="
cargo test -q --offline --workspace
