#!/usr/bin/env bash
# Repository gate: formatting, lints, release build, and the full test
# suite. Everything runs offline — the workspace has no external
# dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy -D warnings =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release --offline --workspace

echo "== cargo test -q =="
cargo test -q --offline --workspace

echo "== failure injection / chaos suite =="
cargo test -q --offline --test failure_injection
cargo test -q --offline -p msite-net --test resilience_prop
cargo test -q --offline -p msite --test cache_stale_prop

echo "== durability: restart-under-load + disk-fault chaos =="
cargo test -q --offline -p msite --test persistence_e2e

echo "== subtree cache eviction accounting =="
cargo test -q --offline -p msite --test subtree_prop

echo "== cookie jar RFC 6265 property suite =="
cargo test -q --offline -p msite-net --test cookie_prop

echo "== session store eviction accounting + tenant isolation =="
cargo test -q --offline -p msite --test session_prop

echo "== stampede / single-flight suite =="
cargo test -q --offline -p msite --test cache_stampede
cargo test -q --offline -p msite --test cache_shard_prop
cargo test -q --offline --test multi_user cold_stampede_collapses_to_one_render
cargo test -q --offline --test multi_user streamed_cold_stampede_collapses_to_one_render
cargo test -q --offline --test multi_user mixed_streamed_and_batch_stampede_still_renders_once

echo "== seeded schedule-exploration smoke =="
cargo test -q --offline -p msite --test cache_stampede schedule_exploration_smoke

echo "== parallel pipeline determinism suite =="
cargo test -q --release --offline -p msite --test pipeline_determinism
cargo test -q --offline -p msite-support --test worker_pool_prop

echo "== telemetry suite (registry, tracing, exposition) =="
cargo test -q --offline -p msite-support --test telemetry_prop
cargo test -q --offline -p msite-support --test metrics_golden

echo "== end-to-end proxy conformance (metrics, traces, headers) =="
cargo test -q --offline --test proxy_e2e

echo "== content adaptation scenarios (extraction, strip, tiers) =="
cargo test -q --offline --test content_scenarios
cargo test -q --offline -p msite --test content_prop
cargo test -q --offline -p msite --test attr_codec
cargo test -q --offline -p msite-sites --test determinism

echo "== SWAR byte-identity gates (fast vs scalar twins) =="
cargo test -q --offline -p msite-support --test swar_prop
cargo test -q --offline -p msite-html --test swar_identity
cargo test -q --offline -p msite-selectors --test bloom_identity
cargo test -q --offline -p msite --test strip_tag_prop
cargo test -q --offline --test swar_fixture_identity

echo "== throughput shape assertions (serial vs parallel, overload) =="
cargo run --release --offline -p msite-bench --bin experiments -- throughput

echo "== telemetry overhead gate =="
cargo run --release --offline -p msite-bench --bin experiments -- telemetry

echo "== streaming TTFB + incremental re-adaptation gate =="
cargo run --release --offline -p msite-bench --bin experiments -- streaming

echo "== durability + adaptive-capacity gate (warm restart, surge) =="
cargo run --release --offline -p msite-bench --bin experiments -- durability

echo "== million-user session capacity gate (bounded store, quotas) =="
cargo run --release --offline -p msite-bench --bin experiments -- capacity

echo "== SWAR hot-path speedup gate (tokenizer+entity, crc32) =="
cargo run --release --offline -p msite-bench --bin experiments -- hotpath

echo "== content extraction precision/recall + fidelity tier gate =="
cargo run --release --offline -p msite-bench --bin experiments -- content
