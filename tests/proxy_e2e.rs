//! End-to-end observability conformance: a real `HttpServer` on a
//! loopback socket in front of a real `ProxyServer`, both publishing
//! into one shared [`Telemetry`], exercised by real TCP clients.
//!
//! Each scenario asserts three surfaces at once:
//! - the response bytes and `x-msite-*` header contracts (engine,
//!   degraded, error, trace);
//! - exact `/metrics` deltas for the scenario's counters (hit, miss,
//!   coalesced, stale-serve, overload-shed);
//! - span recovery: `GET /trace/<id>` returns the request's timed
//!   stage/cache/resilience/worker spans for the id the response's
//!   `x-msite-trace` header named.

use msite::attributes::{AdaptationSpec, Attribute, SnapshotSpec, Target};
use msite::error::{DEGRADED_HEADER, ERROR_HEADER};
use msite::proxy::{ProxyConfig, ProxyServer, STREAM_HEADER};
use msite_net::resilience::{BreakerConfig, DeadlineBudget, RetryPolicy};
use msite_net::{
    http_get, http_request, FlakyOrigin, HttpServer, Origin, OriginRef, Request, ResiliencePolicy,
    Response, ServerConfig, Status,
};
use msite_sites::{ForumConfig, ForumSite};
use msite_support::telemetry::{Telemetry, TRACE_HEADER};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One proxy + one HTTP server wired through a shared telemetry handle,
/// the way `examples/live_proxy` deploys them.
struct Stack {
    proxy: Arc<ProxyServer>,
    server: HttpServer,
    telemetry: Telemetry,
}

impl Stack {
    fn up(spec: AdaptationSpec, origin: OriginRef, config: ProxyConfig) -> Stack {
        Stack::up_with_server(spec, origin, config, ServerConfig::default())
    }

    fn up_with_server(
        spec: AdaptationSpec,
        origin: OriginRef,
        mut config: ProxyConfig,
        server_config: ServerConfig,
    ) -> Stack {
        if config.telemetry.is_none() {
            config.telemetry = Some(Telemetry::new());
        }
        let telemetry = config.telemetry.clone().unwrap();
        let proxy = Arc::new(ProxyServer::new(spec, origin, config));
        let server = HttpServer::bind_with_telemetry(
            "127.0.0.1:0",
            Arc::clone(&proxy) as OriginRef,
            server_config,
            telemetry.clone(),
        )
        .unwrap();
        Stack {
            proxy,
            server,
            telemetry,
        }
    }

    fn url(&self, path: &str) -> String {
        format!("http://{}{path}", self.server.addr())
    }

    /// Scrapes `GET /metrics` over TCP and parses every sample line
    /// into `series -> value` (the series string keeps its label set).
    fn scrape(&self) -> BTreeMap<String, i64> {
        let response = http_get(&self.url("/metrics")).unwrap();
        assert!(response.status.is_success());
        assert!(response
            .headers
            .get("content-type")
            .unwrap()
            .starts_with("text/plain"));
        parse_exposition(&response.body_text())
    }

    /// Fetches the retained spans for one trace id, polling briefly:
    /// the server's `server.worker` span lands just after the response
    /// bytes are flushed, so an immediate read can race it.
    fn trace_json(&self, id: &str, wait_for: &str) -> String {
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            let response = http_get(&self.url(&format!("/trace/{id}"))).unwrap();
            if response.status.is_success() {
                let body = response.body_text();
                if body.contains(wait_for) || Instant::now() > deadline {
                    return body;
                }
            } else if Instant::now() > deadline {
                panic!("trace {id} not recoverable: {}", response.status);
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    fn down(self) {
        self.server.shutdown();
    }
}

fn parse_exposition(text: &str) -> BTreeMap<String, i64> {
    let mut samples = BTreeMap::new();
    for line in text.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("malformed sample line");
        let value: i64 = value.parse().expect("non-integer sample value");
        assert!(
            samples.insert(series.to_string(), value).is_none(),
            "duplicate series in exposition: {series}"
        );
    }
    samples
}

fn sample(samples: &BTreeMap<String, i64>, series: &str) -> i64 {
    *samples.get(series).unwrap_or_else(|| {
        panic!(
            "series {series:?} missing from scrape; have: {:?}",
            samples.keys().collect::<Vec<_>>()
        )
    })
}

fn healthy_page() -> OriginRef {
    Arc::new(|_req: &Request| {
        Response::html(
            "<html><head><title>Up</title></head><body>\
             <div id=\"main\">hello observable world</div></body></html>",
        )
    })
}

fn spec_for(url: &str, snapshot: bool) -> AdaptationSpec {
    let mut spec = AdaptationSpec::new("t", url);
    spec.snapshot = snapshot.then(SnapshotSpec::default);
    spec.rule(
        Target::Css("#main".into()),
        vec![Attribute::Subpage {
            id: "main".into(),
            title: "Main".into(),
            ajax: false,
            prerender: false,
        }],
    )
}

/// Millisecond-scale resilience so failure scenarios run fast; the
/// 10s cooldown keeps the breaker deterministically open once tripped
/// (no half-open probe mid-test), making transition counts exact.
fn fast_config() -> ProxyConfig {
    ProxyConfig {
        resilience: ResiliencePolicy {
            retry: RetryPolicy {
                max_attempts: 3,
                base_backoff: Duration::from_micros(200),
                max_backoff: Duration::from_millis(1),
            },
            deadline: DeadlineBudget(Duration::from_secs(5)),
            breaker: BreakerConfig {
                failure_threshold: 4,
                cooldown: Duration::from_secs(10),
                probe_successes: 1,
            },
            seed: 0xE2E,
        },
        ..ProxyConfig::default()
    }
}

fn cookie_of(response: &Response) -> String {
    response
        .headers
        .get("set-cookie")
        .unwrap()
        .split(';')
        .next()
        .unwrap()
        .to_string()
}

fn get_with_cookie(url: &str, cookie: &str) -> Response {
    http_request(&Request::get(url).unwrap().with_header("cookie", cookie)).unwrap()
}

// --- Scenario 1: entry flow — miss then hit, trace recovery, healthz ---

#[test]
fn entry_flow_reports_trace_and_exact_metrics() {
    let stack = Stack::up(
        spec_for("http://one.test/", false),
        healthy_page(),
        fast_config(),
    );

    // Cold entry: a miss that fetches the origin and builds the bundle.
    let first = http_get(&stack.url("/m/t/")).unwrap();
    assert!(first.status.is_success());
    assert!(first.body_text().contains("/m/t/s/main.html"));
    let first_id = first
        .headers
        .get(TRACE_HEADER)
        .expect("trace header")
        .to_string();
    let cookie = cookie_of(&first);

    // Warm entry: a shared-cache hit on the same session.
    let second = get_with_cookie(&stack.url("/m/t/"), &cookie);
    assert!(second.status.is_success());
    let second_id = second.headers.get(TRACE_HEADER).unwrap().to_string();
    assert_ne!(first_id, second_id, "each request gets its own trace id");
    assert_eq!(first.body_text(), second.body_text());

    // The cold trace holds the pipeline's stage spans, the cache flight
    // (as leader), the root request span, and the server's worker hop.
    let cold = stack.trace_json(&first_id, "server.worker");
    for span in [
        "\"name\":\"request\"",
        "stage.fetch",
        "stage.filter",
        "stage.emit",
        "cache.flight",
    ] {
        assert!(cold.contains(span), "cold trace missing {span}: {cold}");
    }
    assert!(cold.contains("\"role\":\"led\""), "{cold}");
    // The warm trace shows the hit-path flight instead of a rebuild.
    let warm = stack.trace_json(&second_id, "cache.flight");
    assert!(warm.contains("\"role\":\"hit\""), "{warm}");
    assert!(
        !warm.contains("stage.fetch"),
        "hit must not re-run the pipeline"
    );

    // Exact metric deltas for the scenario (fresh registry, so the
    // absolute values are the deltas).
    let samples = stack.scrape();
    assert_eq!(sample(&samples, "msite_proxy_requests_total"), 2);
    assert_eq!(sample(&samples, "msite_proxy_origin_fetches_total"), 1);
    assert_eq!(sample(&samples, "msite_proxy_sessions_created_total"), 1);
    assert_eq!(sample(&samples, "msite_cache_misses_total"), 1);
    assert_eq!(sample(&samples, "msite_cache_hits_total"), 1);
    assert_eq!(sample(&samples, "msite_proxy_request_micros_count"), 2);
    assert_eq!(sample(&samples, "msite_proxy_sessions_live"), 1);
    assert!(sample(&samples, "msite_server_served_total") >= 3);
    // The SWAR hot-path counters are process-wide and folded in at
    // scrape time: one origin fetch means the tokenizer chewed real
    // bytes, and the snapshot path clocked at least one PNG encode.
    assert!(sample(&samples, "msite_tokenizer_bytes_total") > 0);
    assert!(sample(&samples, "msite_png_encodes_total") > 0);
    assert!(sample(&samples, "msite_png_encode_micros") > 0);
    // Scrapes themselves must not perturb proxy/cache counters (server
    // connection counters legitimately move — the scrape is a request).
    let again = stack.scrape();
    for series in [
        "msite_proxy_requests_total",
        "msite_proxy_origin_fetches_total",
        "msite_proxy_request_micros_count",
        "msite_cache_hits_total",
        "msite_cache_misses_total",
    ] {
        assert_eq!(
            sample(&again, series),
            sample(&samples, series),
            "scrape moved {series}"
        );
    }

    // Healthz: everything up, status ok, no degradation headers.
    let health = http_get(&stack.url("/healthz")).unwrap();
    assert!(health.status.is_success());
    assert!(health.body_text().contains("\"status\":\"ok\""));
    assert!(health.headers.get(DEGRADED_HEADER).is_none());
    assert!(health.headers.get(ERROR_HEADER).is_none());
    stack.down();
}

// --- Scenario 2: cold stampede over TCP coalesces exactly ---

#[test]
fn cold_stampede_over_tcp_coalesces_exactly() {
    // A slow origin stretches the leader's flight so every concurrent
    // client deterministically lands inside it.
    let slow = Arc::new(
        FlakyOrigin::new(healthy_page(), 0.0, Status::SERVICE_UNAVAILABLE)
            .with_latency(Duration::from_millis(250), Duration::ZERO),
    );
    let stack = Stack::up(
        spec_for("http://stampede.test/", false),
        slow as OriginRef,
        fast_config(),
    );

    const CLIENTS: usize = 6;
    let gate = Arc::new(Barrier::new(CLIENTS));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let url = stack.url("/m/t/");
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                gate.wait();
                let entry = http_get(&url).unwrap();
                assert!(entry.status.is_success());
                entry.body_text()
            })
        })
        .collect();
    let bodies: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(
        bodies.iter().all(|b| b == &bodies[0]),
        "coalesced waiters must receive the leader's bytes"
    );

    let samples = stack.scrape();
    assert_eq!(
        sample(&samples, "msite_proxy_requests_total"),
        CLIENTS as i64
    );
    assert_eq!(
        sample(&samples, "msite_proxy_origin_fetches_total"),
        1,
        "single-flight admits exactly one origin fetch"
    );
    assert_eq!(
        sample(&samples, "msite_proxy_renders_coalesced_total"),
        CLIENTS as i64 - 1
    );
    assert_eq!(
        sample(&samples, "msite_cache_coalesced_total"),
        CLIENTS as i64 - 1
    );
    assert_eq!(
        sample(&samples, "msite_proxy_sessions_created_total"),
        CLIENTS as i64,
        "coalescing must not merge sessions"
    );
    assert_eq!(stack.proxy.stats().renders_coalesced, CLIENTS as u64 - 1);
    stack.down();
}

// --- Scenario 3: outage serves stale, breaker trips, healthz degrades ---

#[test]
fn outage_serves_stale_and_degrades_healthz() {
    // Healthy for the warm-up fetch, hard outage afterwards.
    let flaky = Arc::new(
        FlakyOrigin::new(healthy_page(), 0.0, Status::SERVICE_UNAVAILABLE)
            .with_outage_window(1, u64::MAX),
    );
    let stack = Stack::up(
        spec_for("http://storm.test/", true),
        flaky as OriginRef,
        fast_config(),
    );

    let warm = http_get(&stack.url("/m/t/")).unwrap();
    assert!(warm.status.is_success());
    let cookie = cookie_of(&warm);
    let warmed = stack.scrape();
    assert_eq!(sample(&warmed, "msite_proxy_stale_served_total"), 0);

    // Let the entry TTL lapse; the stale window keeps the bytes around.
    stack
        .proxy
        .cache()
        .advance_clock(Duration::from_secs(3_601));

    const ROUNDS: usize = 5;
    let mut stale_trace = String::new();
    for _ in 0..ROUNDS {
        let entry = get_with_cookie(&stack.url("/m/t/"), &cookie);
        assert!(
            entry.status.is_success(),
            "outage must degrade, not fail: {}",
            entry.status
        );
        assert!(entry
            .headers
            .get(DEGRADED_HEADER)
            .unwrap()
            .starts_with("stale"));
        assert_eq!(
            entry.headers.get("warning"),
            Some("110 msite \"Response is stale\"")
        );
        stale_trace = entry.headers.get(TRACE_HEADER).unwrap().to_string();
    }

    // Exact stale-serve delta, and exactly one closed→open transition
    // (the 10s cooldown forbids a half-open probe mid-test).
    let samples = stack.scrape();
    assert_eq!(
        sample(&samples, "msite_proxy_stale_served_total"),
        ROUNDS as i64
    );
    assert_eq!(
        sample(
            &samples,
            "msite_breaker_transitions_total{host=\"storm.test\",to=\"open\"}"
        ),
        1
    );
    assert!(sample(&samples, "msite_cache_stale_hits_total") >= ROUNDS as i64);
    // Round 1 exhausts its 3 attempts (breaker failures 1-3); round 2's
    // first attempt is failure 4, tripping the breaker mid-retry-loop:
    // two terminal failures, then every later round is rejected up front.
    assert_eq!(sample(&samples, "msite_resilience_failures_total"), 2);
    assert_eq!(
        sample(&samples, "msite_resilience_breaker_rejections_total"),
        ROUNDS as i64 - 2
    );

    // The stale request's trace names the degradation: the refresh
    // flight failed and fell back to the stale entry.
    let trace = stack.trace_json(&stale_trace, "degraded.stale");
    assert!(trace.contains("\"name\":\"degraded.stale\""), "{trace}");
    assert!(trace.contains("\"role\":\"failed\""), "{trace}");
    assert!(trace.contains("\"fallback\":\"stale\""), "{trace}");

    // Healthz: 200 but explicitly degraded, naming the open breaker.
    let health = http_get(&stack.url("/healthz")).unwrap();
    assert!(health.status.is_success());
    assert!(health.body_text().contains("\"status\":\"degraded\""));
    assert_eq!(
        health.headers.get(DEGRADED_HEADER),
        Some("breaker; host=storm.test; state=open")
    );
    stack.down();
}

// --- Scenario 4: overload shed counted once, visible everywhere ---

/// An origin that parks its first caller on a condvar until released,
/// pinning the single worker so the queue fills deterministically.
struct GatedOrigin {
    calls: AtomicU64,
    released: Mutex<bool>,
    release: Condvar,
}

impl GatedOrigin {
    fn new() -> GatedOrigin {
        GatedOrigin {
            calls: AtomicU64::new(0),
            released: Mutex::new(false),
            release: Condvar::new(),
        }
    }

    fn open(&self) {
        *self.released.lock().unwrap() = true;
        self.release.notify_all();
    }
}

#[test]
fn overload_shed_is_counted_once_everywhere() {
    let gate = Arc::new(GatedOrigin::new());
    let gate2 = Arc::clone(&gate);
    let origin: OriginRef = Arc::new(move |_req: &Request| {
        if gate2.calls.fetch_add(1, Ordering::SeqCst) == 0 {
            let mut released = gate2.released.lock().unwrap();
            while !*released {
                released = gate2.release.wait(released).unwrap();
            }
        }
        Response::html("<html><body><div id=\"main\">late</div></body></html>")
    });
    let stack = Stack::up_with_server(
        spec_for("http://slowpool.test/", false),
        origin,
        fast_config(),
        ServerConfig {
            workers: 1,
            queue_depth: 1,
        },
    );

    // Client 1 occupies the only worker (blocked inside the origin).
    let url = stack.url("/m/t/");
    let c1 = std::thread::spawn({
        let url = url.clone();
        move || http_get(&url).unwrap()
    });
    let entered = Instant::now();
    while gate.calls.load(Ordering::SeqCst) == 0 {
        assert!(
            entered.elapsed() < Duration::from_secs(5),
            "worker never started"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // Client 2 fills the one queue slot.
    let c2 = std::thread::spawn({
        let url = url.clone();
        move || http_get(&url).unwrap()
    });
    let queued = Instant::now();
    while stack
        .telemetry
        .metrics
        .gauge_value("msite_server_queue_len", &[])
        < 1
    {
        assert!(
            queued.elapsed() < Duration::from_secs(5),
            "connection never queued"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // Client 3 is shed at the accept loop: 503 + reason + retry-after.
    let shed = http_get(&url).unwrap();
    assert_eq!(shed.status, Status::SERVICE_UNAVAILABLE);
    assert_eq!(shed.headers.get(ERROR_HEADER), Some("overloaded"));
    assert_eq!(shed.headers.get("retry-after"), Some("1"));

    // In-process healthz (the TCP path would itself be shed right now)
    // reports the saturated pool as overloaded with a 503.
    let health = stack
        .proxy
        .handle(&Request::get("http://p/healthz").unwrap());
    assert_eq!(health.status, Status::SERVICE_UNAVAILABLE);
    assert_eq!(health.headers.get(ERROR_HEADER), Some("overloaded"));
    assert!(health.body_text().contains("\"status\":\"overloaded\""));

    gate.open();
    assert!(c1.join().unwrap().status.is_success());
    assert!(c2.join().unwrap().status.is_success());

    // The shed is one event on one counter, and every view agrees
    // without any embedder-side folding (the pre-telemetry bug folded
    // ServerStats into ProxyStats only inside examples/live_proxy).
    assert_eq!(stack.server.stats().rejected_overload, 1);
    assert_eq!(stack.proxy.stats().overload_rejections, 1);
    assert_eq!(
        stack.proxy.stats().overload_rejections,
        stack.server.stats().rejected_overload
    );
    let samples = stack.scrape();
    assert_eq!(sample(&samples, "msite_server_rejected_overload_total"), 1);
    assert_eq!(sample(&samples, "msite_server_worker_panics_total"), 0);
    stack.down();
}

// --- Scenario 5: full forum flow — headers, engines, stage spans ---

#[test]
fn forum_flow_header_contracts_and_stage_spans() {
    // Real forum origin on its own socket; the proxy fetches it over TCP.
    let site = Arc::new(ForumSite::new(ForumConfig {
        host: "127.0.0.1".to_string(),
        ..ForumConfig::default()
    }));
    let origin_server = HttpServer::bind("127.0.0.1:0", Arc::clone(&site) as OriginRef).unwrap();
    let origin_url = format!("http://{}/index.php", origin_server.addr());
    let origin_client: OriginRef = Arc::new(move |req: &Request| {
        http_request(req).unwrap_or_else(|e| Response::error(Status::BAD_GATEWAY, &e.to_string()))
    });

    let mut spec = AdaptationSpec::new("forum", &origin_url);
    spec.snapshot = Some(SnapshotSpec {
        scale: 0.5,
        quality: 40,
        cache_ttl_secs: 600,
        viewport_width: 800,
    });
    let spec = spec
        .rule(
            Target::Css("#loginform".into()),
            vec![Attribute::Subpage {
                id: "login".into(),
                title: "Log in".into(),
                ajax: false,
                prerender: false,
            }],
        )
        .rule(Target::Css("body".into()), vec![Attribute::Searchable]);

    let stack = Stack::up(spec, origin_client, ProxyConfig::default());
    let base = stack.url("/m/forum");

    // Entry page: search machinery inlined, snapshot + subpage linked.
    let entry = http_get(&format!("{base}/")).unwrap();
    assert!(entry.status.is_success());
    let entry_body = entry.body_text();
    assert!(entry_body.contains("function msiteSearch"));
    assert!(entry_body.contains("msiteIndex"));
    assert!(entry_body.contains("snapshot.png"));
    assert!(entry_body.contains("/m/forum/s/login.html"));
    let entry_id = entry.headers.get(TRACE_HEADER).unwrap().to_string();
    let cookie = cookie_of(&entry);

    // Subpage: real extracted login form.
    let login = get_with_cookie(&format!("{base}/s/login.html"), &cookie);
    assert!(login.status.is_success());
    assert!(login.body_text().contains("vb_login_username"));
    assert!(login.headers.get(TRACE_HEADER).is_some());

    // Image: actual PNG bytes from the render stage.
    let snapshot = get_with_cookie(&format!("{base}/img/snapshot.png"), &cookie);
    assert!(snapshot.status.is_success());
    assert!(snapshot.body.starts_with(&[0x89, b'P', b'N', b'G']));
    assert!(snapshot.headers.get(TRACE_HEADER).is_some());

    // Alternate engine: the response names the engine that rendered it.
    let text = get_with_cookie(&format!("{base}/render/text"), &cookie);
    assert!(text.status.is_success());
    assert_eq!(text.headers.get("x-msite-engine"), Some("text"));

    // Missing artifact: classified 404, still traced.
    let missing = get_with_cookie(&format!("{base}/img/nope.png"), &cookie);
    assert_eq!(missing.status, Status::NOT_FOUND);
    assert_eq!(missing.headers.get(ERROR_HEADER), Some("not-found"));
    assert!(missing.headers.get(TRACE_HEADER).is_some());

    // Per-stage span timings are recoverable for the entry request id:
    // every pipeline stage (including the render pseudo-stage) appears
    // with a strictly positive elapsed time.
    let trace = stack.trace_json(&entry_id, "server.worker");
    for span in [
        "stage.fetch",
        "stage.filter",
        "stage.dom",
        "stage.attributes",
        "stage.emit",
        "stage.render",
        "cache.flight",
        "resilience.fetch",
        "\"name\":\"request\"",
        "server.worker",
    ] {
        assert!(trace.contains(span), "entry trace missing {span}: {trace}");
    }

    let samples = stack.scrape();
    assert_eq!(sample(&samples, "msite_proxy_requests_total"), 5);
    assert_eq!(
        sample(&samples, "msite_proxy_errors_total{reason=\"not-found\"}"),
        1
    );
    assert_eq!(sample(&samples, "msite_proxy_sessions_created_total"), 1);
    assert!(sample(&samples, "msite_proxy_full_renders_total") >= 1);
    assert!(sample(&samples, "msite_stage_micros_count{stage=\"render\"}") >= 1);

    stack.down();
    origin_server.shutdown();
}

// --- Scenario 6: streamed entry over real TCP — chunked framing,
// byte identity with the batch path, TTFB + stream spans ---

#[test]
fn streamed_entry_over_tcp_matches_batch_bytes() {
    let stack = Stack::up(
        spec_for("http://stream.test/", false),
        healthy_page(),
        fast_config(),
    );

    // Cold streamed entry: the transport decodes the chunked framing;
    // the reassembled body is the complete entry page.
    let streamed = http_request(
        &Request::get(&stack.url("/m/t/"))
            .unwrap()
            .with_header(STREAM_HEADER, "chunked"),
    )
    .unwrap();
    assert!(streamed.status.is_success());
    let streamed_body = streamed.body_text();
    assert!(streamed_body.contains("/m/t/s/main.html"));
    assert!(
        streamed.headers.get("content-length").is_none(),
        "chunked responses must not carry content-length"
    );
    let streamed_id = streamed.headers.get(TRACE_HEADER).unwrap().to_string();
    let cookie = cookie_of(&streamed);

    // The streamed build published the entry to the shared cache; a
    // plain batch request returns the identical bytes with framing.
    let batch = get_with_cookie(&stack.url("/m/t/"), &cookie);
    assert!(batch.status.is_success());
    assert_eq!(
        streamed_body,
        batch.body_text(),
        "streamed chunks must concatenate to the batch body"
    );
    assert!(batch.headers.get("content-length").is_some());

    // The streamed trace records the entry chunk flush.
    let trace = stack.trace_json(&streamed_id, "stream.chunk");
    assert!(trace.contains("\"name\":\"stream.chunk\""), "{trace}");
    assert!(trace.contains("\"kind\":\"entry\""), "{trace}");

    let samples = stack.scrape();
    assert_eq!(
        sample(&samples, "msite_proxy_streamed_responses_total"),
        1,
        "exactly the opted-in request streams"
    );
    assert!(sample(&samples, "msite_proxy_ttfb_micros_count") >= 1);
    assert_eq!(sample(&samples, "msite_proxy_requests_total"), 2);
    assert_eq!(
        sample(&samples, "msite_proxy_origin_fetches_total"),
        1,
        "the batch request must hit the streamed build's cache entry"
    );
    stack.down();
}

// --- Scenario 7: one post edited — incremental re-adaptation reuses
// every untouched subtree and re-renders strictly fewer subpages ---

/// Origin serving a six-post page; post 0's body flips when `edited`
/// is set, leaving the other five posts byte-identical.
fn posts_origin(edited: Arc<std::sync::atomic::AtomicBool>) -> OriginRef {
    Arc::new(move |_req: &Request| {
        let mut html =
            String::from("<html><head><title>Posts</title></head><body><div id=\"posts\">");
        for s in 0..6 {
            let body = if s == 0 && edited.load(Ordering::SeqCst) {
                "post zero EDITED body".to_string()
            } else {
                format!("post {s} body {}", "lorem ipsum ".repeat(10 + s))
            };
            html.push_str(&format!(
                "<div id=\"post{s}\"><h2>Post {s}</h2><p>{body}</p></div>"
            ));
        }
        html.push_str("</div></body></html>");
        Response::html(&html)
    })
}

#[test]
fn edited_post_refetch_rerenders_strictly_fewer_subpages() {
    let edited = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut spec = AdaptationSpec::new("t", "http://posts.test/");
    spec.snapshot = Some(SnapshotSpec {
        scale: 0.5,
        quality: 40,
        cache_ttl_secs: 600,
        viewport_width: 800,
    });
    for s in 0..6 {
        spec = spec.rule(
            Target::Css(format!("#post{s}")),
            vec![Attribute::Subpage {
                id: format!("post{s}"),
                title: format!("Post {s}"),
                ajax: false,
                // The edited post stays a plain HTML subpage so the
                // test can read its text; the untouched five are
                // pre-rendered, which is where the render savings show.
                prerender: s != 0,
            }],
        );
    }
    let stack = Stack::up(spec, posts_origin(Arc::clone(&edited)), fast_config());

    // Cold miss: every subtree is computed, every pre-render runs.
    let cold = http_get(&stack.url("/m/t/")).unwrap();
    assert!(cold.status.is_success());
    let cookie_a = cookie_of(&cold);
    let after_cold = stack.scrape();
    assert_eq!(sample(&after_cold, "msite_subtrees_recomputed_total"), 6);
    assert_eq!(sample(&after_cold, "msite_subtrees_reused_total"), 0);
    let cold_renders = sample(&after_cold, "msite_browser_renders_total");
    assert!(
        cold_renders >= 5,
        "five pre-rendered subpages imply at least five browser renders, got {cold_renders}"
    );

    // Session A's per-user view of the pre-edit subpages.
    let post0_before = get_with_cookie(&stack.url("/m/t/s/post0.html"), &cookie_a);
    let post1_before = get_with_cookie(&stack.url("/m/t/s/post1.html"), &cookie_a);
    assert!(post0_before.status.is_success());
    assert!(post1_before.status.is_success());
    let baseline = stack.scrape();

    // Edit exactly one post and let the entry TTL lapse.
    edited.store(true, Ordering::SeqCst);
    stack.proxy.cache().advance_clock(Duration::from_secs(601));

    // Re-fetch: the rebuild re-runs filter/attrs/emit/render only for
    // the changed subtree and reuses the other five artifacts.
    let refetch = get_with_cookie(&stack.url("/m/t/"), &cookie_a);
    assert!(refetch.status.is_success());
    assert!(refetch.body_text().contains("/m/t/s/post0.html"));
    let refetch_id = refetch.headers.get(TRACE_HEADER).unwrap().to_string();
    let after_incremental = stack.scrape();

    let reused = sample(&after_incremental, "msite_subtrees_reused_total")
        - sample(&baseline, "msite_subtrees_reused_total");
    let recomputed = sample(&after_incremental, "msite_subtrees_recomputed_total")
        - sample(&baseline, "msite_subtrees_recomputed_total");
    let incremental_renders = sample(&after_incremental, "msite_browser_renders_total")
        - sample(&baseline, "msite_browser_renders_total");
    assert_eq!(reused, 5, "five untouched posts must be reused");
    assert_eq!(recomputed, 1, "only the edited post is recomputed");
    assert!(
        incremental_renders < cold_renders,
        "incremental rebuild must re-render strictly fewer subpages \
         ({incremental_renders} vs cold {cold_renders})"
    );
    assert!(
        incremental_renders >= 1,
        "the changed entry snapshot re-renders"
    );

    // The rebuild's trace names the reuse split.
    let trace = stack.trace_json(&refetch_id, "incremental.reuse");
    assert!(trace.contains("\"name\":\"incremental.reuse\""), "{trace}");
    assert!(trace.contains("\"reused\":\"5\""), "{trace}");
    assert!(trace.contains("\"recomputed\":\"1\""), "{trace}");

    // A fresh session adapting the edited page serves byte-identical
    // bytes for the untouched subpage and new bytes for the edited one.
    let warm = http_get(&stack.url("/m/t/")).unwrap();
    let cookie_b = cookie_of(&warm);
    let post1_after = get_with_cookie(&stack.url("/m/t/s/post1.html"), &cookie_b);
    let post0_after = get_with_cookie(&stack.url("/m/t/s/post0.html"), &cookie_b);
    assert_eq!(
        post1_before.body, post1_after.body,
        "unchanged subpage bytes must be identical across the edit"
    );
    assert_ne!(
        post0_before.body, post0_after.body,
        "the edited subpage must change"
    );
    assert!(post0_after.body_text().contains("EDITED"));
    stack.down();
}
