//! Byte-identity gates for the SWAR fast paths, run over the *real*
//! fixture sites rather than synthetic documents.
//!
//! The per-crate property suites (`swar_prop`, `swar_identity`,
//! `bloom_identity`, `strip_tag_prop`) hammer the fast/scalar twins
//! with generated inputs; this suite closes the loop on the pages the
//! paper's figures actually run over — every forum and classifieds
//! page the fixtures serve must tokenize, entity-decode, strip, and
//! select identically through the fast and scalar paths.

use msite::pipeline::soa;
use msite_html::tokenizer::Tokenizer;
use msite_html::{entities, parse_document};
use msite_net::{Origin, Request};
use msite_selectors::SelectorList;
use msite_sites::{ClassifiedsConfig, ClassifiedsSite, ForumConfig, ForumSite};

/// Every HTML page body the identity checks sweep: forum entry page
/// and login subpage, classifieds front page and a search result.
fn fixture_pages() -> Vec<(String, String)> {
    let forum = ForumSite::new(ForumConfig::default());
    let classifieds = ClassifiedsSite::new(ClassifiedsConfig::default());
    let mut pages = Vec::new();
    for (label, origin, path) in [
        ("forum index", &forum as &dyn Origin, "/index.php"),
        ("forum login", &forum as &dyn Origin, "/login.php"),
        ("classifieds front", &classifieds as &dyn Origin, "/"),
        ("classifieds search", &classifieds as &dyn Origin, "/search"),
    ] {
        let base = match label.split_whitespace().next() {
            Some("forum") => forum.base_url(),
            _ => classifieds.base_url(),
        };
        let req = Request::get(&format!("{base}{path}")).expect("fixture url parses");
        let response = origin.handle(&req);
        let body = String::from_utf8_lossy(&response.body).into_owned();
        assert!(!body.is_empty(), "{label} served an empty body");
        pages.push((label.to_string(), body));
    }
    pages
}

#[test]
fn tokenizer_twins_agree_on_fixture_pages() {
    for (label, body) in fixture_pages() {
        let fast: Vec<_> = Tokenizer::new(&body).collect();
        let scalar: Vec<_> = Tokenizer::new_scalar(&body).collect();
        assert_eq!(fast, scalar, "tokenizer twins diverged on {label}");
        assert!(
            fast.len() > 10,
            "{label} produced a trivial token stream ({} tokens)",
            fast.len()
        );
    }
}

#[test]
fn entity_codec_twins_agree_on_fixture_pages() {
    for (label, body) in fixture_pages() {
        assert_eq!(
            entities::decode(&body),
            entities::decode_scalar(&body),
            "entity decode twins diverged on {label}"
        );
        assert_eq!(
            entities::encode_text(&body),
            entities::encode_text_scalar(&body),
            "entity encode twins diverged on {label}"
        );
    }
}

#[test]
fn strip_tag_twins_agree_on_fixture_pages() {
    for (label, body) in fixture_pages() {
        for tag in ["script", "style", "table", "a"] {
            assert_eq!(
                soa::strip_tag(&body, tag),
                soa::strip_tag_scalar(&body, tag),
                "strip_tag twins diverged on {label} for <{tag}>"
            );
        }
    }
}

#[test]
fn selector_twins_agree_on_fixture_pages() {
    let lists = [
        "div",
        "#loginform",
        "table td, .cat, #header a, form input",
        "div.wrap .x, #nav a, .row .cell, nav span",
    ];
    for (label, body) in fixture_pages() {
        let doc = parse_document(&body);
        for src in lists {
            let list = SelectorList::parse(src).expect("selector parses");
            assert_eq!(
                list.select(&doc, doc.root()),
                list.select_scalar(&doc, doc.root()),
                "selector twins diverged on {label} for `{src}`"
            );
        }
    }
}
