//! The Figure 6 flow end to end: the classifieds two-pane adaptation
//! with proxy-satisfied AJAX, including cache behavior on repeat views.

use msite::attributes::{AdaptationSpec, Attribute, Target};
use msite::proxy::{ProxyConfig, ProxyServer};
use msite_html::parse_document;
use msite_net::{Origin, OriginRef, Request};
use msite_sites::{ClassifiedsConfig, ClassifiedsSite};
use std::sync::Arc;

fn deploy() -> (Arc<ClassifiedsSite>, ProxyServer) {
    let site = Arc::new(ClassifiedsSite::new(ClassifiedsConfig::default()));
    let search_url = format!("{}/search?cat=tools&page=0", site.base_url());
    let mut spec = AdaptationSpec::new("cl", &search_url);
    spec.snapshot = None;
    let spec = spec
        .rule(
            Target::Css("#results".into()),
            vec![
                Attribute::SetAttr {
                    name: "style".into(),
                    value: "float:left;width:44%".into(),
                },
                Attribute::InsertAfter {
                    html: "<div id=\"msite-detail\"></div>".into(),
                },
                Attribute::LinksToAjax {
                    target: "#msite-detail".into(),
                },
            ],
        )
        .rule(
            Target::Css("#nextpage".into()),
            vec![Attribute::LinksToAjax {
                target: "#msite-detail".into(),
            }],
        );
    let proxy = ProxyServer::new(spec, Arc::clone(&site) as OriginRef, ProxyConfig::default());
    (site, proxy)
}

#[test]
fn entry_page_has_two_panes_and_async_links() {
    let (_site, proxy) = deploy();
    let entry = proxy.handle(&Request::get("http://p/m/cl/").unwrap());
    assert!(entry.status.is_success());
    let doc = parse_document(&entry.body_text());
    // Both panes exist, detail pane directly after results.
    let results = doc.element_by_id("results").expect("results pane");
    let detail = doc.element_by_id("msite-detail").expect("detail pane");
    let mut next = doc.node(results).next_sibling();
    let mut found = false;
    while let Some(n) = next {
        if n == detail {
            found = true;
            break;
        }
        next = doc.node(n).next_sibling();
    }
    assert!(found, "detail pane follows the results pane");
    // Every listing link became an async load; one shared action.
    let links = doc.elements_by_tag(results, "a");
    let async_links = links
        .iter()
        .filter(|&&a| {
            doc.attr(a, "onclick")
                .map(|o| o.contains("msiteLoad"))
                .unwrap_or(false)
        })
        .count();
    assert_eq!(async_links, 100); // one per listing row
                                  // The helper script was injected.
    assert!(entry.body_text().contains("function msiteLoad"));
}

#[test]
fn fragments_served_through_one_registered_action() {
    let (site, proxy) = deploy();
    let entry = proxy.handle(&Request::get("http://p/m/cl/").unwrap());
    let cookie = entry
        .headers
        .get("set-cookie")
        .unwrap()
        .split(';')
        .next()
        .unwrap()
        .to_string();
    for i in [0u32, 7, 42] {
        let id = site.listing_id("tools", i);
        let frag = proxy.handle(
            &Request::get(&format!("http://p/m/cl/proxy?action=1&p={id}"))
                .unwrap()
                .with_header("cookie", &cookie),
        );
        assert!(frag.status.is_success(), "listing {id}");
        let text = frag.body_text();
        // Fragment, not a full page: body extracted.
        assert!(!text.contains("<html"));
        assert!(text.contains("postingbody"));
        assert!(text.contains(&id.to_string()));
    }
}

#[test]
fn fragment_smaller_than_full_navigation() {
    let (site, proxy) = deploy();
    let entry = proxy.handle(&Request::get("http://p/m/cl/").unwrap());
    let cookie = entry
        .headers
        .get("set-cookie")
        .unwrap()
        .split(';')
        .next()
        .unwrap()
        .to_string();
    let id = site.listing_id("tools", 5);
    let frag = proxy.handle(
        &Request::get(&format!("http://p/m/cl/proxy?action=1&p={id}"))
            .unwrap()
            .with_header("cookie", &cookie),
    );
    let list = site
        .handle(&Request::get(&format!("{}/search?cat=tools&page=0", site.base_url())).unwrap());
    let detail =
        site.handle(&Request::get(&format!("{}/listing/{id}.html", site.base_url())).unwrap());
    assert!(frag.body.len() < detail.body.len());
    assert!(frag.body.len() < (list.body.len() + detail.body.len()) / 10);
}

#[test]
fn next_page_link_also_loads_async() {
    let (_site, proxy) = deploy();
    let entry = proxy.handle(&Request::get("http://p/m/cl/").unwrap());
    let doc = parse_document(&entry.body_text());
    let next = doc.element_by_id("nextpage").expect("pagination link");
    let onclick = doc.attr(next, "onclick").expect("rewritten");
    assert!(onclick.contains("msiteLoad"));
}
