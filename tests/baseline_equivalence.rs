//! Baseline comparison (§4.6): the Highlight browser-per-client proxy and
//! the m.Site lightweight path must both satisfy requests for the same
//! page — the scalability difference comes from cost, not capability.

use msite::attributes::{AdaptationSpec, SnapshotSpec};
use msite::baseline::{HighlightConfig, HighlightProxy};
use msite::proxy::{ProxyConfig, ProxyServer};
use msite_net::{Origin, OriginRef, Request};
use msite_render::browser::BrowserConfig;
use msite_sites::{ForumConfig, ForumSite};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn forum() -> Arc<ForumSite> {
    Arc::new(ForumSite::new(ForumConfig::default()))
}

#[test]
fn both_systems_serve_a_rendered_view_of_the_page() {
    let site = forum();
    let url = format!("{}/index.php", site.base_url());
    // m.Site: snapshot served to many via the cache.
    let mut spec = AdaptationSpec::new("forum", &url);
    spec.snapshot = Some(SnapshotSpec::default());
    let proxy = ProxyServer::new(spec, Arc::clone(&site) as OriginRef, ProxyConfig::default());
    let entry = proxy.handle(&Request::get("http://p/m/forum/").unwrap());
    assert!(entry.status.is_success());
    let cookie = entry
        .headers
        .get("set-cookie")
        .unwrap()
        .split(';')
        .next()
        .unwrap()
        .to_string();
    let msite_view = proxy.handle(
        &Request::get("http://p/m/forum/img/snapshot.png")
            .unwrap()
            .with_header("cookie", &cookie),
    );
    // Highlight: view rendered per request.
    let highlight = HighlightProxy::new(
        &url,
        Arc::clone(&site) as OriginRef,
        HighlightConfig {
            browser_config: BrowserConfig::default(),
            ..HighlightConfig::default()
        },
    );
    let highlight_view = highlight.render_for("user-1");
    // Both are PNG renderings of the same origin page.
    assert!(msite_view.body.starts_with(&[0x89, b'P', b'N', b'G']));
    assert!(highlight_view.body.starts_with(&[0x89, b'P', b'N', b'G']));
    // Identical dimensions (same engine, same viewport, same 0.5 scale).
    assert_eq!(msite_view.body[16..24], highlight_view.body[16..24]);
}

#[test]
fn msite_amortizes_what_highlight_repays_per_request() {
    let site = forum();
    let url = format!("{}/index.php", site.base_url());
    let launch_cost = Duration::from_millis(30);

    let mut spec = AdaptationSpec::new("forum", &url);
    spec.snapshot = Some(SnapshotSpec::default());
    let proxy = ProxyServer::new(
        spec,
        Arc::clone(&site) as OriginRef,
        ProxyConfig {
            browser_config: BrowserConfig {
                startup_cost: msite_render::StartupCost::Busy(launch_cost),
                ..BrowserConfig::default()
            },
            ..ProxyConfig::default()
        },
    );
    let highlight = HighlightProxy::new(
        &url,
        Arc::clone(&site) as OriginRef,
        HighlightConfig {
            browser_config: BrowserConfig {
                startup_cost: msite_render::StartupCost::Busy(launch_cost),
                ..BrowserConfig::default()
            },
            ..HighlightConfig::default()
        },
    );

    const N: usize = 8;
    // m.Site: one render, N-1 cache hits.
    let start = Instant::now();
    for _ in 0..N {
        assert!(proxy
            .handle(&Request::get("http://p/m/forum/").unwrap())
            .status
            .is_success());
    }
    let msite_time = start.elapsed();
    // Highlight: N full renders.
    let start = Instant::now();
    for i in 0..N {
        assert!(highlight.render_for(&format!("u{i}")).status.is_success());
    }
    let highlight_time = start.elapsed();

    assert_eq!(highlight.stats().browsers_launched as usize, N);
    assert!(
        highlight_time > msite_time * 3,
        "highlight {highlight_time:?} vs msite {msite_time:?}"
    );
}

#[test]
fn highlight_per_session_pool_is_still_per_client() {
    let site = forum();
    let url = format!("{}/index.php", site.base_url());
    let highlight = HighlightProxy::new(
        &url,
        Arc::clone(&site) as OriginRef,
        HighlightConfig {
            browser_config: BrowserConfig::default(),
            pool_per_session: true,
            ..HighlightConfig::default()
        },
    );
    for _ in 0..3 {
        let _ = highlight.render_for("alice");
    }
    for _ in 0..3 {
        let _ = highlight.render_for("bob");
    }
    // One browser per client — never shared ("using a browser pool can
    // potentially violate security assumptions if shared by multiple
    // clients").
    assert_eq!(highlight.stats().browsers_launched, 2);
    assert_eq!(highlight.stats().requests, 6);
}
