//! End-to-end reproduction of the §4.3 forum mobilization (Figures 4–5):
//! snapshot entry page, login subpage with dependencies and relabeled
//! logo copy, two-column nav rewrite, AJAX nav loading.

use msite::attributes::{AdaptationSpec, Attribute, Position, SnapshotSpec, SourceFilter, Target};
use msite::proxy::{ProxyConfig, ProxyServer};
use msite_html::parse_document;
use msite_net::{Origin, OriginRef, Request, Response};
use msite_sites::{ForumConfig, ForumSite};
use std::sync::Arc;

fn paper_spec(site: &ForumSite) -> AdaptationSpec {
    let mut spec = AdaptationSpec::new("forum", &format!("{}/index.php", site.base_url()));
    spec.snapshot = Some(SnapshotSpec {
        scale: 0.5,
        quality: 40,
        cache_ttl_secs: 3_600,
        viewport_width: 1_024,
    });
    spec.filters.push(SourceFilter::SetTitle {
        title: "Sawmill Creek (mobile)".into(),
    });
    spec.rule(
        Target::Css("#loginform".into()),
        vec![
            Attribute::Subpage {
                id: "login".into(),
                title: "Log in".into(),
                ajax: false,
                prerender: false,
            },
            Attribute::Dependency {
                selector: "head link".into(),
            },
        ],
    )
    .rule(
        Target::Css("#header".into()),
        vec![Attribute::CopyTo {
            subpage: "login".into(),
            position: Position::Top,
            set_attr: Some(("src".into(), "/images/mobile_logo.gif".into())),
        }],
    )
    .rule(
        Target::Css("#navrow".into()),
        vec![
            Attribute::LinksToColumns { columns: 2 },
            Attribute::Subpage {
                id: "nav".into(),
                title: "Navigate".into(),
                ajax: true,
                prerender: false,
            },
        ],
    )
    .rule(
        Target::Css("#leaderboard".into()),
        vec![Attribute::ReplaceWith {
            html: "<img src=\"/images/mobile_logo.gif\" width=\"300\" height=\"50\">".into(),
        }],
    )
}

fn deploy() -> (Arc<ForumSite>, ProxyServer) {
    let site = Arc::new(ForumSite::new(ForumConfig::default()));
    let spec = paper_spec(&site);
    let proxy = ProxyServer::new(spec, Arc::clone(&site) as OriginRef, ProxyConfig::default());
    (site, proxy)
}

fn get(proxy: &ProxyServer, path: &str, cookie: Option<&str>) -> Response {
    let mut req = Request::get(&format!("http://p{path}")).unwrap();
    if let Some(c) = cookie {
        req = req.with_header("cookie", c);
    }
    proxy.handle(&req)
}

fn session_of(response: &Response) -> String {
    response
        .headers
        .get("set-cookie")
        .expect("session cookie")
        .split(';')
        .next()
        .unwrap()
        .to_string()
}

#[test]
fn entry_page_is_snapshot_with_imagemap() {
    let (_site, proxy) = deploy();
    let entry = get(&proxy, "/m/forum/", None);
    assert!(entry.status.is_success());
    let doc = parse_document(&entry.body_text());
    // Branded title carried through the filter.
    let title = doc.elements_by_tag(doc.root(), "title")[0];
    assert_eq!(doc.text_content(title), "Sawmill Creek (mobile)");
    // One snapshot image wired to one map.
    let imgs = doc.elements_by_tag(doc.root(), "img");
    assert_eq!(imgs.len(), 1);
    assert_eq!(doc.attr(imgs[0], "usemap"), Some("#msitemap"));
    // Both subpages reachable from areas or the fallback menu.
    let html = entry.body_text();
    assert!(html.contains("/m/forum/s/login.html"));
    assert!(html.contains("/m/forum/s/nav.html"));
    // Clickable areas carry translated (scaled) coordinates.
    let areas = doc.elements_by_tag(doc.root(), "area");
    assert!(!areas.is_empty());
    for area in &areas {
        let coords = doc.attr(*area, "coords").unwrap();
        let values: Vec<i64> = coords.split(',').map(|v| v.parse().unwrap()).collect();
        assert_eq!(values.len(), 4);
        assert!(values[2] > values[0] && values[3] > values[1], "{coords}");
        // Snapshot is 512 px wide (1024 * 0.5): coordinates must fit.
        assert!(values[2] <= 512, "{coords}");
    }
}

#[test]
fn snapshot_image_is_real_png_within_fidelity_band() {
    let (_site, proxy) = deploy();
    let entry = get(&proxy, "/m/forum/", None);
    let cookie = session_of(&entry);
    let img = get(&proxy, "/m/forum/img/snapshot.png", Some(&cookie));
    assert!(img.status.is_success());
    assert!(img.body.starts_with(&[0x89, b'P', b'N', b'G']));
    // Parse IHDR dimensions: width at bytes 16..20.
    let width = u32::from_be_bytes(img.body[16..20].try_into().unwrap());
    assert_eq!(width, 512);
}

#[test]
fn login_subpage_matches_figure5() {
    let (_site, proxy) = deploy();
    let entry = get(&proxy, "/m/forum/", None);
    let cookie = session_of(&entry);
    let login = get(&proxy, "/m/forum/s/login.html", Some(&cookie));
    assert!(login.status.is_success());
    let html = login.body_text();
    let doc = parse_document(&html);
    // The form is present with its fields.
    assert!(doc.element_by_id("loginform").is_some());
    assert!(html.contains("vb_login_username"));
    assert!(html.contains("vb_login_password"));
    // CSS dependency satisfied under head.
    let head = doc.elements_by_tag(doc.root(), "head")[0];
    assert!(!doc.elements_by_tag(head, "link").is_empty());
    // Logo copied with the mobile src swap; original survives on origin.
    assert!(html.contains("/images/mobile_logo.gif"));
    // The copy landed at the top of the body.
    let logo_pos = html.find("mobile_logo.gif").unwrap();
    let form_pos = html.find("loginform").unwrap();
    assert!(logo_pos < form_pos);
}

#[test]
fn nav_rewritten_into_two_columns() {
    let (_site, proxy) = deploy();
    let entry = get(&proxy, "/m/forum/", None);
    let cookie = session_of(&entry);
    let nav = get(&proxy, "/m/forum/s/nav.html", Some(&cookie));
    assert!(nav.status.is_success());
    let doc = parse_document(&nav.body_text());
    let tables = doc.elements_by_tag(doc.root(), "table");
    let columns_table = tables
        .iter()
        .find(|&&t| {
            doc.data(t)
                .as_element()
                .map(|e| e.has_class("msite-columns"))
                .unwrap_or(false)
        })
        .copied()
        .expect("two-column rewrite present");
    // Every row has exactly two cells.
    for tr in doc.elements_by_tag(columns_table, "tr") {
        let cells = doc
            .children(tr)
            .filter(|&c| doc.is_element_named(c, "td"))
            .count();
        assert_eq!(cells, 2);
    }
    // All eight nav links survived the rewrite, plus the login-subpage
    // link (the login form was split first and its replacement link sits
    // inside #navrow, so the column rewrite folds it in).
    let links = doc.elements_by_tag(columns_table, "a");
    assert_eq!(links.len(), 9);
    assert!(links
        .iter()
        .any(|&a| doc.attr(a, "href") == Some("/m/forum/s/login.html")));
}

#[test]
fn leaderboard_replaced_in_subpage_flow() {
    let (_site, proxy) = deploy();
    let entry = get(&proxy, "/m/forum/", None);
    let cookie = session_of(&entry);
    // Force per-user generation, then check no 728px ad leaks anywhere.
    let _ = get(&proxy, "/m/forum/s/login.html", Some(&cookie));
    for path in proxy.stored_files() {
        if path.ends_with(".html") {
            // Read through the proxy's own fs via a subpage request is
            // enough for login; here we simply assert the entry page.
        }
    }
    assert!(!entry.body_text().contains("banner_ad.gif"));
}

#[test]
fn ajax_nav_subpage_marked_in_entry() {
    let (_site, proxy) = deploy();
    let entry = get(&proxy, "/m/forum/", None);
    let html = entry.body_text();
    // The nav area loads asynchronously into the hidden container.
    assert!(html.contains("msiteOpen('/m/forum/s/nav.html')"));
    assert!(html.contains("id=\"msite-container\""));
    assert!(html.contains("function msiteOpen"));
}

#[test]
fn generated_program_round_trips_and_redeploys() {
    let (site, _) = deploy();
    let spec = paper_spec(&site);
    let script = msite::dsl::to_script(&spec);
    let reparsed = msite::dsl::parse_script(&script).unwrap();
    assert_eq!(spec, reparsed);
    let proxy2 = ProxyServer::from_script(
        &script,
        Arc::clone(&site) as OriginRef,
        ProxyConfig::default(),
    )
    .unwrap();
    assert!(get(&proxy2, "/m/forum/", None).status.is_success());
}

#[test]
fn second_user_rides_the_shared_snapshot() {
    let (_site, proxy) = deploy();
    let first = get(&proxy, "/m/forum/", None);
    let second = get(&proxy, "/m/forum/", None);
    assert!(first.status.is_success() && second.status.is_success());
    let stats = proxy.stats();
    assert_eq!(stats.full_renders, 1, "one snapshot render for both users");
    assert!(proxy.cache().stats().hits >= 1);
}
